//! Three GCS end-points over real TCP sockets on localhost.
//!
//! ```text
//! cargo run -p vsgm-examples --example tcp_cluster
//! ```
//!
//! This is the "production" shape of the stack: each process wraps an
//! [`vsgm_core::Endpoint`] in a [`vsgm_core::Node`] over a
//! [`vsgm_net::TcpTransport`] and pumps it on its own thread. The
//! membership notifications are scripted here (one `start_change`
//! followed by the view) — in a deployment they come from membership
//! servers (see `vsgm-membership`).

use std::sync::mpsc;
use std::time::{Duration, Instant};
use vsgm_core::{Config, Endpoint, Input, Node};
use vsgm_core::node::AppEvent;
use vsgm_net::{TcpTransport, Transport};
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn main() -> std::io::Result<()> {
    let ids: Vec<ProcessId> = (1..=3).map(ProcessId::new).collect();
    let members: ProcSet = ids.iter().copied().collect();

    // Bind everyone, then exchange addresses.
    let transports: Vec<TcpTransport> =
        ids.iter().map(|&p| TcpTransport::bind(p, "127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<_> = transports.iter().map(|t| t.local_addr()).collect();
    for t in &transports {
        for (&p, &addr) in ids.iter().zip(&addrs) {
            if p != t.me() {
                t.register_peer(p, addr);
            }
        }
    }

    // The scripted membership: cid=1 for everyone, then the 3-member view.
    let view = View::new(
        ViewId::new(1, 0),
        members.iter().copied(),
        members.iter().map(|&m| (m, StartChangeId::new(1))),
    );

    let (tx, rx) = mpsc::channel::<String>();
    let mut handles = Vec::new();
    for t in transports {
        let me = t.me();
        let members = members.clone();
        let view = view.clone();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || -> std::io::Result<()> {
            let mut node = Node::new(Endpoint::new(me, Config::default()), t);
            let mut events = Vec::new();
            events.extend(node.membership(Input::StartChange {
                cid: StartChangeId::new(1),
                set: members.clone(),
            })?);
            events.extend(node.membership(Input::MbrshpView(view))?);

            // Pump until the view installs, then multicast a greeting and
            // keep pumping until all three greetings arrive.
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut sent = false;
            let mut greetings = 0;
            while Instant::now() < deadline {
                for e in events.drain(..) {
                    match e {
                        AppEvent::View { view, transitional } => {
                            tx.send(format!("{me}: installed {view} T={transitional:?}")).ok();
                            if !sent {
                                sent = true;
                            }
                        }
                        AppEvent::Delivered { from, msg } => {
                            greetings += 1;
                            tx.send(format!("{me}: got {msg:?} from {from}")).ok();
                        }
                        AppEvent::BlockRequested => {}
                    }
                }
                if sent {
                    sent = false;
                    events.extend(
                        node.send(AppMsg::from(format!("hello from {me}").as_str()))?,
                    );
                }
                if greetings >= 3 {
                    let s = node.transport().stats();
                    tx.send(format!(
                        "{me}: net writer stats — {} flushes / {} frames (max {} coalesced)",
                        s.flushes, s.frames_flushed, s.coalesce_max
                    ))
                    .ok();
                    return Ok(());
                }
                events.extend(node.pump(Duration::from_millis(10))?);
            }
            panic!("{me}: timed out waiting for greetings");
        }));
    }
    drop(tx);

    for line in rx {
        println!("{line}");
    }
    for h in handles {
        h.join().expect("thread panicked")?;
    }
    println!("tcp cluster example complete ✓");
    Ok(())
}
