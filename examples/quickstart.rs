//! Quickstart: three processes form a group, multicast, and reconfigure.
//!
//! ```text
//! cargo run -p vsgm-examples --example quickstart
//! ```
//!
//! Everything runs inside the deterministic simulator with all of the
//! paper's specification checkers enabled — if the algorithm violated
//! Virtual Synchrony, Self Delivery, Transitional Sets, or within-view
//! FIFO anywhere in this run, the program would panic with the violated
//! precondition.

use vsgm_harness::{Sim, SimOptions};
use vsgm_types::{AppMsg, Event, ProcessId};

fn main() {
    let mut sim = Sim::new_paper(3, Default::default(), SimOptions::default());

    // The membership service announces a change and then the view {p1,p2,p3}.
    let members = sim.all_procs();
    let view = sim.reconfigure(&members);
    println!("formed view {view}");

    // Multicast from every member.
    for i in 1..=3 {
        sim.send(ProcessId::new(i), AppMsg::from(format!("hello from p{i}").as_str()));
    }
    sim.run_to_quiescence();

    // Show what each application observed.
    for entry in sim.trace().application_facing() {
        match &entry.event {
            Event::GcsView { p, view, transitional } => {
                println!("[{}] {p} installed {view} T={transitional:?}", entry.time);
            }
            Event::Deliver { p, q, msg } => {
                println!("[{}] {p} delivered {msg:?} from {q}", entry.time);
            }
            _ => {}
        }
    }

    // p3 leaves; the remaining pair reconfigures in a single sync round.
    let pair = [ProcessId::new(1), ProcessId::new(2)].into_iter().collect();
    let view = sim.reconfigure(&pair);
    sim.run_to_quiescence();
    println!("reconfigured to {view}");

    // Validate the whole run against every safety specification.
    sim.assert_clean();
    println!("all specification checkers clean ✓");
}
