//! A small chat room where replies never appear before the message they
//! answer — causal multicast over the GCS (the `vsgm-order::causal`
//! layer), demonstrating the "FIFO as a base for stronger services"
//! layering of §4.1.1.
//!
//! ```text
//! cargo run -p vsgm-examples --example causal_chat
//! ```

use std::collections::BTreeMap;
use vsgm_harness::{Sim, SimOptions};
use vsgm_order::CausalOrder;
use vsgm_types::{AppMsg, Event, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    let mut sim = Sim::new_paper(3, Default::default(), SimOptions::default());
    sim.reconfigure(&sim.all_procs());
    sim.run_to_quiescence();
    let mut layers: BTreeMap<ProcessId, CausalOrder> =
        (1..=3).map(|i| (p(i), CausalOrder::new(p(i)))).collect();
    let mut cursor = sim.trace().len();
    let mut feeds: BTreeMap<ProcessId, Vec<String>> = BTreeMap::new();

    // Drains new GCS deliveries into the causal layers and the chat feeds.
    let drain = |sim: &mut Sim,
                     layers: &mut BTreeMap<ProcessId, CausalOrder>,
                     feeds: &mut BTreeMap<ProcessId, Vec<String>>,
                     cursor: &mut usize| {
        sim.run_to_quiescence();
        let batch: Vec<(ProcessId, ProcessId, AppMsg)> = sim.trace().entries()[*cursor..]
            .iter()
            .filter_map(|e| match &e.event {
                Event::Deliver { p, q, msg } => Some((*p, *q, msg.clone())),
                _ => None,
            })
            .collect();
        *cursor = sim.trace().len();
        for (to, from, msg) in batch {
            for d in layers.get_mut(&to).expect("member").on_deliver(from, &msg) {
                feeds
                    .entry(to)
                    .or_default()
                    .push(format!("{}: {}", d.from, String::from_utf8_lossy(&d.payload)));
            }
        }
    };

    // p1 asks a question.
    let q = layers[&p(1)].submit(b"anyone up for lunch?".to_vec());
    sim.send(p(1), q);
    drain(&mut sim, &mut layers, &mut feeds, &mut cursor);

    // p2, having SEEN the question, replies — the reply causally depends
    // on the question, and the layer stamps that dependency.
    let reply = layers[&p(2)].submit(b"yes! the usual place".to_vec());
    sim.send(p(2), reply);
    // Concurrently p3 says something unrelated.
    let other = layers[&p(3)].submit(b"unrelated: builds are green".to_vec());
    sim.send(p(3), other);
    drain(&mut sim, &mut layers, &mut feeds, &mut cursor);

    for (who, feed) in &feeds {
        println!("feed at {who}:");
        for line in feed {
            println!("   {line}");
        }
        let question = feed.iter().position(|l| l.contains("lunch")).expect("question shown");
        let answer = feed.iter().position(|l| l.contains("usual place")).expect("reply shown");
        assert!(question < answer, "reply surfaced before the question at {who}!");
    }
    sim.assert_clean();
    println!("causal order held at every member ✓ (and all GCS specs are clean)");
}
