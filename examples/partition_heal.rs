//! Partitions, concurrent views, transitional sets, and message
//! forwarding — the paper's partitionable semantics in action.
//!
//! ```text
//! cargo run -p vsgm-examples --example partition_heal
//! ```
//!
//! Two acts:
//!
//! 1. **Concurrent views.** {p1..p4} split into {p1,p2} and {p3,p4};
//!    each side installs its own view and keeps multicasting — the
//!    service is *partitionable*. On heal, the merge view's transitional
//!    sets tell each application exactly who moved with it.
//!
//! 2. **Forwarding.** Back in a joint view, the network splits again and
//!    p4 multicasts: p3 (same side) receives it, p1/p2 do not — and then
//!    p4 crashes, so the original copies are gone forever. Virtual
//!    Synchrony still requires everyone moving to the next view to
//!    deliver the message, so p3 *forwards* it on p4's behalf (§5.2.2)
//!    before anyone may install the new view.

use vsgm_harness::sim::procs_of;
use vsgm_harness::{Sim, SimOptions};
use vsgm_types::{AppMsg, Event, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    let mut sim = Sim::new_paper(4, Default::default(), SimOptions::default());
    let everyone = sim.all_procs();
    sim.reconfigure(&everyone);
    sim.run_to_quiescence();
    println!("== act 1: joint view {}", sim.endpoint(p(1)).current_view());

    sim.partition(&[vec![p(1), p(2)], vec![p(3), p(4)]]);
    sim.start_change_for(&procs_of(&[1, 2]), &procs_of(&[1, 2]));
    let va = sim.form_view(&procs_of(&[1, 2]));
    sim.start_change_for(&procs_of(&[3, 4]), &procs_of(&[3, 4]));
    let vb = sim.form_view(&procs_of(&[3, 4]));
    sim.run_to_quiescence();
    println!("   partitioned: side A installed {va}, side B installed {vb}");

    sim.send(p(1), AppMsg::from("A-side update"));
    sim.send(p(4), AppMsg::from("B-side update"));
    sim.run_to_quiescence();
    println!("   both sides kept multicasting (partitionable semantics)");

    sim.heal();
    let merged = sim.reconfigure(&everyone);
    sim.run_to_quiescence();
    for entry in sim.trace().application_facing() {
        if let Event::GcsView { p, view, transitional } = &entry.event {
            if view == &merged {
                println!("   {p} installed merge view with T = {transitional:?}");
            }
        }
    }

    println!("== act 2: forwarding after a crash");
    // Split inside the (new) joint view — no membership change yet.
    sim.partition(&[vec![p(3), p(4)], vec![p(1), p(2)]]);
    sim.send(p(4), AppMsg::from("only p3 got this"));
    sim.run_to_quiescence(); // p3 receives; copies to p1/p2 are parked
    sim.crash(p(4)); // parked copies dropped with the crash
    sim.heal();
    let survivors = sim.reconfigure(&procs_of(&[1, 2, 3]));
    sim.run_to_quiescence();
    let fwd = sim.net().stats().count("fwd_msg");
    println!("   survivors installed {survivors}");
    println!("   forwarded copies used to repair the gap: {fwd}");
    assert!(fwd >= 2, "p1 and p2 each needed a forwarded copy");

    sim.assert_clean();
    println!("all specification checkers clean ✓ (incl. Virtual Synchrony across the merge)");
}
