//! A replicated key-value store: state-machine replication over the
//! totally ordered multicast layer, with Virtual Synchrony doing exactly
//! the job §4.1.2 describes — members that move together never need a
//! state exchange, and transitional sets identify who does.
//!
//! ```text
//! cargo run -p vsgm-examples --example replicated_kv
//! ```
//!
//! Each replica applies `set k=v` commands in the total order produced by
//! `vsgm-order`; because every replica applies the same sequence, the
//! stores stay identical. After a crash, the recovered replica is *not*
//! in anyone's transitional set for the merge view — the application sees
//! that and ships it a state snapshot, while the members that moved
//! together (in `T`) skip the transfer entirely.

use std::collections::BTreeMap;
use vsgm_harness::sim::procs_of;
use vsgm_harness::{Sim, SimOptions};
use vsgm_order::TotalOrder;
use vsgm_types::{AppMsg, Event, ProcSet, ProcessId, View};

type Store = BTreeMap<String, String>;

struct Replica {
    order: TotalOrder,
    store: Store,
}

impl Replica {
    fn new(p: ProcessId) -> Self {
        Replica { order: TotalOrder::new(p), store: Store::new() }
    }

    fn apply(&mut self, cmd: &[u8]) {
        let text = String::from_utf8_lossy(cmd);
        if let Some((k, v)) = text.strip_prefix("set ").and_then(|s| s.split_once('=')) {
            self.store.insert(k.to_string(), v.to_string());
        }
    }
}

/// Pumps GCS deliveries through the replicas until no replica produces
/// further traffic, applying ordered commands to the stores.
fn pump(sim: &mut Sim, replicas: &mut BTreeMap<ProcessId, Replica>, cursor: &mut usize) {
    loop {
        sim.run_to_quiescence();
        let events: Vec<(ProcessId, ProcessId, AppMsg)> = sim.trace().entries()[*cursor..]
            .iter()
            .filter_map(|e| match &e.event {
                Event::Deliver { p, q, msg } => Some((*p, *q, msg.clone())),
                _ => None,
            })
            .collect();
        *cursor = sim.trace().len();
        if events.is_empty() {
            return;
        }
        let mut to_send = Vec::new();
        for (p, q, msg) in events {
            let replica = replicas.get_mut(&p).expect("known replica");
            let (ordered, announce) = replica.order.on_deliver(q, &msg);
            for cmd in ordered {
                replica.apply(&cmd.payload);
            }
            if let Some(a) = announce {
                to_send.push((p, a));
            }
        }
        for (p, a) in to_send {
            sim.send(p, a);
        }
    }
}

fn on_view(replicas: &mut BTreeMap<ProcessId, Replica>, view: &View, t_sets: &BTreeMap<ProcessId, ProcSet>) {
    for (p, replica) in replicas.iter_mut() {
        if view.contains(*p) {
            let t = t_sets.get(p).cloned().unwrap_or_default();
            let flushed = replica.order.on_view(view, &t);
            for cmd in flushed {
                replica.apply(&cmd.payload);
            }
        }
    }
}

fn collect_t_sets(sim: &Sim, view: &View, from: usize) -> BTreeMap<ProcessId, ProcSet> {
    sim.trace().entries()[from..]
        .iter()
        .filter_map(|e| match &e.event {
            Event::GcsView { p, view: v, transitional } if v == view => {
                Some((*p, transitional.clone()))
            }
            _ => None,
        })
        .collect()
}

fn main() {
    let mut sim = Sim::new_paper(3, Default::default(), SimOptions::default());
    let mut replicas: BTreeMap<ProcessId, Replica> =
        (1..=3).map(|i| (ProcessId::new(i), Replica::new(ProcessId::new(i)))).collect();
    let mut cursor = 0usize;

    let everyone = sim.all_procs();
    let mark = sim.trace().len();
    let view = sim.reconfigure(&everyone);
    sim.run_to_quiescence();
    let t_sets = collect_t_sets(&sim, &view, mark);
    on_view(&mut replicas, &view, &t_sets);
    println!("== replicas joined {view}");

    // Concurrent writes from different replicas: total order makes every
    // store apply them identically.
    for (i, cmd) in [(1u64, "set color=red"), (2, "set color=blue"), (3, "set shape=round")] {
        let p = ProcessId::new(i);
        let wrapped = replicas[&p].order.submit(cmd.as_bytes().to_vec());
        sim.send(p, wrapped);
    }
    pump(&mut sim, &mut replicas, &mut cursor);
    let reference = replicas[&ProcessId::new(1)].store.clone();
    for (p, r) in &replicas {
        assert_eq!(r.store, reference, "replica {p} diverged");
    }
    println!("   all stores agree: {reference:?}");

    // p3 crashes and recovers with empty state.
    sim.crash(ProcessId::new(3));
    let survivors = procs_of(&[1, 2]);
    let mark = sim.trace().len();
    let v2 = sim.reconfigure(&survivors);
    sim.run_to_quiescence();
    let t_sets = collect_t_sets(&sim, &v2, mark);
    on_view(&mut replicas, &v2, &t_sets);
    let p1 = ProcessId::new(1);
    let wrapped = replicas[&p1].order.submit(b"set size=large".to_vec());
    sim.send(p1, wrapped);
    pump(&mut sim, &mut replicas, &mut cursor);
    println!("   p3 crashed; survivors kept writing: {:?}", replicas[&p1].store);

    sim.recover(ProcessId::new(3));
    replicas.insert(ProcessId::new(3), Replica::new(ProcessId::new(3)));
    let mark = sim.trace().len();
    let v3 = sim.reconfigure(&everyone);
    sim.run_to_quiescence();
    let t_sets = collect_t_sets(&sim, &v3, mark);
    on_view(&mut replicas, &v3, &t_sets);

    // The transitional set tells p1 that p3 did NOT move with it: state
    // transfer is needed for p3 (and only p3 — this is the §4.1.2 saving).
    let t1 = &t_sets[&p1];
    println!("   merge view {v3}; p1's transitional set = {t1:?}");
    for q in v3.members() {
        if !t1.contains(q) && *q != p1 {
            let snapshot = replicas[&p1].store.clone();
            replicas.get_mut(q).expect("known replica").store = snapshot;
            println!("   state transfer: p1 -> {q} (not in T)");
        }
    }
    pump(&mut sim, &mut replicas, &mut cursor);

    let reference = replicas[&p1].store.clone();
    for (p, r) in &replicas {
        assert_eq!(r.store, reference, "replica {p} diverged after recovery");
    }
    println!("   all stores agree again: {reference:?}");

    sim.assert_clean();
    println!("all specification checkers clean ✓");
}
