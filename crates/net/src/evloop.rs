//! The readiness-loop core of [`crate::TcpTransport`]: a small fixed
//! pool of loop threads owns *all* sockets, replacing the old
//! thread-per-connection reader and writer threads.
//!
//! Each loop thread repeatedly scans the connections it owns:
//!
//! * **inbound connections** are drained with non-blocking reads into a
//!   pooled, connection-local read buffer; complete frames are decoded
//!   *in place* with the borrowing [`crate::codec::decode_body_ref`]
//!   path (one payload copy, at the delivery-channel boundary) and
//!   malformed or oversized frames tear the connection down;
//! * **outbound connections** drain their bounded
//!   [`crate::writer::OutQueue`] (heartbeat slot first) into a coalesce
//!   buffer and push it to the socket with non-blocking writes, keeping
//!   partial-write state across rounds.
//!
//! When a scan makes no progress the loop parks on a condvar with an
//! escalating tick (spin → [`IDLE_TICK_CAP`]), so idle transports cost
//! near-zero CPU while senders can wake their loop the instant a frame
//! is enqueued ([`LoopWaker`]). Scaling property: the thread count is
//! `loop_threads` regardless of connection count — 4096 connections are
//! multiplexed over the same pool that served 4.
//!
//! The loop is also where the transport's resource-safety bugfixes
//! live:
//!
//! * a frame whose length prefix exceeds `max_frame_len` is rejected
//!   *before* any allocation and the connection is dropped
//!   ([`LoopCounters::oversize_rejected`]);
//! * a half-open peer that stalls mid-handshake or mid-frame is evicted
//!   after `read_idle_timeout` ([`LoopCounters::idle_evictions`])
//!   instead of pinning a blocked reader thread forever.

use crate::codec::{self, BodyRef};
use crate::writer::{OutQueue, WriterStats};
use crossbeam::channel::Sender;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use vsgm_types::{GroupId, NetMsg, ProcessId};

/// Ceiling for the idle-park tick: the longest a loop sleeps between
/// scans when nothing is happening. Bounds worst-case first-byte
/// latency after an idle period.
const IDLE_TICK_CAP: Duration = Duration::from_millis(5);
/// Reads one connection may issue per scan round, so a firehose peer
/// cannot starve its loop-mates.
const MAX_READS_PER_ROUND: usize = 8;
/// How long a shutting-down loop keeps trying to flush unwritten
/// outbound frames before declaring them dropped and exiting.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Transport-level counters owned by the loop threads; mirrored into
/// `NetStats` / `vsgm-obs` by the transport.
#[derive(Debug, Default)]
pub(crate) struct LoopCounters {
    /// Zero-length liveness frames received from peers.
    pub heartbeats_heard: AtomicU64,
    /// Frames rejected because their length prefix exceeded
    /// `max_frame_len` (connection torn down, nothing allocated).
    pub oversize_rejected: AtomicU64,
    /// Connections evicted for stalling mid-handshake or mid-frame
    /// longer than `read_idle_timeout`.
    pub idle_evictions: AtomicU64,
    /// Connections adopted by a loop (inbound + outbound).
    pub conns_opened: AtomicU64,
    /// Connections retired by a loop (any reason).
    pub conns_closed: AtomicU64,
}

impl LoopCounters {
    /// Connections currently owned by loop threads.
    pub(crate) fn conns_open(&self) -> u64 {
        self.conns_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }
}

/// Everything a loop thread needs from the transport.
pub(crate) struct LoopCtx {
    /// Delivery channel into `Transport::recv_timeout` /
    /// `TcpTransport::recv_routed_timeout`. The middle component is the
    /// group id carried by a v2 group envelope, or `None` for legacy
    /// single-group frames.
    pub tx: Sender<(ProcessId, Option<GroupId>, NetMsg)>,
    /// Flush/coalesce/conservation accounting (shared with senders).
    pub stats: Arc<WriterStats>,
    /// Loop-side counters above.
    pub counters: Arc<LoopCounters>,
    /// Last time any frame arrived per peer (suspicion input).
    // vsgm-lock-tier(5): leaf — taken by loop threads with nothing held.
    pub last_heard: Arc<parking_lot::Mutex<HashMap<ProcessId, Instant>>>,
}

/// The transport-config slice the loops act on.
#[derive(Debug, Clone)]
pub(crate) struct LoopConfig {
    /// Most frames coalesced into one socket write.
    pub max_coalesce_frames: u64,
    /// Byte ceiling for one coalesce buffer.
    pub max_flush_bytes: usize,
    /// Reject frames claiming more than this many bytes.
    pub max_frame_len: usize,
    /// Evict connections stalled mid-handshake/mid-frame this long
    /// (`Duration::ZERO` disables eviction).
    pub read_idle_timeout: Duration,
    /// Whether non-binary (JSON) frame bodies are still decoded.
    pub accept_json: bool,
    /// Initial size of each pooled per-connection read buffer.
    pub read_buf_bytes: usize,
}

/// A connection handed to the pool.
pub(crate) enum Register {
    /// Accepted socket: handshake pending, read-only thereafter.
    Inbound(TcpStream),
    /// Dialed socket: write-only, fed by `queue`.
    Outbound {
        /// The non-blocking, handshook socket.
        stream: TcpStream,
        /// Bounded frame queue senders push into.
        queue: Arc<OutQueue>,
        /// Connection-death flag shared with `PeerWriter` handles.
        broken: Arc<AtomicBool>,
    },
}

struct LoopShared {
    // vsgm-lock-tier(1): taken briefly by registering threads and the
    // loop thread to swap the pending list; nothing else taken under it.
    inbox: Mutex<Vec<Register>>,
    // vsgm-lock-tier(1): wake-flag mutex, paired solely with `wake_cv`.
    wake: Mutex<bool>,
    // vsgm-lock-tier(1): condvar paired with `wake` — same tier.
    wake_cv: Condvar,
    shutdown: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Loop-internal std mutexes guard plain data swapped in single
    // statements; recover from poisoning rather than propagate.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clone-cheap handle that wakes one loop thread out of its idle park.
#[derive(Clone)]
pub(crate) struct LoopWaker(Arc<LoopShared>);

impl LoopWaker {
    pub(crate) fn wake(&self) {
        *lock(&self.0.wake) = true;
        self.0.wake_cv.notify_one();
    }
}

/// The fixed pool of loop threads. Connections are assigned round-robin
/// at registration and never migrate.
pub(crate) struct LoopPool {
    loops: Vec<Arc<LoopShared>>,
    next: AtomicUsize,
}

impl LoopPool {
    /// Spawns `threads` loop threads (at least one).
    pub(crate) fn spawn(threads: usize, ctx: &Arc<LoopCtx>, cfg: &LoopConfig) -> LoopPool {
        let loops: Vec<Arc<LoopShared>> = (0..threads.max(1))
            .map(|_| {
                Arc::new(LoopShared {
                    inbox: Mutex::new(Vec::new()),
                    wake: Mutex::new(false),
                    wake_cv: Condvar::new(),
                    shutdown: AtomicBool::new(false),
                })
            })
            .collect();
        for shared in &loops {
            let shared = Arc::clone(shared);
            let ctx = Arc::clone(ctx);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("vsgm-net-loop".into())
                .spawn(move || loop_main(&shared, &ctx, &cfg))
                // vsgm-allow(P1): thread-spawn failure is OS resource
                // exhaustion at transport startup — not a protocol
                // state, nothing to unwind to
                .expect("spawn event-loop thread");
        }
        LoopPool { loops, next: AtomicUsize::new(0) }
    }

    /// Number of loop threads in the pool.
    pub(crate) fn threads(&self) -> usize {
        self.loops.len()
    }

    /// Hands a connection to the next loop (round-robin) and returns
    /// that loop's waker.
    pub(crate) fn register(&self, reg: Register) -> LoopWaker {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.loops.len().max(1);
        let Some(shared) = self.loops.get(i) else {
            // Unreachable (the pool always has ≥1 loop); drop the
            // registration rather than panic.
            return LoopWaker(Arc::new(LoopShared {
                inbox: Mutex::new(Vec::new()),
                wake: Mutex::new(false),
                wake_cv: Condvar::new(),
                shutdown: AtomicBool::new(true),
            }));
        };
        lock(&shared.inbox).push(reg);
        let waker = LoopWaker(Arc::clone(shared));
        waker.wake();
        waker
    }

    /// Tells every loop to flush what it can and exit.
    pub(crate) fn shutdown(&self) {
        for shared in &self.loops {
            shared.shutdown.store(true, Ordering::SeqCst);
            LoopWaker(Arc::clone(shared)).wake();
        }
    }
}

// ----------------------------------------------------- the loop body ---

/// A tiny free-list of read/coalesce buffers, loop-thread-local so it
/// needs no lock. Buffers that grew past the standard size (oversized
/// frames) are not retained.
struct BufPool {
    free: Vec<Vec<u8>>,
    size: usize,
}

impl BufPool {
    fn new(size: usize) -> BufPool {
        BufPool { free: Vec::new(), size: size.max(4096) }
    }

    /// A read buffer: `size` addressable (zeroed-or-recycled) bytes.
    fn take_read(&mut self) -> Vec<u8> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.resize(self.size, 0);
        buf
    }

    /// A write coalesce buffer: empty, with `size` bytes of capacity.
    /// (Length matters: stale pooled bytes must never be mistaken for
    /// pending write data.)
    fn take_write(&mut self) -> Vec<u8> {
        let mut buf = self.free.pop().unwrap_or_else(|| Vec::with_capacity(self.size));
        buf.clear();
        buf
    }

    fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() >= self.size && buf.capacity() <= self.size * 2 && self.free.len() < 64
        {
            self.free.push(buf);
        }
    }
}

enum Kind {
    /// Inbound, 8-byte peer-id handshake incomplete.
    Handshake,
    /// Inbound, streaming frames from `peer`.
    Frames(ProcessId),
    /// Outbound, draining its queue.
    Out { queue: Arc<OutQueue>, broken: Arc<AtomicBool> },
}

struct Conn {
    stream: TcpStream,
    kind: Kind,
    /// Read buffer (inbound) — `rbuf[rstart..rlen]` is unparsed.
    rbuf: Vec<u8>,
    rstart: usize,
    rlen: usize,
    /// Coalesce buffer (outbound) — `wbuf[wpos..]` awaits the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Frames carried by `wbuf`, credited to `frames_flushed` only once
    /// the whole buffer is on the wire.
    wframes: u64,
    last_rx: Instant,
}

/// Why a connection was retired this round.
enum Retire {
    /// Peer closed, socket error, transport shutdown, or queue retired.
    Gone,
    /// Length prefix over `max_frame_len`, or an undecodable body.
    Poisoned,
    /// Stalled mid-handshake / mid-frame past `read_idle_timeout`.
    Idle,
}

impl Conn {
    fn inbound(stream: TcpStream, pool: &mut BufPool, now: Instant) -> Conn {
        Conn {
            stream,
            kind: Kind::Handshake,
            rbuf: pool.take_read(),
            rstart: 0,
            rlen: 0,
            wbuf: Vec::new(),
            wpos: 0,
            wframes: 0,
            last_rx: now,
        }
    }

    fn outbound(
        stream: TcpStream,
        queue: Arc<OutQueue>,
        broken: Arc<AtomicBool>,
        pool: &mut BufPool,
        now: Instant,
    ) -> Conn {
        Conn {
            stream,
            kind: Kind::Out { queue, broken },
            rbuf: Vec::new(),
            rstart: 0,
            rlen: 0,
            wbuf: pool.take_write(),
            wpos: 0,
            wframes: 0,
            last_rx: now,
        }
    }

    /// Whether outbound work is still unwritten (shutdown flush check).
    fn has_unflushed(&self) -> bool {
        match &self.kind {
            Kind::Out { queue, .. } => self.wpos < self.wbuf.len() || !queue.is_drained(),
            _ => false,
        }
    }

    /// One scan round. `Err` means retire the connection.
    fn service(
        &mut self,
        now: Instant,
        ctx: &LoopCtx,
        cfg: &LoopConfig,
        progress: &mut bool,
    ) -> Result<(), Retire> {
        match &self.kind {
            Kind::Out { .. } => self.service_out(ctx, cfg, progress),
            _ => self.service_in(now, ctx, cfg, progress),
        }
    }

    // ------------------------------------------------------- inbound ---

    fn service_in(
        &mut self,
        now: Instant,
        ctx: &LoopCtx,
        cfg: &LoopConfig,
        progress: &mut bool,
    ) -> Result<(), Retire> {
        let mut heard = false;
        for _ in 0..MAX_READS_PER_ROUND {
            self.make_read_room(cfg)?;
            let Some(dst) = self.rbuf.get_mut(self.rlen..) else { break };
            if dst.is_empty() {
                break;
            }
            match self.stream.read(dst) {
                Ok(0) => {
                    // Peer closed; whatever parsed before this is final.
                    self.note_heard(ctx, heard, now);
                    return Err(Retire::Gone);
                }
                Ok(n) => {
                    self.rlen += n;
                    self.last_rx = now;
                    heard = true;
                    *progress = true;
                    self.parse_available(ctx, cfg)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.note_heard(ctx, heard, now);
                    return Err(Retire::Gone);
                }
            }
        }
        self.note_heard(ctx, heard, now);
        // Idle eviction: a peer stalled mid-handshake or mid-frame is
        // holding a socket (and a buffer) hostage — reclaim it. Idle
        // *between* frames is legal and never evicted.
        let mid_read = matches!(self.kind, Kind::Handshake) || self.rlen > self.rstart;
        if cfg.read_idle_timeout > Duration::ZERO
            && mid_read
            && now.duration_since(self.last_rx) > cfg.read_idle_timeout
        {
            return Err(Retire::Idle);
        }
        Ok(())
    }

    /// Records peer liveness once per scan round (not once per frame —
    /// the suspicion clock does not need sub-round resolution).
    fn note_heard(&self, ctx: &LoopCtx, heard: bool, now: Instant) {
        if heard {
            if let Kind::Frames(peer) = self.kind {
                ctx.last_heard.lock().insert(peer, now);
            }
        }
    }

    /// Guarantees the buffer has room to read more bytes, compacting
    /// parsed-off space first and growing only when one frame is larger
    /// than the standard buffer.
    fn make_read_room(&mut self, cfg: &LoopConfig) -> Result<(), Retire> {
        if self.rlen < self.rbuf.len() {
            return Ok(());
        }
        if self.rstart > 0 {
            self.rbuf.copy_within(self.rstart..self.rlen, 0);
            self.rlen -= self.rstart;
            self.rstart = 0;
            return Ok(());
        }
        // A single frame spans the whole buffer: grow (bounded — the
        // length prefix was already checked against max_frame_len).
        let grown = (self.rbuf.len().max(64) * 2).min(cfg.max_frame_len.saturating_add(8));
        if grown <= self.rbuf.len() {
            return Err(Retire::Poisoned);
        }
        self.rbuf.resize(grown, 0);
        Ok(())
    }

    /// Consumes every complete handshake/heartbeat/frame in the buffer.
    fn parse_available(&mut self, ctx: &LoopCtx, cfg: &LoopConfig) -> Result<(), Retire> {
        loop {
            let avail = self.rbuf.get(self.rstart..self.rlen).unwrap_or(&[]);
            match &self.kind {
                Kind::Handshake => {
                    let Some((id, _)) = avail.split_first_chunk::<8>() else {
                        return Ok(());
                    };
                    let peer = ProcessId::new(u64::from_le_bytes(*id));
                    self.rstart += 8;
                    self.kind = Kind::Frames(peer);
                    ctx.last_heard.lock().insert(peer, self.last_rx);
                }
                Kind::Frames(peer) => {
                    let peer = *peer;
                    let Some((len_bytes, rest)) = avail.split_first_chunk::<4>() else {
                        return Ok(());
                    };
                    let len = u32::from_le_bytes(*len_bytes) as usize;
                    if len == 0 {
                        // Heartbeat: pure liveness, no payload.
                        ctx.counters.heartbeats_heard.fetch_add(1, Ordering::Relaxed);
                        self.rstart += 4;
                        continue;
                    }
                    if len > cfg.max_frame_len {
                        // A hostile or corrupt length prefix must not
                        // trigger an unbounded allocation — and framing
                        // is lost anyway. Drop the connection.
                        ctx.counters.oversize_rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(Retire::Poisoned);
                    }
                    let Some(body) = rest.get(..len) else {
                        // Partial frame: wait for the rest.
                        return Ok(());
                    };
                    // Route by the optional v2 group envelope, then
                    // zero-copy decode the inner body: payload slices
                    // borrow from `rbuf`; the one copy happens in
                    // `into_owned` at the channel boundary.
                    let (group, inner) = match codec::split_group_envelope(body) {
                        Some((gid, inner)) => (Some(gid), inner),
                        None => (None, body),
                    };
                    let msg = match inner.first() {
                        Some(&codec::BINARY_V1) => {
                            codec::decode_body_ref(inner).map(BodyRef::into_owned)
                        }
                        // Envelopes never nest; treat as undecodable.
                        Some(&codec::GROUP_ENVELOPE_V2) => None,
                        _ if cfg.accept_json => codec::decode_body(inner),
                        _ => None,
                    };
                    let Some(msg) = msg else { return Err(Retire::Poisoned) };
                    self.rstart += 4 + len;
                    if ctx.tx.send((peer, group, msg)).is_err() {
                        return Err(Retire::Gone);
                    }
                }
                Kind::Out { .. } => return Ok(()),
            }
        }
    }

    // ------------------------------------------------------ outbound ---

    fn service_out(
        &mut self,
        ctx: &LoopCtx,
        cfg: &LoopConfig,
        progress: &mut bool,
    ) -> Result<(), Retire> {
        let Kind::Out { queue, broken } = &self.kind else { return Ok(()) };
        let (queue, broken) = (Arc::clone(queue), Arc::clone(broken));
        if broken.load(Ordering::Acquire) {
            // A sender declared the queue stalled; retire and account.
            return Err(Retire::Gone);
        }
        loop {
            if self.wpos < self.wbuf.len() {
                let Some(src) = self.wbuf.get(self.wpos..) else { break };
                match self.stream.write(src) {
                    Ok(0) => return Err(Retire::Gone),
                    Ok(n) => {
                        self.wpos += n;
                        *progress = true;
                        if self.wpos == self.wbuf.len() {
                            ctx.stats.flushes.fetch_add(1, Ordering::Relaxed);
                            ctx.stats.frames_flushed.fetch_add(self.wframes, Ordering::Relaxed);
                            self.wframes = 0;
                            self.wbuf.clear();
                            self.wpos = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(Retire::Gone),
                }
            } else {
                self.wbuf.clear();
                self.wpos = 0;
                let taken =
                    queue.take_batch(&mut self.wbuf, cfg.max_coalesce_frames, cfg.max_flush_bytes);
                if taken.frames == 0 {
                    if queue.is_closed() {
                        // Graceful retirement: everything flushed.
                        return Err(Retire::Gone);
                    }
                    break;
                }
                self.wframes = taken.frames;
                ctx.stats.coalesce_max.fetch_max(taken.frames, Ordering::Relaxed);
                *progress = true;
            }
        }
        Ok(())
    }

    /// Retires the connection: accounts unwritten frames as dropped,
    /// poisons sender handles, recycles buffers.
    fn retire(self, ctx: &LoopCtx, pool: &mut BufPool) {
        if let Kind::Out { queue, broken } = &self.kind {
            broken.store(true, Ordering::Release);
            let dropped = self.wframes + queue.drain_remaining();
            if dropped > 0 {
                ctx.stats.frames_dropped.fetch_add(dropped, Ordering::Relaxed);
            }
        }
        ctx.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
        pool.put(self.rbuf);
        pool.put(self.wbuf);
    }
}

fn loop_main(shared: &Arc<LoopShared>, ctx: &Arc<LoopCtx>, cfg: &LoopConfig) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut pool = BufPool::new(cfg.read_buf_bytes);
    let mut idle_rounds: u32 = 0;
    let mut grace_until: Option<Instant> = None;
    loop {
        let now = Instant::now();
        let mut progress = false;
        // Adopt newly registered connections.
        let fresh = std::mem::take(&mut *lock(&shared.inbox));
        for reg in fresh {
            ctx.counters.conns_opened.fetch_add(1, Ordering::Relaxed);
            conns.push(match reg {
                Register::Inbound(stream) => Conn::inbound(stream, &mut pool, now),
                Register::Outbound { stream, queue, broken } => {
                    Conn::outbound(stream, queue, broken, &mut pool, now)
                }
            });
            progress = true;
        }
        // Scan every connection, retiring the ones that are done for.
        let mut i = 0;
        while i < conns.len() {
            let verdict = conns
                .get_mut(i)
                .map(|c| c.service(now, ctx, cfg, &mut progress))
                .unwrap_or(Ok(()));
            match verdict {
                Ok(()) => i += 1,
                Err(kind) => {
                    if matches!(kind, Retire::Idle) {
                        ctx.counters.idle_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let gone = conns.swap_remove(i);
                    gone.retire(ctx, &mut pool);
                    progress = true;
                }
            }
        }
        // Shutdown: flush what the sockets will take, bounded by a
        // grace window, then account the rest as dropped and exit.
        if shared.shutdown.load(Ordering::SeqCst) {
            let deadline = *grace_until.get_or_insert(now + SHUTDOWN_GRACE);
            let pending = conns.iter().any(Conn::has_unflushed);
            if !pending || now >= deadline {
                for gone in conns.drain(..) {
                    gone.retire(ctx, &mut pool);
                }
                return;
            }
        }
        if progress {
            idle_rounds = 0;
            continue;
        }
        // Nothing moved: park with an escalating tick so an idle
        // transport costs ~no CPU but wakes instantly on enqueue.
        idle_rounds = idle_rounds.saturating_add(1);
        let tick = Duration::from_micros(50)
            .saturating_mul(idle_rounds.min(16))
            .min(IDLE_TICK_CAP);
        let mut wake = lock(&shared.wake);
        if !*wake {
            let (guard, _) = shared
                .wake_cv
                .wait_timeout(wake, tick)
                .unwrap_or_else(PoisonError::into_inner);
            wake = guard;
        }
        *wake = false;
    }
}
