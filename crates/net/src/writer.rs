//! Per-connection outbound write state: a bounded frame queue with a
//! reserved heartbeat slot, drained by the transport's event loop
//! ([`crate::evloop`]).
//!
//! Historically each connection owned a dedicated writer *thread*; the
//! readiness-loop rewrite keeps the queue discipline but moves the
//! socket writes into the shared loop threads. The queue is still what
//! makes the transport honor the `CO_RFIFO` channel envelope under
//! concurrency:
//!
//! * every producer (multicast fan-out, heartbeat prober, concurrent
//!   `send` callers) only *enqueues* complete frames — one loop thread
//!   owns each connection's socket, so frames can never tear;
//! * the queue is bounded, so one stalled peer exerts backpressure on
//!   its own channel without blocking writes to other peers — a
//!   producer that cannot enqueue within its timeout declares the
//!   connection broken instead of wedging the multicast;
//! * heartbeats do NOT compete with data for queue slots: a reserved
//!   out-of-band slot ([`OutQueue::push_heartbeat`]) always accepts the
//!   next probe and the drain emits it *ahead* of queued data, so a
//!   queue sitting at the backpressure watermark can no longer delay
//!   liveness probes past `heartbeat_interval` and trigger false
//!   suspicion of a healthy-but-busy peer;
//! * the drain coalesces every frame already queued into one buffered
//!   socket write, turning N queued frames into one syscall.

use crate::evloop::LoopWaker;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Flush/coalesce accounting shared by every connection of one
/// transport; surfaced through `NetStats` and `vsgm-obs`.
///
/// The first three write counters obey a conservation law the soak
/// tests assert: once a transport is quiescent (every queue drained or
/// torn down), `frames_enqueued == frames_flushed + frames_dropped`.
#[derive(Debug, Default)]
pub(crate) struct WriterStats {
    /// Frames accepted into any per-connection queue (data + heartbeats).
    pub frames_enqueued: AtomicU64,
    /// Frames fully written to a socket.
    pub frames_flushed: AtomicU64,
    /// Frames discarded without reaching the wire: queue remnants and
    /// in-flight coalesce buffers of torn-down connections.
    pub frames_dropped: AtomicU64,
    /// Completed coalesced socket flushes.
    pub flushes: AtomicU64,
    /// Largest number of frames coalesced into a single flush.
    pub coalesce_max: AtomicU64,
    /// High-water mark of any per-connection queue depth at enqueue time.
    pub queue_depth_max: AtomicU64,
    /// Enqueues that found a queue at or above the backpressure
    /// watermark (`TcpConfig::queue_watermark`): evidence that senders
    /// are outpacing a peer's connection.
    pub backpressure_hits: AtomicU64,
}

/// Why an enqueue did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The connection died (socket error) or the transport shut down.
    Closed,
    /// The queue stayed full for the whole timeout — the peer is stalled.
    Timeout,
}

struct OutInner {
    frames: VecDeque<Vec<u8>>,
    /// The reserved heartbeat slot: set by the prober regardless of how
    /// full `frames` is, drained ahead of it.
    hb_pending: bool,
    closed: bool,
}

/// What one [`OutQueue::take_batch`] drain carried.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TakenBatch {
    /// Frames moved into the flush buffer (heartbeat included).
    pub frames: u64,
    /// Whether the reserved heartbeat slot was drained.
    pub heartbeat: bool,
}

/// Bounded MPSC queue of encoded frames feeding one connection, drained
/// by the event loop thread that owns the socket.
pub(crate) struct OutQueue {
    // vsgm-lock-tier(1): the queue's only lock; held across the paired
    // condvar waits (required) and never while taking any other lock.
    inner: Mutex<OutInner>,
    // vsgm-lock-tier(1): condvar paired with `inner` — same tier, it is
    // only ever waited on with that one mutex.
    not_full: Condvar,
    cap: usize,
}

/// The std mutexes here are internal to the queue and never poisoned
/// while holding broken invariants (pushes and pops are single
/// statements); recover the guard rather than propagate.
fn lock(m: &Mutex<OutInner>) -> MutexGuard<'_, OutInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The zero-length heartbeat frame: a bare 4-byte length prefix of 0.
const HEARTBEAT_FRAME: [u8; 4] = [0, 0, 0, 0];

impl OutQueue {
    pub(crate) fn new(cap: usize) -> OutQueue {
        OutQueue {
            inner: Mutex::new(OutInner {
                frames: VecDeque::new(),
                hb_pending: false,
                closed: false,
            }),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues one frame, waiting up to `timeout` for space. Returns the
    /// queue depth after the push.
    fn push(&self, frame: Vec<u8>, timeout: Duration) -> Result<usize, PushError> {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.inner);
        loop {
            if g.closed {
                return Err(PushError::Closed);
            }
            if g.frames.len() < self.cap {
                g.frames.push_back(frame);
                return Ok(g.frames.len());
            }
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(PushError::Timeout);
            };
            let (guard, _timed_out) = self
                .not_full
                .wait_timeout(g, left)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    /// Claims the reserved heartbeat slot. Never waits and never fails on
    /// a full queue — that is the point: liveness probes must not queue
    /// behind data. Returns `false` only if the queue is closed. A probe
    /// arriving while one is already pending coalesces into it (`false`:
    /// nothing new was enqueued).
    pub(crate) fn push_heartbeat(&self) -> bool {
        let mut g = lock(&self.inner);
        if g.closed || g.hb_pending {
            return false;
        }
        g.hb_pending = true;
        true
    }

    /// Drains the reserved heartbeat slot and then every frame already
    /// queued (up to `max_frames` / `max_bytes`) into `buf`, heartbeat
    /// first. Non-blocking; returns what was taken.
    pub(crate) fn take_batch(
        &self,
        buf: &mut Vec<u8>,
        max_frames: u64,
        max_bytes: usize,
    ) -> TakenBatch {
        let mut g = lock(&self.inner);
        let mut taken = TakenBatch::default();
        if g.hb_pending {
            g.hb_pending = false;
            buf.extend_from_slice(&HEARTBEAT_FRAME);
            taken.frames += 1;
            taken.heartbeat = true;
        }
        while taken.frames < max_frames.max(1) && (taken.frames == 0 || buf.len() < max_bytes)
        {
            match g.frames.pop_front() {
                Some(f) => {
                    buf.extend_from_slice(&f);
                    taken.frames += 1;
                }
                None => break,
            }
        }
        if taken.frames > 0 {
            self.not_full.notify_all();
        }
        taken
    }

    /// Whether nothing is left to write (no frames, no pending probe).
    pub(crate) fn is_drained(&self) -> bool {
        let g = lock(&self.inner);
        g.frames.is_empty() && !g.hb_pending
    }

    /// Whether the queue has been closed.
    pub(crate) fn is_closed(&self) -> bool {
        lock(&self.inner).closed
    }

    /// Closes the queue: pending frames still drain, new pushes fail.
    pub(crate) fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_full.notify_all();
    }

    /// Closes and empties the queue, returning how many frames (probe
    /// included) were thrown away — the teardown side of the
    /// `enqueued == flushed + dropped` conservation law.
    pub(crate) fn drain_remaining(&self) -> u64 {
        let mut g = lock(&self.inner);
        g.closed = true;
        let mut n = g.frames.len() as u64;
        g.frames.clear();
        if g.hb_pending {
            g.hb_pending = false;
            n += 1;
        }
        self.not_full.notify_all();
        n
    }
}

/// Handle to one connection's outbound side: clone-cheap, shared between
/// the transport map, senders, and the heartbeat prober. The socket
/// itself lives in the event loop; this handle only feeds its queue.
#[derive(Clone)]
pub(crate) struct PeerWriter {
    queue: Arc<OutQueue>,
    broken: Arc<AtomicBool>,
    waker: LoopWaker,
    stats: Arc<WriterStats>,
}

impl PeerWriter {
    pub(crate) fn new(
        queue: Arc<OutQueue>,
        broken: Arc<AtomicBool>,
        waker: LoopWaker,
        stats: Arc<WriterStats>,
    ) -> PeerWriter {
        PeerWriter { queue, broken, waker, stats }
    }

    /// Enqueues an already-encoded frame and wakes the owning loop;
    /// returns the post-push depth.
    pub(crate) fn push(&self, frame: Vec<u8>, timeout: Duration) -> Result<usize, PushError> {
        if self.broken.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        let depth = self.queue.push(frame, timeout)?;
        self.stats.frames_enqueued.fetch_add(1, Ordering::Relaxed);
        self.waker.wake();
        Ok(depth)
    }

    /// Claims the reserved heartbeat slot and wakes the owning loop.
    /// Returns `false` if the connection is down (probe not accepted).
    pub(crate) fn push_heartbeat(&self) -> bool {
        if self.broken.load(Ordering::Acquire) {
            return false;
        }
        if self.queue.push_heartbeat() {
            self.stats.frames_enqueued.fetch_add(1, Ordering::Relaxed);
            self.waker.wake();
            return true;
        }
        // A probe was already pending; the connection is still live.
        !self.queue.is_closed()
    }

    /// Whether the loop (or a stalled-queue sender) declared the
    /// connection dead.
    pub(crate) fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Marks the connection dead and wakes the loop so it tears the
    /// socket down and accounts the queue remnants as dropped.
    pub(crate) fn mark_broken(&self) {
        self.broken.store(true, Ordering::Release);
        self.queue.close();
        self.waker.wake();
    }

    /// Same connection (not merely same peer): used so a thread only
    /// evicts the map entry it actually observed broken, never a fresh
    /// reconnection racing in underneath it.
    pub(crate) fn same_as(&self, other: &PeerWriter) -> bool {
        Arc::ptr_eq(&self.broken, &other.broken)
    }

    /// Closes the queue; queued frames still flush, then the loop
    /// retires the connection.
    pub(crate) fn close(&self) {
        self.queue.close();
        self.waker.wake();
    }
}

impl std::fmt::Debug for PeerWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerWriter").field("broken", &self.is_broken()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(cap: usize) -> OutQueue {
        OutQueue::new(cap)
    }

    fn frames_in(buf: &[u8]) -> Vec<Vec<u8>> {
        // Split a coalesced buffer back into length-prefixed frames.
        let mut out = Vec::new();
        let mut rest = buf;
        while let Some((len, tail)) = rest.split_first_chunk::<4>() {
            let n = u32::from_le_bytes(*len) as usize;
            let (body, tail) = tail.split_at(n);
            out.push(body.to_vec());
            rest = tail;
        }
        assert!(rest.is_empty(), "trailing bytes in coalesced buffer");
        out
    }

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn fifo_order_and_coalescing() {
        let q = q(64);
        for b in [b"aa".as_slice(), b"bb", b"cc"] {
            q.push(frame(b), Duration::from_secs(1)).unwrap();
        }
        let mut buf = Vec::new();
        let taken = q.take_batch(&mut buf, 32, 1 << 20);
        assert_eq!(taken, TakenBatch { frames: 3, heartbeat: false });
        assert_eq!(frames_in(&buf), vec![b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()]);
        assert!(q.is_drained());
    }

    /// The pinned heartbeat-priority regression, queue half: a queue
    /// full of data must still accept a probe (reserved slot), and the
    /// drain must emit the probe *before* the queued data. Pre-rewrite,
    /// heartbeats were ordinary frames: a full queue rejected them
    /// (`push` with a zero timeout timed out) and the prober silently
    /// skipped the beat — the false-suspicion mechanism.
    #[test]
    fn heartbeat_has_a_reserved_slot_and_front_priority() {
        let q = q(2);
        q.push(frame(b"d1"), Duration::from_secs(1)).unwrap();
        q.push(frame(b"d2"), Duration::from_secs(1)).unwrap();
        // Queue is at capacity: a data push would time out...
        assert_eq!(q.push(frame(b"d3"), Duration::from_millis(5)), Err(PushError::Timeout));
        // ...but the probe still lands, and coalesces with a second one.
        assert!(q.push_heartbeat());
        assert!(!q.push_heartbeat(), "second probe coalesces into the pending one");
        let mut buf = Vec::new();
        let taken = q.take_batch(&mut buf, 32, 1 << 20);
        assert_eq!(taken, TakenBatch { frames: 3, heartbeat: true });
        let frames = frames_in(&buf);
        assert_eq!(frames.first().map(Vec::len), Some(0), "heartbeat drains first");
        assert_eq!(&frames[1..], &[b"d1".to_vec(), b"d2".to_vec()]);
    }

    #[test]
    fn bounded_queue_times_out_then_recovers() {
        let q = q(1);
        q.push(frame(b"x"), Duration::from_secs(1)).unwrap();
        assert_eq!(q.push(frame(b"y"), Duration::from_millis(10)), Err(PushError::Timeout));
        let mut buf = Vec::new();
        q.take_batch(&mut buf, 32, 1 << 20);
        // Space freed: the next push succeeds.
        assert_eq!(q.push(frame(b"y"), Duration::from_millis(10)), Ok(1));
    }

    #[test]
    fn close_keeps_queued_frames_for_the_drain() {
        let q = q(8);
        q.push(frame(b"tail"), Duration::from_secs(1)).unwrap();
        q.close();
        assert_eq!(q.push(frame(b"late"), Duration::from_millis(5)), Err(PushError::Closed));
        assert!(!q.push_heartbeat(), "closed queue rejects probes");
        let mut buf = Vec::new();
        let taken = q.take_batch(&mut buf, 32, 1 << 20);
        assert_eq!(taken.frames, 1, "close still drains queued frames");
        assert_eq!(frames_in(&buf), vec![b"tail".to_vec()]);
    }

    #[test]
    fn drain_remaining_counts_data_and_pending_probe() {
        let q = q(8);
        q.push(frame(b"a"), Duration::from_secs(1)).unwrap();
        q.push(frame(b"b"), Duration::from_secs(1)).unwrap();
        assert!(q.push_heartbeat());
        assert_eq!(q.drain_remaining(), 3);
        assert!(q.is_drained() && q.is_closed());
        assert_eq!(q.push(frame(b"c"), Duration::from_millis(5)), Err(PushError::Closed));
    }

    /// Concurrent producers against one consumer: every pushed frame is
    /// drained exactly once, in an order that preserves each producer's
    /// own sequence. (This is the queue half of the old writer-thread
    /// TSan smoke; the loop half lives in the tcp tests.)
    #[test]
    fn concurrent_producers_drain_exactly_once_in_producer_order() {
        let q = Arc::new(q(16));
        const PRODUCERS: u8 = 3;
        const PER: u32 = 400;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got: Vec<Vec<u8>> = Vec::new();
                let mut buf = Vec::new();
                while got.len() < (PRODUCERS as usize) * (PER as usize) {
                    buf.clear();
                    if q.take_batch(&mut buf, 8, 1 << 20).frames == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    got.extend(frames_in(&buf));
                }
                got
            })
        };
        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER {
                        let mut body = vec![t];
                        body.extend_from_slice(&i.to_le_bytes());
                        q.push(frame(&body), Duration::from_secs(10)).unwrap();
                    }
                });
            }
        });
        let got = consumer.join().unwrap();
        let mut next = [0u32; PRODUCERS as usize];
        for body in &got {
            let (t, seq) = body.split_first().unwrap();
            let i = u32::from_le_bytes(seq.try_into().unwrap());
            assert_eq!(i, next[*t as usize], "producer {t} reordered");
            next[*t as usize] += 1;
        }
        assert_eq!(next, [PER; PRODUCERS as usize]);
    }
}
