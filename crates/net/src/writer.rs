//! Per-connection write path: each outgoing TCP connection owns its
//! write half behind a bounded frame queue drained by a single writer
//! thread.
//!
//! This is what makes the transport honor the `CO_RFIFO` channel
//! envelope under concurrency:
//!
//! * every producer (multicast fan-out, heartbeat prober, concurrent
//!   `send` callers) only *enqueues* complete frames — one thread per
//!   connection performs all socket writes, so frames can never tear;
//! * the queue is bounded, so one stalled peer exerts backpressure on
//!   its own channel without blocking writes to other peers forever —
//!   a producer that cannot enqueue within its timeout declares the
//!   connection broken instead of wedging the multicast;
//! * the writer coalesces every frame already queued into one buffered
//!   `write_all`, turning N queued frames into one syscall.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Flush/coalesce accounting shared by every writer thread of one
/// transport; surfaced through `NetStats` and `vsgm-obs`.
#[derive(Debug, Default)]
pub(crate) struct WriterStats {
    /// Buffered `write_all` flushes issued.
    pub flushes: AtomicU64,
    /// Frames carried by those flushes (≥ flushes; the ratio is the mean
    /// coalescing factor).
    pub frames_flushed: AtomicU64,
    /// Largest number of frames coalesced into a single flush.
    pub coalesce_max: AtomicU64,
    /// High-water mark of any per-connection queue depth at enqueue time.
    pub queue_depth_max: AtomicU64,
    /// Enqueues that found a queue at or above the backpressure
    /// watermark (`TcpConfig::queue_watermark`): evidence that senders
    /// are outpacing a peer's connection.
    pub backpressure_hits: AtomicU64,
}

/// Why an enqueue did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The writer died (socket error) or the transport shut down.
    Closed,
    /// The queue stayed full for the whole timeout — the peer is stalled.
    Timeout,
}

struct QueueInner {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// Bounded MPSC queue of encoded frames feeding one writer thread.
struct FrameQueue {
    // vsgm-lock-tier(1): the queue's only lock; held across the paired
    // condvar waits (required) and never while taking another lock.
    inner: Mutex<QueueInner>,
    // vsgm-lock-tier(1): condvar paired with `inner` — same tier, it is
    // only ever waited on with that one mutex.
    not_empty: Condvar,
    // vsgm-lock-tier(1): condvar paired with `inner`, as above.
    not_full: Condvar,
    cap: usize,
}

/// The std mutexes here are internal to the queue and never poisoned
/// while holding broken invariants (pushes and pops are single
/// statements); recover the guard rather than propagate.
fn lock(m: &Mutex<QueueInner>) -> MutexGuard<'_, QueueInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FrameQueue {
    fn new(cap: usize) -> FrameQueue {
        FrameQueue {
            inner: Mutex::new(QueueInner { frames: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues one frame, waiting up to `timeout` for space. Returns the
    /// queue depth after the push.
    fn push(&self, frame: Vec<u8>, timeout: Duration) -> Result<usize, PushError> {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.inner);
        loop {
            if g.closed {
                return Err(PushError::Closed);
            }
            if g.frames.len() < self.cap {
                g.frames.push_back(frame);
                let depth = g.frames.len();
                self.not_empty.notify_one();
                return Ok(depth);
            }
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(PushError::Timeout);
            };
            let (guard, _timed_out) = self
                .not_full
                .wait_timeout(g, left)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    /// Blocks for the next frame, then drains every frame already queued
    /// (up to `max_frames` / `max_bytes`) into `buf`. Returns the number
    /// of frames taken, or `None` once the queue is closed and empty.
    fn pop_batch(&self, buf: &mut Vec<u8>, max_frames: u64, max_bytes: usize) -> Option<u64> {
        let mut g = lock(&self.inner);
        loop {
            if !g.frames.is_empty() {
                let mut taken = 0u64;
                while taken < max_frames.max(1) && (taken == 0 || buf.len() < max_bytes) {
                    match g.frames.pop_front() {
                        Some(f) => {
                            buf.extend_from_slice(&f);
                            taken += 1;
                        }
                        None => break,
                    }
                }
                self.not_full.notify_all();
                return Some(taken);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending frames still drain, new pushes fail.
    fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Handle to one connection's writer: clone-cheap (two `Arc`s), shared
/// between the transport map, senders, and the heartbeat prober.
#[derive(Clone)]
pub(crate) struct PeerWriter {
    queue: Arc<FrameQueue>,
    broken: Arc<AtomicBool>,
}

impl PeerWriter {
    /// Takes ownership of the connection's write half and starts the
    /// writer thread.
    pub(crate) fn spawn(
        stream: TcpStream,
        queue_cap: usize,
        max_coalesce_frames: u64,
        max_flush_bytes: usize,
        stats: Arc<WriterStats>,
    ) -> PeerWriter {
        let queue = Arc::new(FrameQueue::new(queue_cap));
        let broken = Arc::new(AtomicBool::new(false));
        let writer = PeerWriter { queue: Arc::clone(&queue), broken: Arc::clone(&broken) };
        std::thread::Builder::new()
            .name("vsgm-tcp-writer".into())
            .spawn(move || {
                writer_loop(stream, &queue, &broken, &stats, max_coalesce_frames, max_flush_bytes);
            })
            // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
            // at connection setup — not a protocol state, nothing to unwind to
            .expect("spawn writer thread");
        writer
    }

    /// Enqueues an already-encoded frame; returns the post-push depth.
    pub(crate) fn push(&self, frame: Vec<u8>, timeout: Duration) -> Result<usize, PushError> {
        if self.broken.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        self.queue.push(frame, timeout)
    }

    /// Whether the writer declared the connection dead.
    pub(crate) fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Marks the connection dead and wakes the writer so it exits.
    pub(crate) fn mark_broken(&self) {
        self.broken.store(true, Ordering::Release);
        self.queue.close();
    }

    /// Same writer (not merely same peer): used so a thread only evicts
    /// the map entry it actually observed broken, never a fresh
    /// reconnection racing in underneath it.
    pub(crate) fn same_as(&self, other: &PeerWriter) -> bool {
        Arc::ptr_eq(&self.broken, &other.broken)
    }

    /// Closes the queue; queued frames still flush, then the thread exits.
    pub(crate) fn close(&self) {
        self.queue.close();
    }
}

impl std::fmt::Debug for PeerWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerWriter").field("broken", &self.is_broken()).finish()
    }
}

fn writer_loop(
    mut stream: TcpStream,
    queue: &FrameQueue,
    broken: &AtomicBool,
    stats: &WriterStats,
    max_coalesce_frames: u64,
    max_flush_bytes: usize,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    loop {
        buf.clear();
        let Some(frames) = queue.pop_batch(&mut buf, max_coalesce_frames, max_flush_bytes)
        else {
            break;
        };
        if frames == 0 {
            continue;
        }
        stats.flushes.fetch_add(1, Ordering::Relaxed);
        stats.frames_flushed.fetch_add(frames, Ordering::Relaxed);
        stats.coalesce_max.fetch_max(frames, Ordering::Relaxed);
        if stream.write_all(&buf).is_err() {
            broken.store(true, Ordering::Release);
            queue.close();
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_flush_in_fifo_order() {
        let (client, mut server) = loopback_pair();
        let stats = Arc::new(WriterStats::default());
        let w = PeerWriter::spawn(client, 64, 32, 1 << 20, Arc::clone(&stats));
        for b in [b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()] {
            w.push(b, Duration::from_secs(1)).unwrap();
        }
        let mut got = [0u8; 6];
        server.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"aabbcc");
        assert!(stats.flushes.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.frames_flushed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn close_drains_queued_frames() {
        let (client, mut server) = loopback_pair();
        let w = PeerWriter::spawn(client, 64, 32, 1 << 20, Arc::default());
        w.push(b"tail".to_vec(), Duration::from_secs(1)).unwrap();
        w.close();
        let mut got = [0u8; 4];
        server.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"tail");
        // After close, pushes fail with Closed.
        assert_eq!(
            w.push(b"late".to_vec(), Duration::from_millis(10)),
            Err(PushError::Closed)
        );
    }

    #[test]
    fn full_queue_times_out_without_wedging() {
        let (client, server) = loopback_pair();
        // Tiny queue, and nobody reads `server`: once the socket buffer
        // fills, the writer blocks and the queue stays full.
        let w = PeerWriter::spawn(client, 2, 32, 1 << 20, Arc::default());
        let big = vec![0u8; 1 << 20];
        let mut saw_timeout = false;
        for _ in 0..64 {
            match w.push(big.clone(), Duration::from_millis(20)) {
                Ok(_) => {}
                Err(PushError::Timeout) => {
                    saw_timeout = true;
                    break;
                }
                Err(PushError::Closed) => panic!("writer died unexpectedly"),
            }
        }
        assert!(saw_timeout, "queue never exerted backpressure");
        drop(server);
    }

    #[test]
    fn broken_socket_marks_writer_broken() {
        let (client, server) = loopback_pair();
        let w = PeerWriter::spawn(client, 64, 32, 1 << 20, Arc::default());
        drop(server);
        // Writes eventually fail; the writer flags itself broken and
        // subsequent pushes are rejected.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let r = w.push(vec![0u8; 4096], Duration::from_millis(50));
            if r == Err(PushError::Closed) && w.is_broken() {
                break;
            }
            assert!(Instant::now() < deadline, "writer never noticed the dead socket");
        }
    }
}
