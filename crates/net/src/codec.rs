//! Wire codec for [`NetMsg`] frames: a compact, deterministic binary
//! format with transparent JSON interop.
//!
//! Every frame body starts with a discriminating first byte. Binary
//! bodies begin with the version byte [`BINARY_V1`] (`0x01`); JSON bodies
//! begin with `{` (`0x7B`, the first byte of every serde_json-encoded
//! `NetMsg`). [`decode_body`] sniffs that byte, so a group can run mixed
//! JSON and binary peers during a rolling transition and every receiver
//! understands both.
//!
//! The binary layout is fixed-width little-endian, length-prefixed, and
//! *deterministic*: all maps and sets in `NetMsg` are `BTreeMap`/
//! `BTreeSet`, so iteration — and therefore the encoded bytes — depend
//! only on the message value. Layout (all integers LE):
//!
//! ```text
//! body      := 0x01 msg
//! msg       := tag:u8 payload
//! tag       := 0 ViewMsg | 1 App | 2 Fwd | 3 Sync | 4 SyncAgg
//!            | 5 Baseline::Propose | 6 Baseline::Sync | 7 AppBatch
//! view      := epoch:u64 proposer:u64 n:u32 (pid:u64 cid:u64)^n
//! cut       := n:u32 (pid:u64 index:u64)^n
//! bytes     := n:u32 byte^n
//! sync      := cid:u64 has_view:u8 [view] cut
//! payloads:
//!   ViewMsg := view
//!   App     := bytes
//!   Fwd     := origin:u64 view index:u64 bytes
//!   Sync    := sync
//!   SyncAgg := n:u32 (pid:u64 sync)^n
//!   Propose := n:u32 pid:u64^n seq:u64
//!   BlSync  := n:u32 pid:u64^n tag_seq:u64 tag_pid:u64 view cut
//!   AppBatch:= n:u32 bytes^n
//! ```
//!
//! [`decode_body`] is total: no input can panic, allocate unboundedly, or
//! read past the frame. Element counts are validated against the bytes
//! actually remaining before any allocation, and trailing garbage after a
//! well-formed message rejects the frame.

use std::io;
use vsgm_types::{
    AppMsg, BaselineMsg, Cut, FwdPayload, GroupId, NetMsg, ProcessId, StartChangeId, SyncPayload,
    View, ViewId,
};

/// Version byte opening every binary-coded frame body. Distinct from `{`
/// (0x7B), the first byte of every JSON-coded body, so receivers can
/// sniff the format per frame. Future binary revisions get new bytes.
pub const BINARY_V1: u8 = 0x01;

/// Version byte opening a *group-enveloped* frame body (the multi-group
/// server protocol):
///
/// ```text
/// envelope := 0x02 group:u64le inner_body
/// ```
///
/// where `inner_body` is a complete single-group body — [`BINARY_V1`]
/// binary or (when the receiver still accepts JSON) a serde_json object.
/// The envelope adds exactly 9 bytes and no per-message allocation on
/// the decode path: [`split_group_envelope`] hands back the group id and
/// a borrowed inner-body slice, so the zero-copy
/// [`decode_body_ref`] path applies unchanged to enveloped frames.
///
/// Legacy peers keep sending bare `0x01`/JSON bodies; receivers sniff
/// the first byte per frame, so one connection can carry enveloped and
/// single-group frames mixed (the same rolling-transition rule the
/// binary/JSON split follows).
pub const GROUP_ENVELOPE_V2: u8 = 0x02;

const TAG_VIEW_MSG: u8 = 0;
const TAG_APP: u8 = 1;
const TAG_FWD: u8 = 2;
const TAG_SYNC: u8 = 3;
const TAG_SYNC_AGG: u8 = 4;
const TAG_BL_PROPOSE: u8 = 5;
const TAG_BL_SYNC: u8 = 6;
const TAG_APP_BATCH: u8 = 7;

/// Encoding selected for *outgoing* frames. Decoding always accepts both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// serde_json body — the legacy format, kept for rolling transitions
    /// and human-readable captures.
    Json,
    /// The compact binary format above (default).
    #[default]
    Binary,
}

/// Encodes a message body (no length prefix) in the chosen format.
///
/// # Errors
///
/// Returns an error only for [`WireFormat::Json`] serialization failures;
/// binary encoding is infallible.
pub fn encode_body(msg: &NetMsg, format: WireFormat) -> io::Result<Vec<u8>> {
    match format {
        WireFormat::Json => Ok(serde_json::to_vec(msg)?),
        WireFormat::Binary => {
            let mut out = Vec::with_capacity(msg.wire_size() + 16);
            out.push(BINARY_V1);
            enc_msg(&mut out, msg);
            Ok(out)
        }
    }
}

/// Encodes a complete length-prefixed frame: `len:u32le body`.
///
/// # Errors
///
/// Propagates [`encode_body`] errors.
pub fn encode_frame(msg: &NetMsg, format: WireFormat) -> io::Result<Vec<u8>> {
    let body = encode_body(msg, format)?;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Encodes a message body wrapped in the [`GROUP_ENVELOPE_V2`] group
/// envelope: `0x02 group:u64le inner_body`.
///
/// # Errors
///
/// Propagates [`encode_body`] errors (JSON serialization only).
pub fn encode_body_grouped(group: GroupId, msg: &NetMsg, format: WireFormat) -> io::Result<Vec<u8>> {
    let inner = encode_body(msg, format)?;
    let mut out = Vec::with_capacity(9 + inner.len());
    out.push(GROUP_ENVELOPE_V2);
    out.extend_from_slice(&group.raw().to_le_bytes());
    out.extend_from_slice(&inner);
    Ok(out)
}

/// Encodes a complete length-prefixed, group-enveloped frame:
/// `len:u32le 0x02 group:u64le inner_body`.
///
/// # Errors
///
/// Propagates [`encode_body_grouped`] errors.
pub fn encode_frame_grouped(
    group: GroupId,
    msg: &NetMsg,
    format: WireFormat,
) -> io::Result<Vec<u8>> {
    let body = encode_body_grouped(group, msg, format)?;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Splits a [`GROUP_ENVELOPE_V2`] body into its group id and the
/// borrowed inner body. Returns `None` for bodies that do not open with
/// the envelope byte or are too short to carry the header — callers fall
/// back to the single-group decoders in that case. Total: no input
/// panics or allocates.
pub fn split_group_envelope(body: &[u8]) -> Option<(GroupId, &[u8])> {
    let (&first, rest) = body.split_first()?;
    if first != GROUP_ENVELOPE_V2 {
        return None;
    }
    let (gid, inner) = rest.split_first_chunk::<8>()?;
    Some((GroupId::new(u64::from_le_bytes(*gid)), inner))
}

/// Decodes a frame body with group routing: enveloped bodies yield
/// `(Some(group), msg)`, legacy single-group bodies — [`BINARY_V1`]
/// binary or, when `accept_json` is set, JSON — yield `(None, msg)`.
/// The inner body of an envelope follows the same sniffing rules, so an
/// enveloped JSON body is only accepted while `accept_json` holds.
/// Returns `None` for any malformed input (including an envelope whose
/// inner body is empty or undecodable).
pub fn decode_body_routed(body: &[u8], accept_json: bool) -> Option<(Option<GroupId>, NetMsg)> {
    let (group, inner) = match split_group_envelope(body) {
        Some((gid, inner)) => (Some(gid), inner),
        None => (None, body),
    };
    let msg = match inner.first() {
        Some(&BINARY_V1) => decode_body_ref(inner)?.into_owned(),
        Some(&GROUP_ENVELOPE_V2) => return None, // envelopes never nest
        Some(_) if accept_json => serde_json::from_slice(inner).ok()?,
        _ => return None,
    };
    Some((group, msg))
}

/// Decodes a frame body, sniffing the format from its first byte:
/// [`BINARY_V1`] selects the binary decoder, anything else is handed to
/// the JSON decoder. Returns `None` for any malformed input.
///
/// This is the *owning* convenience path; the transport hot path uses
/// [`decode_body_ref`] to avoid copying payload bytes out of the read
/// buffer until a message actually crosses a thread boundary.
pub fn decode_body(body: &[u8]) -> Option<NetMsg> {
    match body.first() {
        Some(&BINARY_V1) => Some(decode_body_ref(body)?.into_owned()),
        _ => serde_json::from_slice(body).ok(),
    }
}

/// A decoded frame body whose bulk payload bytes are still *borrowed*
/// from the frame buffer.
///
/// The payload-carrying variants (`App`, `AppBatch`, `Fwd`) are the hot
/// path at scale: they borrow their byte slices straight out of the
/// event loop's pooled read buffer, so validating and routing a frame
/// allocates nothing. Control-plane messages (views, syncs, baseline
/// rounds) decode into their owned structured form — they are small,
/// rare, and built from `BTreeMap`s that own storage anyway.
///
/// Call [`BodyRef::into_owned`] exactly once, at the point a message
/// leaves the read buffer's lifetime (e.g. crossing the delivery
/// channel); that is the single payload copy on the receive path.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyRef<'a> {
    /// An application payload, borrowed from the frame.
    App(&'a [u8]),
    /// A batch of application payloads, each borrowed from the frame.
    AppBatch(Vec<&'a [u8]>),
    /// A forwarded copy; the inner payload is borrowed from the frame.
    Fwd {
        /// Original sender of the forwarded message.
        origin: ProcessId,
        /// View the message was originally sent in.
        view: View,
        /// Per-sender FIFO index within that view.
        index: u64,
        /// The forwarded payload bytes.
        msg: &'a [u8],
    },
    /// A control-plane message, decoded owned.
    Owned(NetMsg),
}

impl BodyRef<'_> {
    /// Converts into an owned [`NetMsg`], copying any borrowed payload
    /// slices. This is the single copy of the zero-copy receive path.
    pub fn into_owned(self) -> NetMsg {
        match self {
            BodyRef::App(b) => NetMsg::App(AppMsg::new(b.to_vec())),
            BodyRef::AppBatch(parts) => {
                NetMsg::AppBatch(parts.into_iter().map(|b| AppMsg::new(b.to_vec())).collect())
            }
            BodyRef::Fwd { origin, view, index, msg } => NetMsg::Fwd(FwdPayload {
                origin,
                view,
                index,
                msg: AppMsg::new(msg.to_vec()),
            }),
            BodyRef::Owned(m) => m,
        }
    }
}

/// Decodes a [`BINARY_V1`] frame body without copying payload bytes:
/// `App`/`AppBatch`/`Fwd` payloads are returned as slices borrowing from
/// `body`. Non-binary bodies (JSON interop) are rejected here — callers
/// that still accept JSON fall back to [`decode_body`] explicitly.
///
/// Total like [`decode_body`]: no input panics, over-allocates, or reads
/// past the frame, and trailing garbage rejects the body.
pub fn decode_body_ref(body: &[u8]) -> Option<BodyRef<'_>> {
    let (&first, rest) = body.split_first()?;
    if first != BINARY_V1 {
        return None;
    }
    let mut cur = Cur { b: rest };
    let msg = dec_msg_ref(&mut cur)?;
    // Trailing bytes mean a corrupt or misframed body.
    cur.b.is_empty().then_some(msg)
}

// ------------------------------------------------------------ encode ---

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_view(out: &mut Vec<u8>, v: &View) {
    put_u64(out, v.id().epoch);
    put_u64(out, v.id().proposer);
    put_u32(out, v.start_ids().len() as u32);
    for (p, cid) in v.start_ids() {
        put_u64(out, p.raw());
        put_u64(out, cid.raw());
    }
}

fn put_cut(out: &mut Vec<u8>, c: &Cut) {
    put_u32(out, c.len() as u32);
    for (p, i) in c.iter() {
        put_u64(out, p.raw());
        put_u64(out, i);
    }
}

fn put_sync(out: &mut Vec<u8>, s: &SyncPayload) {
    put_u64(out, s.cid.raw());
    match &s.view {
        Some(v) => {
            out.push(1);
            put_view(out, v);
        }
        None => out.push(0),
    }
    put_cut(out, &s.cut);
}

fn enc_msg(out: &mut Vec<u8>, msg: &NetMsg) {
    match msg {
        NetMsg::ViewMsg(v) => {
            out.push(TAG_VIEW_MSG);
            put_view(out, v);
        }
        NetMsg::App(m) => {
            out.push(TAG_APP);
            put_bytes(out, m.as_bytes());
        }
        NetMsg::Fwd(f) => {
            out.push(TAG_FWD);
            put_u64(out, f.origin.raw());
            put_view(out, &f.view);
            put_u64(out, f.index);
            put_bytes(out, f.msg.as_bytes());
        }
        NetMsg::Sync(s) => {
            out.push(TAG_SYNC);
            put_sync(out, s);
        }
        NetMsg::SyncAgg(batch) => {
            out.push(TAG_SYNC_AGG);
            put_u32(out, batch.len() as u32);
            for (p, s) in batch {
                put_u64(out, p.raw());
                put_sync(out, s);
            }
        }
        NetMsg::AppBatch(batch) => {
            out.push(TAG_APP_BATCH);
            put_u32(out, batch.len() as u32);
            for m in batch {
                put_bytes(out, m.as_bytes());
            }
        }
        NetMsg::Baseline(BaselineMsg::Propose { participants, seq }) => {
            out.push(TAG_BL_PROPOSE);
            put_u32(out, participants.len() as u32);
            for p in participants {
                put_u64(out, p.raw());
            }
            put_u64(out, *seq);
        }
        NetMsg::Baseline(BaselineMsg::Sync { participants, tag, view, cut }) => {
            out.push(TAG_BL_SYNC);
            put_u32(out, participants.len() as u32);
            for p in participants {
                put_u64(out, p.raw());
            }
            put_u64(out, tag.0);
            put_u64(out, tag.1);
            put_view(out, view);
            put_cut(out, cut);
        }
    }
}

// ------------------------------------------------------------ decode ---

/// Bounds-checked read cursor over a frame body.
struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (first, rest) = self.b.split_first()?;
        self.b = rest;
        Some(*first)
    }

    fn u32(&mut self) -> Option<u32> {
        let (chunk, rest) = self.b.split_first_chunk::<4>()?;
        self.b = rest;
        Some(u32::from_le_bytes(*chunk))
    }

    fn u64(&mut self) -> Option<u64> {
        let (chunk, rest) = self.b.split_first_chunk::<8>()?;
        self.b = rest;
        Some(u64::from_le_bytes(*chunk))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Some(head)
    }

    /// Reads an element count and rejects it if the remaining bytes could
    /// not possibly hold that many entries of `min_entry_bytes` each —
    /// the guard that keeps a hostile count from triggering a huge
    /// allocation.
    fn count(&mut self, min_entry_bytes: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        (self.b.len() / min_entry_bytes.max(1) >= n).then_some(n)
    }
}

fn dec_view(cur: &mut Cur<'_>) -> Option<View> {
    let epoch = cur.u64()?;
    let proposer = cur.u64()?;
    let n = cur.count(16)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let p = ProcessId::new(cur.u64()?);
        let cid = StartChangeId::new(cur.u64()?);
        pairs.push((p, cid));
    }
    // `View::new` asserts members == startId keys; both are derived from
    // the same pairs here, so the assertion cannot fire.
    let members: Vec<ProcessId> = pairs.iter().map(|(p, _)| *p).collect();
    Some(View::new(ViewId::new(epoch, proposer), members, pairs))
}

fn dec_cut(cur: &mut Cur<'_>) -> Option<Cut> {
    let n = cur.count(16)?;
    let mut cut = Cut::new();
    for _ in 0..n {
        let p = ProcessId::new(cur.u64()?);
        let i = cur.u64()?;
        cut.set(p, i);
    }
    Some(cut)
}

/// Reads a length-prefixed byte string as a borrowed slice.
fn dec_app_ref<'a>(cur: &mut Cur<'a>) -> Option<&'a [u8]> {
    let n = cur.count(1)?;
    cur.bytes(n)
}

fn dec_sync(cur: &mut Cur<'_>) -> Option<SyncPayload> {
    let cid = StartChangeId::new(cur.u64()?);
    let view = match cur.u8()? {
        0 => None,
        1 => Some(dec_view(cur)?),
        _ => return None,
    };
    let cut = dec_cut(cur)?;
    Some(SyncPayload { cid, view, cut })
}

fn dec_msg_ref<'a>(cur: &mut Cur<'a>) -> Option<BodyRef<'a>> {
    match cur.u8()? {
        TAG_VIEW_MSG => Some(BodyRef::Owned(NetMsg::ViewMsg(dec_view(cur)?))),
        TAG_APP => Some(BodyRef::App(dec_app_ref(cur)?)),
        TAG_FWD => {
            let origin = ProcessId::new(cur.u64()?);
            let view = dec_view(cur)?;
            let index = cur.u64()?;
            let msg = dec_app_ref(cur)?;
            Some(BodyRef::Fwd { origin, view, index, msg })
        }
        TAG_SYNC => Some(BodyRef::Owned(NetMsg::Sync(dec_sync(cur)?))),
        TAG_SYNC_AGG => {
            let n = cur.count(17)?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                let p = ProcessId::new(cur.u64()?);
                batch.push((p, dec_sync(cur)?));
            }
            Some(BodyRef::Owned(NetMsg::SyncAgg(batch)))
        }
        TAG_APP_BATCH => {
            // Each entry carries at least its own 4-byte length prefix.
            let n = cur.count(4)?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(dec_app_ref(cur)?);
            }
            Some(BodyRef::AppBatch(batch))
        }
        TAG_BL_PROPOSE => {
            let n = cur.count(8)?;
            let mut participants = std::collections::BTreeSet::new();
            for _ in 0..n {
                participants.insert(ProcessId::new(cur.u64()?));
            }
            let seq = cur.u64()?;
            Some(BodyRef::Owned(NetMsg::Baseline(BaselineMsg::Propose { participants, seq })))
        }
        TAG_BL_SYNC => {
            let n = cur.count(8)?;
            let mut participants = std::collections::BTreeSet::new();
            for _ in 0..n {
                participants.insert(ProcessId::new(cur.u64()?));
            }
            let tag = (cur.u64()?, cur.u64()?);
            let view = dec_view(cur)?;
            let cut = dec_cut(cur)?;
            Some(BodyRef::Owned(NetMsg::Baseline(BaselineMsg::Sync {
                participants,
                tag,
                view,
                cut,
            })))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::SimRng;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample_view() -> View {
        View::new(
            ViewId::new(3, 1),
            [p(1), p(2), p(5)],
            [
                (p(1), StartChangeId::new(4)),
                (p(2), StartChangeId::new(7)),
                (p(5), StartChangeId::new(0)),
            ],
        )
    }

    fn sample_msgs() -> Vec<NetMsg> {
        let v = sample_view();
        vec![
            NetMsg::ViewMsg(v.clone()),
            NetMsg::App(AppMsg::from("payload")),
            NetMsg::App(AppMsg::default()),
            NetMsg::Fwd(FwdPayload {
                origin: p(2),
                view: v.clone(),
                index: 9,
                msg: AppMsg::from(vec![0u8, 255, 7]),
            }),
            NetMsg::Sync(SyncPayload {
                cid: StartChangeId::new(5),
                view: Some(v.clone()),
                cut: Cut::from_iter([(p(1), 2), (p(2), 0)]),
            }),
            NetMsg::Sync(SyncPayload {
                cid: StartChangeId::new(6),
                view: None,
                cut: Cut::new(),
            }),
            NetMsg::SyncAgg(vec![
                (
                    p(1),
                    SyncPayload {
                        cid: StartChangeId::new(1),
                        view: Some(v.clone()),
                        cut: Cut::from_iter([(p(1), 1)]),
                    },
                ),
                (
                    p(2),
                    SyncPayload { cid: StartChangeId::new(2), view: None, cut: Cut::new() },
                ),
            ]),
            NetMsg::AppBatch(vec![
                AppMsg::from("ab"),
                AppMsg::default(),
                AppMsg::from(vec![255u8, 0, 128]),
            ]),
            NetMsg::Baseline(BaselineMsg::Propose {
                participants: [p(1), p(2)].into_iter().collect(),
                seq: 11,
            }),
            NetMsg::Baseline(BaselineMsg::Sync {
                participants: [p(1), p(2)].into_iter().collect(),
                tag: (11, 1),
                view: v,
                cut: Cut::from_iter([(p(2), 3)]),
            }),
        ]
    }

    #[test]
    fn binary_roundtrip_all_variants() {
        for m in sample_msgs() {
            let body = encode_body(&m, WireFormat::Binary).unwrap();
            assert_eq!(body.first(), Some(&BINARY_V1), "{m:?}");
            assert_eq!(decode_body(&body), Some(m.clone()), "{m:?}");
        }
    }

    #[test]
    fn json_bodies_still_decode() {
        for m in sample_msgs() {
            let body = encode_body(&m, WireFormat::Json).unwrap();
            assert_eq!(body.first(), Some(&b'{'), "JSON body must open an object");
            assert_eq!(decode_body(&body), Some(m.clone()), "{m:?}");
        }
    }

    #[test]
    fn binary_is_smaller_than_json() {
        for m in sample_msgs() {
            let bin = encode_body(&m, WireFormat::Binary).unwrap();
            let json = encode_body(&m, WireFormat::Json).unwrap();
            assert!(
                bin.len() < json.len(),
                "binary {} >= json {} for {m:?}",
                bin.len(),
                json.len()
            );
        }
    }

    /// Pinned golden bytes: the binary wire format is a compatibility
    /// surface. If this test breaks, you changed the format — bump
    /// [`BINARY_V1`] to a new version byte instead of mutating v1.
    #[test]
    fn golden_bytes_are_stable() {
        let msg = NetMsg::Sync(SyncPayload {
            cid: StartChangeId::new(5),
            view: Some(View::new(
                ViewId::new(3, 1),
                [p(1), p(2)],
                [(p(1), StartChangeId::new(4)), (p(2), StartChangeId::new(7))],
            )),
            cut: Cut::from_iter([(p(1), 2), (p(2), 0)]),
        });
        let body = encode_body(&msg, WireFormat::Binary).unwrap();
        let hex: String = body.iter().map(|b| format!("{b:02x}")).collect();
        let expected = concat!(
            "01",               // BINARY_V1
            "03",               // tag: Sync
            "0500000000000000", // cid = 5
            "01",               // has_view = 1
            "0300000000000000", // view epoch = 3
            "0100000000000000", // view proposer = 1
            "02000000",         // 2 members
            "0100000000000000", // p1
            "0400000000000000", // cid 4
            "0200000000000000", // p2
            "0700000000000000", // cid 7
            "02000000",         // cut: 2 entries
            "0100000000000000", // p1
            "0200000000000000", // -> 2
            "0200000000000000", // p2
            "0000000000000000", // -> 0
        );
        assert_eq!(hex, expected);
        assert_eq!(decode_body(&body), Some(msg));
    }

    /// Pinned golden bytes for the batch frame added in v1's tag space
    /// (tag 7). Same compatibility rule as [`golden_bytes_are_stable`].
    #[test]
    fn golden_batch_bytes_are_stable() {
        let msg = NetMsg::AppBatch(vec![
            AppMsg::from("ab"),
            AppMsg::default(),
            AppMsg::from(vec![255u8]),
        ]);
        let body = encode_body(&msg, WireFormat::Binary).unwrap();
        let hex: String = body.iter().map(|b| format!("{b:02x}")).collect();
        let expected = concat!(
            "01",       // BINARY_V1
            "07",       // tag: AppBatch
            "03000000", // 3 payloads
            "02000000", // len 2
            "6162",     // "ab"
            "00000000", // len 0 (empty payload)
            "01000000", // len 1
            "ff",       // 0xFF
        );
        assert_eq!(hex, expected);
        assert_eq!(decode_body(&body), Some(msg));
    }

    #[test]
    fn batch_count_guard_rejects_hostile_count() {
        // A huge claimed batch count with a short body must be rejected
        // before any allocation.
        let mut evil = vec![BINARY_V1, TAG_APP_BATCH];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_body(&evil), None);
    }

    #[test]
    fn frame_is_length_prefixed_body() {
        let msg = NetMsg::App(AppMsg::from("abc"));
        let frame = encode_frame(&msg, WireFormat::Binary).unwrap();
        let (len, body) = frame.split_first_chunk::<4>().unwrap();
        assert_eq!(u32::from_le_bytes(*len) as usize, body.len());
        assert_eq!(decode_body(body), Some(msg));
    }

    /// Decoder totality over a hostile corpus: truncations of every valid
    /// body, single-byte corruptions, random soup, and absurd counts must
    /// never panic, and a count exceeding the remaining bytes must never
    /// allocate its claimed size.
    #[test]
    fn decoder_is_total_over_malformed_corpus() {
        for m in sample_msgs() {
            let body = encode_body(&m, WireFormat::Binary).unwrap();
            for cut_at in 0..body.len() {
                let _ = decode_body(body.get(..cut_at).unwrap_or(&[]));
            }
            for i in 0..body.len() {
                let mut mutated = body.clone();
                if let Some(b) = mutated.get_mut(i) {
                    *b = b.wrapping_add(1);
                }
                let _ = decode_body(&mutated); // any verdict, no panic
            }
            // Trailing garbage after a valid message rejects the frame.
            let mut padded = body.clone();
            padded.push(0);
            assert_eq!(decode_body(&padded), None, "{m:?}");
        }
        // A huge claimed count with a short body must be rejected cheaply.
        let mut evil = vec![BINARY_V1, TAG_SYNC_AGG];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_body(&evil), None);
        let mut rng = SimRng::new(0xC0DEC);
        for _ in 0..4_000 {
            let len = rng.range(0, 96) as usize;
            let mut soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            let _ = decode_body(&soup);
            // The same soup as a claimed-binary body.
            soup.insert(0, BINARY_V1);
            let _ = decode_body(&soup);
        }
    }

    /// The borrowing decoder agrees with the owning one on every valid
    /// body, and its payload slices really do alias the input buffer
    /// (zero-copy), not a fresh allocation.
    #[test]
    fn ref_decode_agrees_and_borrows_from_the_frame() {
        for m in sample_msgs() {
            let body = encode_body(&m, WireFormat::Binary).unwrap();
            let r = decode_body_ref(&body).expect("valid body");
            let body_range = body.as_ptr() as usize..body.as_ptr() as usize + body.len();
            let in_body = |s: &[u8]| s.is_empty() || body_range.contains(&(s.as_ptr() as usize));
            match &r {
                BodyRef::App(s) => assert!(in_body(s), "App payload copied"),
                BodyRef::AppBatch(parts) => {
                    assert!(parts.iter().all(|s| in_body(s)), "batch payload copied");
                }
                BodyRef::Fwd { msg, .. } => assert!(in_body(msg), "Fwd payload copied"),
                BodyRef::Owned(_) => {}
            }
            assert_eq!(r.into_owned(), m);
        }
    }

    /// The ref path is binary-only: JSON interop is the caller's
    /// explicit fallback, never an implicit sniff on the hot path.
    #[test]
    fn ref_decode_rejects_non_binary_bodies() {
        let m = NetMsg::App(AppMsg::from("json"));
        let json = encode_body(&m, WireFormat::Json).unwrap();
        assert_eq!(decode_body_ref(&json), None);
        assert_eq!(decode_body(&json), Some(m));
        assert_eq!(decode_body_ref(&[]), None);
        assert_eq!(decode_body_ref(&[0xFE, 0x00]), None);
    }

    /// Totality of the borrowing decoder over the same hostile corpus as
    /// [`decoder_is_total_over_malformed_corpus`], and agreement with the
    /// owning decoder on every verdict for claimed-binary bodies.
    #[test]
    fn ref_decoder_is_total_over_malformed_corpus() {
        for m in sample_msgs() {
            let body = encode_body(&m, WireFormat::Binary).unwrap();
            for cut_at in 0..body.len() {
                let sliced = body.get(..cut_at).unwrap_or(&[]);
                assert_eq!(
                    decode_body_ref(sliced).map(BodyRef::into_owned),
                    if sliced.first() == Some(&BINARY_V1) { decode_body(sliced) } else { None },
                );
            }
            for i in 0..body.len() {
                let mut mutated = body.clone();
                if let Some(b) = mutated.get_mut(i) {
                    *b = b.wrapping_add(1);
                }
                let _ = decode_body_ref(&mutated); // any verdict, no panic
            }
            let mut padded = body.clone();
            padded.push(0);
            assert_eq!(decode_body_ref(&padded), None, "{m:?}");
        }
        // Hostile counts reject cheaply on the ref path too.
        for tag in [TAG_APP, TAG_APP_BATCH, TAG_SYNC_AGG, TAG_FWD] {
            let mut evil = vec![BINARY_V1, tag];
            evil.extend_from_slice(&u32::MAX.to_le_bytes());
            assert_eq!(decode_body_ref(&evil), None);
        }
        let mut rng = SimRng::new(0xBEEF);
        for _ in 0..4_000 {
            let len = rng.range(0, 96) as usize;
            let mut soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            let _ = decode_body_ref(&soup);
            soup.insert(0, BINARY_V1);
            let owned = decode_body_ref(&soup).map(BodyRef::into_owned);
            assert_eq!(owned, decode_body(&soup), "ref/owned decoders disagree");
        }
    }

    /// Pinned golden bytes for the group envelope: `0x02 gid:u64le` then
    /// a complete v1 inner body. Compatibility rule as for
    /// [`golden_bytes_are_stable`] — mutating this layout means a new
    /// version byte, not an edit to v2.
    #[test]
    fn golden_envelope_bytes_are_stable() {
        let msg = NetMsg::App(AppMsg::from("ab"));
        let body = encode_body_grouped(GroupId::new(7), &msg, WireFormat::Binary).unwrap();
        let hex: String = body.iter().map(|b| format!("{b:02x}")).collect();
        let expected = concat!(
            "02",               // GROUP_ENVELOPE_V2
            "0700000000000000", // group = 7 (u64le)
            "01",               // inner: BINARY_V1
            "01",               // inner tag: App
            "02000000",         // payload len 2
            "6162",             // "ab"
        );
        assert_eq!(hex, expected);
        assert_eq!(decode_body_routed(&body, false), Some((Some(GroupId::new(7)), msg)));
    }

    #[test]
    fn envelope_roundtrip_all_variants_both_formats() {
        for gid in [GroupId::DIRECTORY, GroupId::new(1), GroupId::new(u64::MAX)] {
            for m in sample_msgs() {
                let bin = encode_body_grouped(gid, &m, WireFormat::Binary).unwrap();
                assert_eq!(bin.first(), Some(&GROUP_ENVELOPE_V2));
                assert_eq!(bin.len(), 9 + encode_body(&m, WireFormat::Binary).unwrap().len());
                assert_eq!(decode_body_routed(&bin, false), Some((Some(gid), m.clone())));
                let (g, inner) = split_group_envelope(&bin).expect("envelope splits");
                assert_eq!(g, gid);
                assert_eq!(decode_body(inner), Some(m.clone()), "inner is a complete body");

                // JSON inner bodies ride the envelope too, gated by the
                // same accept_json sniffing rule as bare frames.
                let json = encode_body_grouped(gid, &m, WireFormat::Json).unwrap();
                assert_eq!(decode_body_routed(&json, true), Some((Some(gid), m.clone())));
                assert_eq!(decode_body_routed(&json, false), None, "{m:?}");
            }
        }
    }

    #[test]
    fn envelope_frame_is_length_prefixed_body() {
        let msg = NetMsg::App(AppMsg::from("abc"));
        let gid = GroupId::new(42);
        let frame = encode_frame_grouped(gid, &msg, WireFormat::Binary).unwrap();
        let (len, body) = frame.split_first_chunk::<4>().unwrap();
        assert_eq!(u32::from_le_bytes(*len) as usize, body.len());
        assert_eq!(decode_body_routed(body, false), Some((Some(gid), msg)));
    }

    /// Mixed-version interop during a rolling transition: legacy
    /// single-group bodies (v1 binary or JSON) decode with no group,
    /// enveloped bodies with theirs, on a per-frame sniffing basis.
    #[test]
    fn routed_decoder_accepts_legacy_single_group_frames() {
        for m in sample_msgs() {
            let bare_bin = encode_body(&m, WireFormat::Binary).unwrap();
            assert_eq!(decode_body_routed(&bare_bin, false), Some((None, m.clone())));
            let bare_json = encode_body(&m, WireFormat::Json).unwrap();
            assert_eq!(decode_body_routed(&bare_json, true), Some((None, m.clone())));
            assert_eq!(decode_body_routed(&bare_json, false), None, "{m:?}");
        }
    }

    /// Totality of the routed decoder over a hostile corpus: truncations
    /// (the whole 9-byte header range included), single-byte corruption,
    /// empty/short envelopes, nested envelopes, and random soup claiming
    /// the envelope byte never panic or alloc-bomb.
    #[test]
    fn routed_decoder_is_total_over_malformed_corpus() {
        for m in sample_msgs() {
            let body = encode_body_grouped(GroupId::new(9), &m, WireFormat::Binary).unwrap();
            for cut_at in 0..body.len() {
                let sliced = body.get(..cut_at).unwrap_or(&[]);
                assert_eq!(
                    decode_body_routed(sliced, true),
                    None,
                    "truncated envelope must reject ({m:?} at {cut_at})"
                );
            }
            for i in 0..body.len() {
                let mut mutated = body.clone();
                if let Some(b) = mutated.get_mut(i) {
                    *b = b.wrapping_add(1);
                }
                let _ = decode_body_routed(&mutated, true); // any verdict, no panic
            }
            // Trailing garbage after a valid inner body rejects the frame.
            let mut padded = body.clone();
            padded.push(0);
            assert_eq!(decode_body_routed(&padded, true), None, "{m:?}");
        }
        // An envelope whose inner body is empty, or is itself an
        // envelope, rejects: envelopes never nest.
        let mut hdr = vec![GROUP_ENVELOPE_V2];
        hdr.extend_from_slice(&3u64.to_le_bytes());
        assert_eq!(decode_body_routed(&hdr, true), None, "empty inner body");
        let mut nested = hdr.clone();
        nested.extend_from_slice(&hdr);
        assert_eq!(decode_body_routed(&nested, true), None, "nested envelope");
        // Random soup, bare and with a claimed envelope byte; the routed
        // decoder must agree with the single-group decoders modulo the
        // envelope header.
        let mut rng = SimRng::new(0xE17E10);
        for _ in 0..4_000 {
            let len = rng.range(0, 96) as usize;
            let mut soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            let _ = decode_body_routed(&soup, true);
            let _ = decode_body_routed(&soup, false);
            soup.insert(0, GROUP_ENVELOPE_V2);
            match (decode_body_routed(&soup, false), split_group_envelope(&soup)) {
                (Some((Some(gid), msg)), Some((gid2, inner))) => {
                    assert_eq!(gid, gid2);
                    assert_eq!(decode_body(inner), Some(msg));
                }
                (Some(_), _) => unreachable!("claimed-envelope soup decoded without splitting"),
                (None, _) => {}
            }
        }
    }

    #[test]
    fn split_group_envelope_is_explicit_about_short_headers() {
        assert_eq!(split_group_envelope(&[]), None);
        assert_eq!(split_group_envelope(&[GROUP_ENVELOPE_V2]), None);
        assert_eq!(split_group_envelope(&[GROUP_ENVELOPE_V2, 1, 2, 3]), None);
        assert_eq!(split_group_envelope(&[BINARY_V1, 0, 0, 0, 0, 0, 0, 0, 0]), None);
        // Exactly the 9-byte header splits to an empty inner body; the
        // routed decoder then rejects it, but the split itself is total.
        let mut hdr = vec![GROUP_ENVELOPE_V2];
        hdr.extend_from_slice(&5u64.to_le_bytes());
        assert_eq!(split_group_envelope(&hdr), Some((GroupId::new(5), &[][..])));
    }

    #[test]
    fn unknown_tag_and_bad_option_byte_rejected() {
        assert_eq!(decode_body(&[BINARY_V1, 99]), None);
        // Sync with has_view byte = 2.
        let mut body = vec![BINARY_V1, TAG_SYNC];
        body.extend_from_slice(&5u64.to_le_bytes());
        body.push(2);
        assert_eq!(decode_body(&body), None);
        // Unknown leading byte that is not JSON either.
        assert_eq!(decode_body(&[0xFE, 0x00]), None);
        assert_eq!(decode_body(&[]), None);
    }
}
