//! A threaded TCP transport: real sockets with the per-pair reliable FIFO
//! semantics `CO_RFIFO` requires.
//!
//! TCP already provides connection-oriented, gap-free, FIFO byte streams
//! per direction, which is exactly the channel model of Fig. 3 for peers
//! in the `reliable_set`. Frames are length-prefixed JSON-serialized
//! [`NetMsg`]s; each direction of a pair uses its own connection,
//! established lazily on first send and identified by an 8-byte process-id
//! handshake.
//!
//! Robustness machinery (configurable via [`TcpConfig`]):
//!
//! * **Reconnect with capped exponential backoff + jitter** — a failed
//!   connect is retried with delays `base, 2·base, …` capped at
//!   `backoff_cap`, each padded with deterministic jitter (seeded
//!   [`SimRng`]) so restarting peers are not stampeded in lock-step.
//!   Retries are surfaced in [`NetStats::retries`].
//! * **Heartbeats as a failure signal** — a zero-length frame is written
//!   on every outgoing connection each `heartbeat_interval`; receivers
//!   treat it as pure liveness. A peer that was heard from but has been
//!   silent for longer than `suspect_after` shows up in
//!   [`TcpTransport::suspected_peers`] — the transport-level failure
//!   detector a membership service's suspicion input can be fed from.

use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vsgm_ioa::SimRng;
use vsgm_types::{NetMsg, ProcSet, ProcessId};

/// Reject frames claiming more than this many bytes: a corrupted or
/// malicious length prefix must not trigger an unbounded allocation.
const MAX_FRAME: usize = 1 << 26; // 64 MiB

/// A point-to-point message transport for GCS end-points.
///
/// The simulation harness drives end-points directly; live deployments
/// drive them through a `Transport`. Implementations must provide
/// per-ordered-pair FIFO delivery for connected peers.
pub trait Transport: Send {
    /// This node's process identity.
    fn me(&self) -> ProcessId;

    /// Sends `msg` to every process in `to` (self is skipped).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; peers before the failing
    /// one will already have been sent to.
    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()>;

    /// Receives the next incoming message, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)>;

    /// Receives the next incoming message if one is already queued.
    fn try_recv(&self) -> Option<(ProcessId, NetMsg)>;
}

/// TCP implementation of [`Transport`].
///
/// ```no_run
/// use vsgm_net::{TcpTransport, Transport};
/// use vsgm_types::{ProcessId, NetMsg, AppMsg};
///
/// # fn main() -> std::io::Result<()> {
/// let a = TcpTransport::bind(ProcessId::new(1), "127.0.0.1:0")?;
/// let b = TcpTransport::bind(ProcessId::new(2), "127.0.0.1:0")?;
/// a.register_peer(ProcessId::new(2), b.local_addr());
/// a.send(&[ProcessId::new(2)].into_iter().collect(), &NetMsg::App(AppMsg::from("hi")))?;
/// # Ok(())
/// # }
/// ```
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    local_addr: SocketAddr,
    incoming: Receiver<(ProcessId, NetMsg)>,
    config: TcpConfig,
    jitter: Mutex<SimRng>,
}

/// Robustness knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Failed connects are retried this many times before giving up.
    pub max_reconnect_attempts: u32,
    /// First reconnect delay; doubled per attempt (capped exponential).
    pub backoff_base: Duration,
    /// Ceiling for the reconnect delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (up to half the delay).
    pub jitter_seed: u64,
    /// Zero-length heartbeat frames are written on every outgoing
    /// connection at this interval; `Duration::ZERO` disables them.
    pub heartbeat_interval: Duration,
    /// A peer heard from before but silent for longer than this is
    /// reported by [`TcpTransport::suspected_peers`].
    pub suspect_after: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_reconnect_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            jitter_seed: 0x7C9,
            heartbeat_interval: Duration::from_millis(200),
            suspect_after: Duration::from_secs(1),
        }
    }
}

/// State shared with the reader/accept/heartbeat threads.
struct TcpShared {
    me: ProcessId,
    addr_book: Mutex<HashMap<ProcessId, SocketAddr>>,
    outgoing: Mutex<HashMap<ProcessId, TcpStream>>,
    /// Last time any frame (handshake, data, heartbeat) arrived per peer.
    last_heard: Mutex<HashMap<ProcessId, Instant>>,
    retries: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeats_heard: AtomicU64,
    shutdown: AtomicBool,
}

impl TcpTransport {
    /// Binds a listener and starts the accept loop, with default
    /// [`TcpConfig`].
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind(me: ProcessId, addr: &str) -> io::Result<TcpTransport> {
        TcpTransport::bind_with(me, addr, TcpConfig::default())
    }

    /// Binds a listener with explicit robustness knobs.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind_with(me: ProcessId, addr: &str, config: TcpConfig) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let shared = Arc::new(TcpShared {
            me,
            addr_book: Mutex::new(HashMap::new()),
            outgoing: Mutex::new(HashMap::new()),
            last_heard: Mutex::new(HashMap::new()),
            retries: AtomicU64::new(0),
            heartbeats_sent: AtomicU64::new(0),
            heartbeats_heard: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        spawn_accept_loop(listener, tx, Arc::clone(&shared));
        if config.heartbeat_interval > Duration::ZERO {
            spawn_heartbeat_loop(Arc::clone(&shared), config.heartbeat_interval);
        }
        let jitter = Mutex::new(SimRng::new(config.jitter_seed ^ me.raw()));
        Ok(TcpTransport { shared, local_addr, incoming: rx, config, jitter })
    }

    /// The address peers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Records where `peer` can be reached.
    pub fn register_peer(&self, peer: ProcessId, addr: SocketAddr) {
        self.shared.addr_book.lock().insert(peer, addr);
    }

    /// Peers that were heard from (any frame, heartbeats included) but
    /// have now been silent for longer than [`TcpConfig::suspect_after`]
    /// — the transport's peer-failure signal.
    pub fn suspected_peers(&self) -> ProcSet {
        let now = Instant::now();
        self.shared
            .last_heard
            .lock()
            .iter()
            .filter(|(_, at)| now.duration_since(**at) > self.config.suspect_after)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Transport-level accounting: reconnect [`NetStats::retries`] and
    /// heartbeat frames sent ([`NetStats::heartbeats`]). Per-tag traffic
    /// rows stay empty — message accounting happens in the layers above.
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats::new();
        s.retries = self.shared.retries.load(Ordering::Relaxed);
        s.heartbeats = self.shared.heartbeats_sent.load(Ordering::Relaxed);
        s
    }

    /// Heartbeat frames received from peers (liveness evidence).
    pub fn heartbeats_received(&self) -> u64 {
        self.shared.heartbeats_heard.load(Ordering::Relaxed)
    }

    fn connection_to(&self, peer: ProcessId) -> io::Result<TcpStream> {
        if let Some(s) = self.shared.outgoing.lock().get(&peer) {
            return s.try_clone();
        }
        let addr = self.shared.addr_book.lock().get(&peer).copied().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no address registered for {peer}"))
        })?;
        // Capped exponential backoff with deterministic jitter: attempt,
        // then sleep base·2^k (≤ cap) plus up to half that in jitter.
        let mut delay = self.config.backoff_base;
        let mut attempt = 0u32;
        loop {
            match self.try_connect(peer, addr) {
                Ok(s) => return Ok(s),
                Err(e) if attempt >= self.config.max_reconnect_attempts => return Err(e),
                Err(_) => {
                    attempt += 1;
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    let jitter_us =
                        self.jitter.lock().range(0, (delay.as_micros() as u64) / 2 + 1);
                    std::thread::sleep(delay + Duration::from_micros(jitter_us));
                    delay = (delay * 2).min(self.config.backoff_cap);
                }
            }
        }
    }

    fn try_connect(&self, peer: ProcessId, addr: SocketAddr) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Handshake: announce who we are.
        stream.write_all(&self.shared.me.raw().to_le_bytes())?;
        let clone = stream.try_clone()?;
        self.shared.outgoing.lock().insert(peer, stream);
        Ok(clone)
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> ProcessId {
        self.shared.me
    }

    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()> {
        let frame = encode_frame(msg)?;
        for q in to {
            if *q == self.shared.me {
                continue;
            }
            let result = self.connection_to(*q).and_then(|mut s| s.write_all(&frame));
            if let Err(e) = result {
                // Drop the broken connection so the next send reconnects
                // (with backoff).
                self.shared.outgoing.lock().remove(q);
                return Err(e);
            }
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)> {
        self.incoming.recv_timeout(timeout).ok()
    }

    fn try_recv(&self) -> Option<(ProcessId, NetMsg)> {
        self.incoming.try_recv().ok()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.shared.me)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn encode_frame(msg: &NetMsg) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(msg)?;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

fn spawn_accept_loop(
    listener: TcpListener,
    tx: Sender<(ProcessId, NetMsg)>,
    shared: Arc<TcpShared>,
) {
    std::thread::Builder::new()
        .name("vsgm-tcp-accept".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        let shared = Arc::clone(&shared);
                        std::thread::Builder::new()
                            .name("vsgm-tcp-reader".into())
                            .spawn(move || reader_loop(stream, tx, shared))
                            // vsgm-allow(P1): thread-spawn failure is OS
                            // resource exhaustion at transport startup —
                            // not a protocol state, nothing to unwind to
                            .expect("spawn reader thread");
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn accept thread");
}

/// Periodically writes a zero-length frame on every outgoing connection.
/// A write failure tears the connection down, so the next send reconnects
/// with backoff — dead peers are detected even when the application has
/// nothing to say.
fn spawn_heartbeat_loop(shared: Arc<TcpShared>, interval: Duration) {
    std::thread::Builder::new()
        .name("vsgm-tcp-heartbeat".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let conns: Vec<(ProcessId, io::Result<TcpStream>)> = shared
                    .outgoing
                    .lock()
                    .iter()
                    .map(|(p, s)| (*p, s.try_clone()))
                    .collect();
                for (peer, conn) in conns {
                    let ok = match conn {
                        Ok(mut s) => s.write_all(&0u32.to_le_bytes()).is_ok(),
                        Err(_) => false,
                    };
                    if ok {
                        shared.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.outgoing.lock().remove(&peer);
                    }
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn heartbeat thread");
}

fn reader_loop(mut stream: TcpStream, tx: Sender<(ProcessId, NetMsg)>, shared: Arc<TcpShared>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    // Handshake: the 8-byte peer id.
    let mut id_buf = [0u8; 8];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let peer = ProcessId::new(u64::from_le_bytes(id_buf));
    shared.last_heard.lock().insert(peer, Instant::now());
    let mut len_buf = [0u8; 4];
    while !shared.shutdown.load(Ordering::SeqCst) {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 {
            // Heartbeat: pure liveness, no payload.
            shared.heartbeats_heard.fetch_add(1, Ordering::Relaxed);
            shared.last_heard.lock().insert(peer, Instant::now());
            continue;
        }
        if len > MAX_FRAME {
            // A corrupt length prefix poisons the whole stream (framing is
            // lost); drop the connection rather than allocate unboundedly.
            return;
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let Ok(msg) = serde_json::from_slice::<NetMsg>(&body) else { return };
        shared.last_heard.lock().insert(peer, Instant::now());
        if tx.send((peer, msg)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn pair() -> (TcpTransport, TcpTransport) {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        (a, b)
    }

    fn only(to: u64) -> ProcSet {
        [p(to)].into_iter().collect()
    }

    #[test]
    fn send_and_receive() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("hello"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("hello")));
    }

    #[test]
    fn fifo_order_per_peer() {
        let (a, b) = pair();
        for i in 0..100 {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("m{i}").as_str()))).unwrap();
        }
        for i in 0..100 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
            assert_eq!(msg, NetMsg::App(AppMsg::from(format!("m{i}").as_str())));
        }
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("ping"))).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, NetMsg::App(AppMsg::from("ping")));
        b.send(&only(1), &NetMsg::App(AppMsg::from("pong"))).unwrap();
        let (from, msg) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(2));
        assert_eq!(msg, NetMsg::App(AppMsg::from("pong")));
    }

    #[test]
    fn self_send_is_skipped() {
        let (a, _b) = pair();
        a.send(&only(1), &NetMsg::App(AppMsg::from("self"))).unwrap();
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn unknown_peer_errors() {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let err = a.send(&only(9), &NetMsg::App(AppMsg::from("x"))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn large_message_roundtrip() {
        let (a, b) = pair();
        let payload = AppMsg::from(vec![7u8; 1 << 20]);
        a.send(&only(2), &NetMsg::App(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(10)).expect("large frame arrives");
        assert_eq!(msg, NetMsg::App(payload));
    }

    #[test]
    fn reconnect_backoff_counts_retries_then_recovers() {
        // Point a at a listener that has gone away: the send fails after
        // the configured retries, each counted in the stats.
        let gone = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = gone.local_addr().unwrap();
        drop(gone);
        let a = TcpTransport::bind_with(
            p(1),
            "127.0.0.1:0",
            TcpConfig {
                max_reconnect_attempts: 3,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                ..TcpConfig::default()
            },
        )
        .unwrap();
        a.register_peer(p(2), addr);
        assert!(a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).is_err());
        assert_eq!(a.stats().retries, 3);
        // The peer comes back on the same address: the next send
        // reconnects and delivers.
        let b = TcpTransport::bind(p(2), &addr.to_string()).unwrap();
        a.send(&only(2), &NetMsg::App(AppMsg::from("again"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("delivered after restart");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("again")));
        assert!(a.stats().retries >= 3);
    }

    #[test]
    fn heartbeats_flow_and_silent_peers_are_suspected() {
        let fast = TcpConfig {
            heartbeat_interval: Duration::from_millis(10),
            suspect_after: Duration::from_millis(120),
            ..TcpConfig::default()
        };
        let a = TcpTransport::bind_with(p(1), "127.0.0.1:0", fast.clone()).unwrap();
        let b = TcpTransport::bind_with(p(2), "127.0.0.1:0", fast).unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        // Establish both directions so heartbeats flow both ways.
        a.send(&only(2), &NetMsg::App(AppMsg::from("hi"))).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        b.send(&only(1), &NetMsg::App(AppMsg::from("yo"))).unwrap();
        a.recv_timeout(Duration::from_secs(5)).unwrap();
        // Heartbeats keep the peer un-suspected while it lives.
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.heartbeats_received() == 0 {
            assert!(Instant::now() < deadline, "no heartbeat ever arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(a.stats().heartbeats > 0, "a never sent a heartbeat");
        assert!(a.suspected_peers().is_empty(), "live peer suspected");
        // Kill b: its heartbeats stop, and silence crosses suspect_after.
        drop(b);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !a.suspected_peers().contains(&p(2)) {
            assert!(Instant::now() < deadline, "dead peer never suspected");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = pair();
        assert!(b.try_recv().is_none());
        a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).unwrap();
        // Poll until the reader thread pushes it through.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((_, msg)) = b.try_recv() {
                assert_eq!(msg, NetMsg::App(AppMsg::from("x")));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "message never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
