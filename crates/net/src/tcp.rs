//! A threaded TCP transport: real sockets with the per-pair reliable FIFO
//! semantics `CO_RFIFO` requires.
//!
//! TCP already provides connection-oriented, gap-free, FIFO byte streams
//! per direction, which is exactly the channel model of Fig. 3 for peers
//! in the `reliable_set`. Frames are length-prefixed JSON-serialized
//! [`NetMsg`]s; each direction of a pair uses its own connection,
//! established lazily on first send and identified by an 8-byte process-id
//! handshake.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vsgm_types::{NetMsg, ProcSet, ProcessId};

/// A point-to-point message transport for GCS end-points.
///
/// The simulation harness drives end-points directly; live deployments
/// drive them through a `Transport`. Implementations must provide
/// per-ordered-pair FIFO delivery for connected peers.
pub trait Transport: Send {
    /// This node's process identity.
    fn me(&self) -> ProcessId;

    /// Sends `msg` to every process in `to` (self is skipped).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; peers before the failing
    /// one will already have been sent to.
    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()>;

    /// Receives the next incoming message, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)>;

    /// Receives the next incoming message if one is already queued.
    fn try_recv(&self) -> Option<(ProcessId, NetMsg)>;
}

/// TCP implementation of [`Transport`].
///
/// ```no_run
/// use vsgm_net::{TcpTransport, Transport};
/// use vsgm_types::{ProcessId, NetMsg, AppMsg};
///
/// # fn main() -> std::io::Result<()> {
/// let a = TcpTransport::bind(ProcessId::new(1), "127.0.0.1:0")?;
/// let b = TcpTransport::bind(ProcessId::new(2), "127.0.0.1:0")?;
/// a.register_peer(ProcessId::new(2), b.local_addr());
/// a.send(&[ProcessId::new(2)].into_iter().collect(), &NetMsg::App(AppMsg::from("hi")))?;
/// # Ok(())
/// # }
/// ```
pub struct TcpTransport {
    me: ProcessId,
    local_addr: SocketAddr,
    addr_book: Arc<Mutex<HashMap<ProcessId, SocketAddr>>>,
    outgoing: Mutex<HashMap<ProcessId, TcpStream>>,
    incoming: Receiver<(ProcessId, NetMsg)>,
    shutdown: Arc<AtomicBool>,
}

impl TcpTransport {
    /// Binds a listener and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind(me: ProcessId, addr: &str) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let t = TcpTransport {
            me,
            local_addr,
            addr_book: Arc::new(Mutex::new(HashMap::new())),
            outgoing: Mutex::new(HashMap::new()),
            incoming: rx,
            shutdown: Arc::clone(&shutdown),
        };
        spawn_accept_loop(listener, tx, shutdown);
        Ok(t)
    }

    /// The address peers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Records where `peer` can be reached.
    pub fn register_peer(&self, peer: ProcessId, addr: SocketAddr) {
        self.addr_book.lock().insert(peer, addr);
    }

    fn connection_to(&self, peer: ProcessId) -> io::Result<TcpStream> {
        if let Some(s) = self.outgoing.lock().get(&peer) {
            return s.try_clone();
        }
        let addr = self.addr_book.lock().get(&peer).copied().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no address registered for {peer}"))
        })?;
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Handshake: announce who we are.
        stream.write_all(&self.me.raw().to_le_bytes())?;
        let clone = stream.try_clone()?;
        self.outgoing.lock().insert(peer, stream);
        Ok(clone)
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()> {
        let frame = encode_frame(msg)?;
        for q in to {
            if *q == self.me {
                continue;
            }
            let result = self.connection_to(*q).and_then(|mut s| s.write_all(&frame));
            if let Err(e) = result {
                // Drop the broken connection so the next send reconnects.
                self.outgoing.lock().remove(q);
                return Err(e);
            }
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)> {
        self.incoming.recv_timeout(timeout).ok()
    }

    fn try_recv(&self) -> Option<(ProcessId, NetMsg)> {
        self.incoming.try_recv().ok()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn encode_frame(msg: &NetMsg) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(msg)?;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

fn spawn_accept_loop(
    listener: TcpListener,
    tx: Sender<(ProcessId, NetMsg)>,
    shutdown: Arc<AtomicBool>,
) {
    std::thread::Builder::new()
        .name("vsgm-tcp-accept".into())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        let shutdown = Arc::clone(&shutdown);
                        std::thread::Builder::new()
                            .name("vsgm-tcp-reader".into())
                            .spawn(move || reader_loop(stream, tx, shutdown))
                            // vsgm-allow(P1): thread-spawn failure is OS
                            // resource exhaustion at transport startup —
                            // not a protocol state, nothing to unwind to
                            .expect("spawn reader thread");
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn accept thread");
}

fn reader_loop(mut stream: TcpStream, tx: Sender<(ProcessId, NetMsg)>, shutdown: Arc<AtomicBool>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    // Handshake: the 8-byte peer id.
    let mut id_buf = [0u8; 8];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let peer = ProcessId::new(u64::from_le_bytes(id_buf));
    let mut len_buf = [0u8; 4];
    while !shutdown.load(Ordering::SeqCst) {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let Ok(msg) = serde_json::from_slice::<NetMsg>(&body) else { return };
        if tx.send((peer, msg)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn pair() -> (TcpTransport, TcpTransport) {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        (a, b)
    }

    fn only(to: u64) -> ProcSet {
        [p(to)].into_iter().collect()
    }

    #[test]
    fn send_and_receive() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("hello"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("hello")));
    }

    #[test]
    fn fifo_order_per_peer() {
        let (a, b) = pair();
        for i in 0..100 {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("m{i}").as_str()))).unwrap();
        }
        for i in 0..100 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
            assert_eq!(msg, NetMsg::App(AppMsg::from(format!("m{i}").as_str())));
        }
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("ping"))).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, NetMsg::App(AppMsg::from("ping")));
        b.send(&only(1), &NetMsg::App(AppMsg::from("pong"))).unwrap();
        let (from, msg) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(2));
        assert_eq!(msg, NetMsg::App(AppMsg::from("pong")));
    }

    #[test]
    fn self_send_is_skipped() {
        let (a, _b) = pair();
        a.send(&only(1), &NetMsg::App(AppMsg::from("self"))).unwrap();
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn unknown_peer_errors() {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let err = a.send(&only(9), &NetMsg::App(AppMsg::from("x"))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn large_message_roundtrip() {
        let (a, b) = pair();
        let payload = AppMsg::from(vec![7u8; 1 << 20]);
        a.send(&only(2), &NetMsg::App(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(10)).expect("large frame arrives");
        assert_eq!(msg, NetMsg::App(payload));
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = pair();
        assert!(b.try_recv().is_none());
        a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).unwrap();
        // Poll until the reader thread pushes it through.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((_, msg)) = b.try_recv() {
                assert_eq!(msg, NetMsg::App(AppMsg::from("x")));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "message never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
