//! An event-loop TCP transport: real sockets with the per-pair reliable
//! FIFO semantics `CO_RFIFO` requires.
//!
//! TCP already provides connection-oriented, gap-free, FIFO byte streams
//! per direction, which is exactly the channel model of Fig. 3 for peers
//! in the `reliable_set`. Frames are length-prefixed [`NetMsg`] bodies in
//! the [`crate::codec`] wire format — compact binary by default, with
//! JSON interop for rolling transitions ([`TcpConfig::accept_json`]).
//! Each direction of a pair uses its own connection, established lazily
//! on first send and identified by an 8-byte process-id handshake.
//!
//! All sockets — inbound and outbound — are owned by a small fixed pool
//! of readiness-loop threads ([`crate::evloop`],
//! [`TcpConfig::loop_threads`]), replacing the old thread-per-connection
//! readers and per-peer writer threads: the paper's client-server
//! architecture (§3) multiplexes many clients over one server transport,
//! and thread count must not scale with connection count. Inbound frames
//! are decoded in place from pooled read buffers via the borrowing
//! [`crate::codec::decode_body_ref`] path; outbound frames flow through
//! per-connection bounded queues ([`crate::writer`]):
//!
//! * **Serialized writes** — every producer (multicast fan-out from any
//!   thread, the heartbeat prober) enqueues complete frames on the
//!   connection's bounded queue; the one loop thread owning the socket
//!   performs all writes, so concurrent senders and heartbeats can
//!   never tear a frame mid-stream.
//! * **Coalesced flushes** — the loop drains every frame already
//!   queued into one buffered socket write, so a burst of N multicasts
//!   costs one syscall instead of N
//!   ([`TcpConfig::max_coalesce_frames`] / [`TcpConfig::max_flush_bytes`]).
//! * **Independent fan-out** — [`Transport::send`] attempts *every*
//!   destination, drops only the connections that actually failed, and
//!   returns one aggregated error; a single broken peer no longer censors
//!   the rest of the `ProcSet`, matching the paper's model of independent
//!   per-pair channels.
//! * **Single connection per peer** — first sends racing from multiple
//!   threads serialize on a per-peer connect guard, so exactly one
//!   socket (and one handshake) per destination survives.
//!
//! Robustness machinery (configurable via [`TcpConfig`]):
//!
//! * **Reconnect with capped exponential backoff + jitter** — a failed
//!   connect is retried with delays `base, 2·base, …` capped at
//!   `backoff_cap`, each padded with deterministic jitter (seeded
//!   [`SimRng`]) so restarting peers are not stampeded in lock-step.
//!   Retries are surfaced in [`NetStats::retries`].
//! * **Heartbeats as a failure signal** — a liveness probe claims the
//!   *reserved* heartbeat slot on every outgoing connection each
//!   `heartbeat_interval` (never competing with data for queue space, so
//!   a backpressured queue cannot delay probes into false suspicion);
//!   receivers treat the zero-length frame as pure liveness. A peer that
//!   was heard from but has been silent for longer than `suspect_after`
//!   shows up in [`TcpTransport::suspected_peers`] — the transport-level
//!   failure detector a membership service's suspicion input can be fed
//!   from.
//! * **Resource-bounded reads** — a frame whose length prefix exceeds
//!   [`TcpConfig::max_frame_len`] tears the connection down before any
//!   allocation, and a peer stalled mid-handshake or mid-frame longer
//!   than [`TcpConfig::read_idle_timeout`] is evicted instead of pinning
//!   transport resources forever (the old blocking readers leaked a
//!   thread and socket per half-open peer).

use crate::codec::{self, WireFormat};
use crate::evloop::{LoopConfig, LoopCounters, LoopCtx, LoopPool, Register};
use crate::stats::NetStats;
use crate::writer::{OutQueue, PeerWriter, PushError, WriterStats};
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vsgm_ioa::SimRng;
use vsgm_types::{GroupId, NetMsg, ProcSet, ProcessId};

/// A point-to-point message transport for GCS end-points.
///
/// The simulation harness drives end-points directly; live deployments
/// drive them through a `Transport`. Implementations must provide
/// per-ordered-pair FIFO delivery for connected peers.
pub trait Transport: Send {
    /// This node's process identity.
    fn me(&self) -> ProcessId;

    /// Sends `msg` to every process in `to` (self is skipped).
    ///
    /// # Errors
    ///
    /// Every destination is attempted; if any fail, an aggregated error
    /// naming the failed peers is returned (with the [`io::ErrorKind`] of
    /// the first failure). Peers that did not fail have been sent to.
    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()>;

    /// Receives the next incoming message, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)>;

    /// Receives the next incoming message if one is already queued.
    fn try_recv(&self) -> Option<(ProcessId, NetMsg)>;
}

/// TCP implementation of [`Transport`].
///
/// ```no_run
/// use vsgm_net::{TcpTransport, Transport};
/// use vsgm_types::{ProcessId, NetMsg, AppMsg};
///
/// # fn main() -> std::io::Result<()> {
/// let a = TcpTransport::bind(ProcessId::new(1), "127.0.0.1:0")?;
/// let b = TcpTransport::bind(ProcessId::new(2), "127.0.0.1:0")?;
/// a.register_peer(ProcessId::new(2), b.local_addr());
/// a.send(&[ProcessId::new(2)].into_iter().collect(), &NetMsg::App(AppMsg::from("hi")))?;
/// # Ok(())
/// # }
/// ```
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    local_addr: SocketAddr,
    incoming: Receiver<(ProcessId, Option<GroupId>, NetMsg)>,
    config: TcpConfig,
    // vsgm-lock-tier(4): taken under a per-peer connect guard during
    // backoff; never held while taking any other lock.
    jitter: Mutex<SimRng>,
}

/// Wire-format and robustness knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Failed connects are retried this many times before giving up.
    pub max_reconnect_attempts: u32,
    /// First reconnect delay; doubled per attempt (capped exponential).
    pub backoff_base: Duration,
    /// Ceiling for the reconnect delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (up to half the delay).
    pub jitter_seed: u64,
    /// Zero-length heartbeat frames are enqueued on every outgoing
    /// connection at this interval; `Duration::ZERO` disables them.
    pub heartbeat_interval: Duration,
    /// A peer heard from before but silent for longer than this is
    /// reported by [`TcpTransport::suspected_peers`].
    pub suspect_after: Duration,
    /// Encoding for outgoing frames; receivers always accept both.
    pub wire_format: WireFormat,
    /// Per-connection bounded queue capacity, in frames.
    pub writer_queue: usize,
    /// Most frames a writer coalesces into one flush (1 = flush every
    /// frame individually, i.e. per-send writes).
    pub max_coalesce_frames: u64,
    /// Byte ceiling for one coalesced flush buffer (a single oversized
    /// frame still flushes alone).
    pub max_flush_bytes: usize,
    /// How long a sender waits for space on a full per-connection queue
    /// before declaring the peer stalled and dropping the connection.
    pub enqueue_timeout: Duration,
    /// Queue depth at which an enqueue counts as a backpressure hit
    /// ([`NetStats::backpressure_hits`]). The bounded queue plus the
    /// blocking `enqueue_timeout` are the actual backpressure mechanism;
    /// this watermark makes the pressure *observable* before the hard
    /// limit stalls senders.
    pub queue_watermark: usize,
    /// Event-loop threads owning all of the transport's sockets. Thread
    /// count stays constant in the connection count — raise this for
    /// servers multiplexing thousands of clients, not per connection.
    pub loop_threads: usize,
    /// Reject inbound frames claiming more than this many bytes: a
    /// corrupted or malicious length prefix must not trigger an
    /// unbounded allocation. Violations tear the connection down and
    /// count in [`NetStats::oversize_rejected`].
    pub max_frame_len: usize,
    /// Evict a connection stalled *mid-handshake or mid-frame* for
    /// longer than this (idle between complete frames is legal and
    /// never evicted). `Duration::ZERO` disables eviction. Evictions
    /// count in [`NetStats::idle_evictions`].
    pub read_idle_timeout: Duration,
    /// Whether receivers still decode non-binary (JSON) frame bodies.
    /// Defaults to `true` for rolling-transition interop; binary-only
    /// deployments can turn it off to make framing strict.
    pub accept_json: bool,
    /// Initial size of each pooled per-connection read buffer. Buffers
    /// grow transiently for frames larger than this and shrink back to
    /// the pool size when recycled.
    pub read_buf_bytes: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_reconnect_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            jitter_seed: 0x7C9,
            heartbeat_interval: Duration::from_millis(200),
            suspect_after: Duration::from_secs(1),
            wire_format: WireFormat::Binary,
            writer_queue: 1024,
            max_coalesce_frames: 256,
            max_flush_bytes: 1 << 20,
            enqueue_timeout: Duration::from_secs(2),
            queue_watermark: 512,
            loop_threads: 2,
            max_frame_len: 1 << 26, // 64 MiB
            read_idle_timeout: Duration::from_secs(30),
            accept_json: true,
            read_buf_bytes: 64 << 10,
        }
    }
}

/// State shared with the accept/heartbeat threads and the event loops.
struct TcpShared {
    me: ProcessId,
    // vsgm-lock-tier(3): taken under a per-peer connect guard (and on
    // registration with nothing held); released before connecting.
    addr_book: Mutex<HashMap<ProcessId, SocketAddr>>,
    // vsgm-lock-tier(2): taken bare on the fast path and re-checked
    // under a per-peer connect guard; never held across a connect.
    outgoing: Mutex<HashMap<ProcessId, PeerWriter>>,
    /// Per-peer guards serializing connection establishment: the loser of
    /// a racing first send waits here and reuses the winner's socket.
    // vsgm-lock-tier(1): the map lock is only held to clone out the
    // per-peer Arc; the per-peer guards inside outrank every other lock.
    connect_locks: Mutex<HashMap<ProcessId, Arc<Mutex<()>>>>,
    /// Last time any frame (handshake, data, heartbeat) arrived per peer
    /// — shared with the event loops through [`LoopCtx`].
    // vsgm-lock-tier(5): leaf — touched by loop/heartbeat threads with
    // nothing else held.
    last_heard: Arc<Mutex<HashMap<ProcessId, Instant>>>,
    /// The fixed pool of event-loop threads owning every socket.
    pool: LoopPool,
    /// Loop-side counters (heartbeats heard, rejects, evictions, conns).
    counters: Arc<LoopCounters>,
    writer_stats: Arc<WriterStats>,
    retries: AtomicU64,
    heartbeats_sent: AtomicU64,
    accepted: AtomicU64,
    shutdown: AtomicBool,
}

impl TcpTransport {
    /// Binds a listener and starts the accept loop, with default
    /// [`TcpConfig`].
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind(me: ProcessId, addr: &str) -> io::Result<TcpTransport> {
        TcpTransport::bind_with(me, addr, TcpConfig::default())
    }

    /// Binds a listener with explicit robustness knobs.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind_with(me: ProcessId, addr: &str, config: TcpConfig) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let writer_stats = Arc::new(WriterStats::default());
        let counters = Arc::new(LoopCounters::default());
        let last_heard = Arc::new(Mutex::new(HashMap::new()));
        let ctx = Arc::new(LoopCtx {
            tx,
            stats: Arc::clone(&writer_stats),
            counters: Arc::clone(&counters),
            last_heard: Arc::clone(&last_heard),
        });
        let loop_cfg = LoopConfig {
            max_coalesce_frames: config.max_coalesce_frames,
            max_flush_bytes: config.max_flush_bytes,
            max_frame_len: config.max_frame_len,
            read_idle_timeout: config.read_idle_timeout,
            accept_json: config.accept_json,
            read_buf_bytes: config.read_buf_bytes,
        };
        let pool = LoopPool::spawn(config.loop_threads, &ctx, &loop_cfg);
        let shared = Arc::new(TcpShared {
            me,
            addr_book: Mutex::new(HashMap::new()),
            outgoing: Mutex::new(HashMap::new()),
            connect_locks: Mutex::new(HashMap::new()),
            last_heard,
            pool,
            counters,
            writer_stats,
            retries: AtomicU64::new(0),
            heartbeats_sent: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        spawn_accept_loop(listener, Arc::clone(&shared));
        if config.heartbeat_interval > Duration::ZERO {
            spawn_heartbeat_loop(Arc::clone(&shared), config.heartbeat_interval);
        }
        let jitter = Mutex::new(SimRng::new(config.jitter_seed ^ me.raw()));
        Ok(TcpTransport { shared, local_addr, incoming: rx, config, jitter })
    }

    /// The address peers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Records where `peer` can be reached.
    pub fn register_peer(&self, peer: ProcessId, addr: SocketAddr) {
        self.shared.addr_book.lock().insert(peer, addr);
    }

    /// Peers that were heard from (any frame, heartbeats included) but
    /// have now been silent for longer than [`TcpConfig::suspect_after`]
    /// — the transport's peer-failure signal.
    pub fn suspected_peers(&self) -> ProcSet {
        let now = Instant::now();
        self.shared
            .last_heard
            .lock()
            .iter()
            .filter(|(_, at)| now.duration_since(**at) > self.config.suspect_after)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Transport-level accounting: reconnect [`NetStats::retries`],
    /// heartbeat frames sent ([`NetStats::heartbeats`]), and the writer
    /// path's flush/coalesce/queue-depth counters. Per-tag traffic rows
    /// stay empty — message accounting happens in the layers above.
    pub fn stats(&self) -> NetStats {
        let ws = &self.shared.writer_stats;
        let lc = &self.shared.counters;
        let mut s = NetStats::new();
        s.retries = self.shared.retries.load(Ordering::Relaxed);
        s.heartbeats = self.shared.heartbeats_sent.load(Ordering::Relaxed);
        s.flushes = ws.flushes.load(Ordering::Relaxed);
        s.frames_flushed = ws.frames_flushed.load(Ordering::Relaxed);
        s.coalesce_max = ws.coalesce_max.load(Ordering::Relaxed);
        s.queue_depth_max = ws.queue_depth_max.load(Ordering::Relaxed);
        s.backpressure_hits = ws.backpressure_hits.load(Ordering::Relaxed);
        s.frames_enqueued = ws.frames_enqueued.load(Ordering::Relaxed);
        s.frames_dropped = ws.frames_dropped.load(Ordering::Relaxed);
        s.oversize_rejected = lc.oversize_rejected.load(Ordering::Relaxed);
        s.idle_evictions = lc.idle_evictions.load(Ordering::Relaxed);
        s.conns_open = lc.conns_open();
        s.loop_threads = self.shared.pool.threads() as u64;
        s
    }

    /// Mirrors the transport counters into an observability recorder
    /// (one-shot export: counters are *added*, so call once per recorder,
    /// e.g. when capturing a snapshot).
    pub fn export_obs(&self, rec: &mut dyn vsgm_obs::Recorder) {
        use vsgm_obs::names;
        let s = self.stats();
        rec.counter(names::NET_FLUSHES, s.flushes);
        rec.counter(names::NET_FRAMES_FLUSHED, s.frames_flushed);
        rec.gauge(names::NET_COALESCE_MAX, s.coalesce_max);
        rec.gauge(names::NET_QUEUE_DEPTH_MAX, s.queue_depth_max);
        rec.counter(names::NET_BACKPRESSURE, s.backpressure_hits);
        rec.counter(names::NET_FRAMES_ENQUEUED, s.frames_enqueued);
        rec.counter(names::NET_FRAMES_DROPPED, s.frames_dropped);
        rec.counter(names::NET_OVERSIZE_REJECTED, s.oversize_rejected);
        rec.counter(names::NET_IDLE_EVICTIONS, s.idle_evictions);
        rec.gauge(names::NET_CONNS_OPEN, s.conns_open);
        rec.gauge(names::NET_LOOP_THREADS, s.loop_threads);
    }

    /// Heartbeat frames received from peers (liveness evidence).
    pub fn heartbeats_received(&self) -> u64 {
        self.shared.counters.heartbeats_heard.load(Ordering::Relaxed)
    }

    /// Event-loop threads serving every socket of this transport —
    /// fixed at [`TcpConfig::loop_threads`] no matter how many
    /// connections are open.
    pub fn loop_thread_count(&self) -> usize {
        self.shared.pool.threads()
    }

    /// Connections (inbound + outbound) currently owned by the loops.
    pub fn open_connections(&self) -> u64 {
        self.shared.counters.conns_open()
    }

    /// Inbound connections accepted by the listener. With race-free
    /// connection establishment this is exactly one per peer that ever
    /// sent to us, regardless of how many threads raced their first send.
    pub fn accepted_connections(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Returns a live writer handle for `peer`, connecting (with capped
    /// backoff) if none exists. A per-peer guard serializes racing
    /// connection attempts: the loser re-checks the map after the winner
    /// finishes and reuses its socket, so exactly one connection per peer
    /// survives.
    fn writer_handle(&self, peer: ProcessId) -> io::Result<PeerWriter> {
        if let Some(w) = self.shared.outgoing.lock().get(&peer) {
            if !w.is_broken() {
                return Ok(w.clone());
            }
        }
        let connect_lock =
            Arc::clone(self.shared.connect_locks.lock().entry(peer).or_default());
        let _guard = connect_lock.lock();
        // Re-check under the guard: a racing thread may have connected
        // while we waited.
        {
            let mut out = self.shared.outgoing.lock();
            match out.get(&peer) {
                Some(w) if !w.is_broken() => return Ok(w.clone()),
                Some(_) => {
                    out.remove(&peer);
                }
                None => {}
            }
        }
        let addr = self.shared.addr_book.lock().get(&peer).copied().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no address registered for {peer}"))
        })?;
        // Capped exponential backoff with deterministic jitter: attempt,
        // then sleep base·2^k (≤ cap) plus up to half that in jitter.
        let mut delay = self.config.backoff_base;
        let mut attempt = 0u32;
        loop {
            match self.try_connect(peer, addr) {
                Ok(w) => return Ok(w),
                Err(e) if attempt >= self.config.max_reconnect_attempts => return Err(e),
                Err(_) => {
                    attempt += 1;
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    let jitter_us =
                        self.jitter.lock().range(0, (delay.as_micros() as u64) / 2 + 1);
                    // vsgm-allow(R1): the backoff sleeps under the
                    // per-peer connect guard by design — racing senders
                    // must wait for the one connection attempt rather
                    // than dial the same peer concurrently. The guard is
                    // per-peer, so no other traffic is delayed.
                    std::thread::sleep(delay + Duration::from_micros(jitter_us));
                    delay = (delay * 2).min(self.config.backoff_cap);
                }
            }
        }
    }

    fn try_connect(&self, peer: ProcessId, addr: SocketAddr) -> io::Result<PeerWriter> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Handshake: announce who we are. The connection has not been
        // handed to an event loop yet, so this (blocking) write cannot
        // interleave with frames.
        stream.write_all(&self.shared.me.raw().to_le_bytes())?;
        stream.set_nonblocking(true)?;
        let queue = Arc::new(OutQueue::new(self.config.writer_queue));
        let broken = Arc::new(AtomicBool::new(false));
        let waker = self.shared.pool.register(Register::Outbound {
            stream,
            queue: Arc::clone(&queue),
            broken: Arc::clone(&broken),
        });
        let writer =
            PeerWriter::new(queue, broken, waker, Arc::clone(&self.shared.writer_stats));
        self.shared.outgoing.lock().insert(peer, writer.clone());
        Ok(writer)
    }

    /// Sends `msg` to every process in `to` wrapped in the v2 group
    /// envelope for `group`, so a multi-group server routes it to the
    /// right instance. Same fan-out/error semantics as
    /// [`Transport::send`].
    ///
    /// # Errors
    ///
    /// As for [`Transport::send`]: every destination is attempted and
    /// failures are aggregated into one error.
    pub fn send_to_group(&self, group: GroupId, to: &ProcSet, msg: &NetMsg) -> io::Result<()> {
        let frame = codec::encode_frame_grouped(group, msg, self.config.wire_format)?;
        let mut attempted = 0usize;
        let mut failed: Vec<(ProcessId, io::Error)> = Vec::new();
        for q in to {
            if *q == self.shared.me {
                continue;
            }
            attempted += 1;
            if let Err(e) = self.enqueue(*q, &frame) {
                failed.push((*q, e));
            }
        }
        aggregate_send_errors(attempted, failed)
    }

    /// Receives the next incoming message with its routing group:
    /// `Some(gid)` for frames that arrived in a v2 group envelope, `None`
    /// for legacy single-group frames. Multi-group servers consume this;
    /// single-group callers use [`Transport::recv_timeout`], which strips
    /// the group.
    pub fn recv_routed_timeout(
        &self,
        timeout: Duration,
    ) -> Option<(ProcessId, Option<GroupId>, NetMsg)> {
        self.incoming.recv_timeout(timeout).ok()
    }

    /// Non-blocking variant of [`TcpTransport::recv_routed_timeout`].
    pub fn try_recv_routed(&self) -> Option<(ProcessId, Option<GroupId>, NetMsg)> {
        self.incoming.try_recv().ok()
    }

    /// Enqueues an encoded frame to one peer, translating queue outcomes
    /// into I/O errors and evicting the connection it observed broken.
    fn enqueue(&self, peer: ProcessId, frame: &[u8]) -> io::Result<()> {
        let writer = self.writer_handle(peer)?;
        let outcome = writer.push(frame.to_vec(), self.config.enqueue_timeout);
        match outcome {
            Ok(depth) => {
                self.shared
                    .writer_stats
                    .queue_depth_max
                    .fetch_max(depth as u64, Ordering::Relaxed);
                if depth >= self.config.queue_watermark {
                    self.shared
                        .writer_stats
                        .backpressure_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(kind) => {
                if kind == PushError::Timeout {
                    writer.mark_broken();
                }
                // Evict exactly the writer we saw fail — never a fresh
                // reconnection another thread raced in underneath us.
                let mut out = self.shared.outgoing.lock();
                if out.get(&peer).is_some_and(|w| w.same_as(&writer)) {
                    out.remove(&peer);
                }
                Err(match kind {
                    PushError::Closed => io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("connection to {peer} is down"),
                    ),
                    PushError::Timeout => io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("write queue to {peer} stalled"),
                    ),
                })
            }
        }
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> ProcessId {
        self.shared.me
    }

    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()> {
        let frame = codec::encode_frame(msg, self.config.wire_format)?;
        let mut attempted = 0usize;
        let mut failed: Vec<(ProcessId, io::Error)> = Vec::new();
        for q in to {
            if *q == self.shared.me {
                continue;
            }
            attempted += 1;
            if let Err(e) = self.enqueue(*q, &frame) {
                failed.push((*q, e));
            }
        }
        aggregate_send_errors(attempted, failed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)> {
        self.incoming.recv_timeout(timeout).ok().map(|(p, _group, m)| (p, m))
    }

    fn try_recv(&self) -> Option<(ProcessId, NetMsg)> {
        self.incoming.try_recv().ok().map(|(p, _group, m)| (p, m))
    }
}

/// Folds per-peer failures into one error: the kind of the first failure,
/// a message naming every failed peer, and the reach count. A fully
/// successful fan-out is `Ok`.
fn aggregate_send_errors(
    attempted: usize,
    mut failed: Vec<(ProcessId, io::Error)>,
) -> io::Result<()> {
    let Some((_, first)) = failed.first() else { return Ok(()) };
    if failed.len() == 1 && attempted == 1 {
        // Single-destination sends keep their original error untouched.
        let Some((_, e)) = failed.pop() else { return Ok(()) };
        return Err(e);
    }
    let kind = first.kind();
    let detail: Vec<String> = failed.iter().map(|(p, e)| format!("{p}: {e}")).collect();
    Err(io::Error::new(
        kind,
        format!(
            "multicast reached {}/{attempted} peers; failed [{}]",
            attempted - failed.len(),
            detail.join("; ")
        ),
    ))
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Close every writer queue (queued frames still flush), then tell
        // the loops to finish flushing within their grace window and exit.
        for (_, w) in self.shared.outgoing.lock().drain() {
            w.close();
        }
        self.shared.pool.shutdown();
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.shared.me)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn spawn_accept_loop(listener: TcpListener, shared: Arc<TcpShared>) {
    std::thread::Builder::new()
        .name("vsgm-tcp-accept".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // No thread spawned: the socket joins an event
                        // loop's connection set (round-robin).
                        shared.accepted.fetch_add(1, Ordering::Relaxed);
                        if stream.set_nodelay(true).is_err()
                            || stream.set_nonblocking(true).is_err()
                        {
                            continue;
                        }
                        shared.pool.register(Register::Inbound(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn accept thread");
}

/// Periodically claims the *reserved* heartbeat slot on every outgoing
/// connection. The probe never competes with data for queue space, so a
/// queue sitting at its backpressure watermark cannot delay liveness
/// probes past `heartbeat_interval` (the false-suspicion bug). A
/// connection whose queue has died is torn down here, so the next send
/// reconnects with backoff — dead peers are detected even when the
/// application has nothing to say.
fn spawn_heartbeat_loop(shared: Arc<TcpShared>, interval: Duration) {
    std::thread::Builder::new()
        .name("vsgm-tcp-heartbeat".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let conns: Vec<(ProcessId, PeerWriter)> = shared
                    .outgoing
                    .lock()
                    .iter()
                    .map(|(p, w)| (*p, w.clone()))
                    .collect();
                for (peer, writer) in conns {
                    if writer.push_heartbeat() {
                        shared.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let mut out = shared.outgoing.lock();
                        if out.get(&peer).is_some_and(|w| w.same_as(&writer)) {
                            out.remove(&peer);
                        }
                    }
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn heartbeat thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn pair() -> (TcpTransport, TcpTransport) {
        pair_with(TcpConfig::default())
    }

    fn pair_with(config: TcpConfig) -> (TcpTransport, TcpTransport) {
        let a = TcpTransport::bind_with(p(1), "127.0.0.1:0", config.clone()).unwrap();
        let b = TcpTransport::bind_with(p(2), "127.0.0.1:0", config).unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        (a, b)
    }

    fn only(to: u64) -> ProcSet {
        [p(to)].into_iter().collect()
    }

    #[test]
    fn send_and_receive() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("hello"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("hello")));
    }

    #[test]
    fn send_and_receive_json_wire_format() {
        // A JSON-configured sender interops with a binary-default peer.
        let a = TcpTransport::bind_with(
            p(1),
            "127.0.0.1:0",
            TcpConfig { wire_format: WireFormat::Json, ..TcpConfig::default() },
        )
        .unwrap();
        let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        a.send(&only(2), &NetMsg::App(AppMsg::from("json"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("json")));
    }

    #[test]
    fn fifo_order_per_peer() {
        let (a, b) = pair();
        for i in 0..100 {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("m{i}").as_str()))).unwrap();
        }
        for i in 0..100 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
            assert_eq!(msg, NetMsg::App(AppMsg::from(format!("m{i}").as_str())));
        }
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("ping"))).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, NetMsg::App(AppMsg::from("ping")));
        b.send(&only(1), &NetMsg::App(AppMsg::from("pong"))).unwrap();
        let (from, msg) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(2));
        assert_eq!(msg, NetMsg::App(AppMsg::from("pong")));
    }

    #[test]
    fn self_send_is_skipped() {
        let (a, _b) = pair();
        a.send(&only(1), &NetMsg::App(AppMsg::from("self"))).unwrap();
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn unknown_peer_errors() {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let err = a.send(&only(9), &NetMsg::App(AppMsg::from("x"))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn large_message_roundtrip() {
        let (a, b) = pair();
        let payload = AppMsg::from(vec![7u8; 1 << 20]);
        a.send(&only(2), &NetMsg::App(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(10)).expect("large frame arrives");
        assert_eq!(msg, NetMsg::App(payload));
    }

    #[test]
    fn burst_coalesces_into_fewer_flushes() {
        let (a, b) = pair();
        const BURST: usize = 200;
        for i in 0..BURST {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("c{i}").as_str()))).unwrap();
        }
        for _ in 0..BURST {
            b.recv_timeout(Duration::from_secs(5)).expect("burst message arrives");
        }
        let s = a.stats();
        assert!(s.frames_flushed >= BURST as u64, "{s:?}");
        assert!(
            s.flushes < s.frames_flushed,
            "burst never coalesced: {} flushes for {} frames",
            s.flushes,
            s.frames_flushed
        );
        assert!(s.coalesce_max >= 2, "{s:?}");
        assert!(s.queue_depth_max >= 1, "{s:?}");
    }

    #[test]
    fn watermark_counts_backpressure_hits() {
        // Watermark 1: every successful enqueue observes depth >= 1, so
        // each send registers a hit; the default watermark (512) leaves
        // light traffic unpressured.
        let (a, b) = pair_with(TcpConfig { queue_watermark: 1, ..TcpConfig::default() });
        const N: usize = 8;
        for i in 0..N {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("w{i}").as_str()))).unwrap();
        }
        for _ in 0..N {
            b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        }
        let s = a.stats();
        assert!(s.backpressure_hits >= N as u64, "{s:?}");
        // Exported counters round-trip through a registry.
        let mut reg = vsgm_obs::Registry::new();
        a.export_obs(&mut reg);
        let via_reg = crate::NetStats::from_registry(&reg);
        assert_eq!(via_reg.backpressure_hits, s.backpressure_hits);
        // An idle receiver with the default watermark sees no pressure.
        assert_eq!(b.stats().backpressure_hits, 0, "{:?}", b.stats());
    }

    #[test]
    fn reconnect_backoff_counts_retries_then_recovers() {
        // Point a at a listener that has gone away: the send fails after
        // the configured retries, each counted in the stats.
        let gone = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = gone.local_addr().unwrap();
        drop(gone);
        let a = TcpTransport::bind_with(
            p(1),
            "127.0.0.1:0",
            TcpConfig {
                max_reconnect_attempts: 3,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                ..TcpConfig::default()
            },
        )
        .unwrap();
        a.register_peer(p(2), addr);
        assert!(a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).is_err());
        assert_eq!(a.stats().retries, 3);
        // The peer comes back on the same address: the next send
        // reconnects and delivers.
        let b = TcpTransport::bind(p(2), &addr.to_string()).unwrap();
        a.send(&only(2), &NetMsg::App(AppMsg::from("again"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("delivered after restart");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("again")));
        assert!(a.stats().retries >= 3);
    }

    #[test]
    fn multicast_attempts_all_peers_despite_one_dead() {
        // p2's address is dead (listener bound then dropped); p3 is live.
        // The multicast must still reach p3 and return an aggregated
        // error naming p2. (Pre-writer-rebuild, the fan-out aborted on
        // the first broken peer and p3 was silently skipped.)
        let gone = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = gone.local_addr().unwrap();
        drop(gone);
        let a = TcpTransport::bind_with(
            p(1),
            "127.0.0.1:0",
            TcpConfig {
                max_reconnect_attempts: 1,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let c = TcpTransport::bind(p(3), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), dead_addr);
        a.register_peer(p(3), c.local_addr());
        let to: ProcSet = [p(2), p(3)].into_iter().collect();
        let err = a.send(&to, &NetMsg::App(AppMsg::from("fan-out"))).unwrap_err();
        assert!(err.to_string().contains("p2"), "aggregated error names the dead peer: {err}");
        assert!(err.to_string().contains("1/2"), "aggregated error counts reach: {err}");
        let (from, msg) = c.recv_timeout(Duration::from_secs(5)).expect("live peer still served");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("fan-out")));
    }

    #[test]
    fn heartbeats_flow_and_silent_peers_are_suspected() {
        let fast = TcpConfig {
            heartbeat_interval: Duration::from_millis(10),
            suspect_after: Duration::from_millis(120),
            ..TcpConfig::default()
        };
        let a = TcpTransport::bind_with(p(1), "127.0.0.1:0", fast.clone()).unwrap();
        let b = TcpTransport::bind_with(p(2), "127.0.0.1:0", fast).unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        // Establish both directions so heartbeats flow both ways.
        a.send(&only(2), &NetMsg::App(AppMsg::from("hi"))).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        b.send(&only(1), &NetMsg::App(AppMsg::from("yo"))).unwrap();
        a.recv_timeout(Duration::from_secs(5)).unwrap();
        // Heartbeats keep the peer un-suspected while it lives.
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.heartbeats_received() == 0 {
            assert!(Instant::now() < deadline, "no heartbeat ever arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(a.stats().heartbeats > 0, "a never sent a heartbeat");
        assert!(a.suspected_peers().is_empty(), "live peer suspected");
        // Kill b: its heartbeats stop, and silence crosses suspect_after.
        drop(b);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !a.suspected_peers().contains(&p(2)) {
            assert!(Instant::now() < deadline, "dead peer never suspected");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = pair();
        assert!(b.try_recv().is_none());
        a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).unwrap();
        // Poll until the reader thread pushes it through.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((_, msg)) = b.try_recv() {
                assert_eq!(msg, NetMsg::App(AppMsg::from("x")));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "message never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn grouped_send_routes_and_plain_recv_strips_the_group() {
        let (a, b) = pair();
        let g = GroupId::new(42);
        a.send_to_group(g, &only(2), &NetMsg::App(AppMsg::from("grouped"))).unwrap();
        a.send(&only(2), &NetMsg::App(AppMsg::from("legacy"))).unwrap();
        // Routed recv sees the envelope's group on the first frame and
        // None on the legacy frame; FIFO order per peer is preserved
        // across grouped and legacy frames on one connection.
        let (from, group, msg) =
            b.recv_routed_timeout(Duration::from_secs(5)).expect("grouped frame arrives");
        assert_eq!((from, group, msg), (p(1), Some(g), NetMsg::App(AppMsg::from("grouped"))));
        let (from, group, msg) =
            b.recv_routed_timeout(Duration::from_secs(5)).expect("legacy frame arrives");
        assert_eq!((from, group, msg), (p(1), None, NetMsg::App(AppMsg::from("legacy"))));
        // The single-group Transport view just strips the group.
        a.send_to_group(g, &only(2), &NetMsg::App(AppMsg::from("stripped"))).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).expect("message arrives");
        assert_eq!(msg, NetMsg::App(AppMsg::from("stripped")));
    }

    #[test]
    fn grouped_json_frames_route_under_accept_json() {
        let a = TcpTransport::bind_with(
            p(1),
            "127.0.0.1:0",
            TcpConfig { wire_format: WireFormat::Json, ..TcpConfig::default() },
        )
        .unwrap();
        let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        let g = GroupId::new(7);
        a.send_to_group(g, &only(2), &NetMsg::App(AppMsg::from("gjson"))).unwrap();
        let (from, group, msg) =
            b.recv_routed_timeout(Duration::from_secs(5)).expect("grouped json arrives");
        assert_eq!((from, group, msg), (p(1), Some(g), NetMsg::App(AppMsg::from("gjson"))));
    }

    #[test]
    fn aggregate_error_preserves_single_destination_kind() {
        let nf = io::Error::new(io::ErrorKind::NotFound, "no address");
        let err = aggregate_send_errors(1, vec![(p(9), nf)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(err.to_string(), "no address");
        let bp = io::Error::new(io::ErrorKind::BrokenPipe, "down");
        let to = io::Error::new(io::ErrorKind::TimedOut, "stall");
        let err = aggregate_send_errors(3, vec![(p(2), bp), (p(4), to)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let text = err.to_string();
        assert!(text.contains("1/3") && text.contains("p2") && text.contains("p4"), "{text}");
        assert!(aggregate_send_errors(5, vec![]).is_ok());
    }
}
