//! Message latency models for the simulated network.

use vsgm_ioa::{SimRng, SimTime};

/// How long a message spends in transit on the simulated network.
///
/// The paper's model is fully asynchronous, so latency never affects
/// correctness — only the timing numbers experiments report. `Uniform`
/// jitter also exercises more interleavings (messages on different
/// channels overtake each other).
///
/// ```
/// use vsgm_net::LatencyModel;
/// use vsgm_ioa::{SimRng, SimTime};
/// let mut rng = SimRng::new(1);
/// let d = LatencyModel::Fixed(SimTime::from_micros(100)).sample(&mut rng);
/// assert_eq!(d, SimTime::from_micros(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(SimTime),
    /// Uniformly random in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum latency.
        lo: SimTime,
        /// Maximum latency.
        hi: SimTime,
    },
}

impl LatencyModel {
    /// A LAN-ish default: 50–200 µs.
    pub fn lan() -> Self {
        LatencyModel::Uniform { lo: SimTime::from_micros(50), hi: SimTime::from_micros(200) }
    }

    /// A WAN-ish profile: 20–80 ms, matching the paper's target
    /// environment of membership servers spread over a wide-area network.
    pub fn wan() -> Self {
        LatencyModel::Uniform { lo: SimTime::from_millis(20), hi: SimTime::from_millis(80) }
    }

    /// Draws one transit duration.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `lo > hi`.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency with lo > hi");
                SimTime::from_micros(rng.range(lo.as_micros(), hi.as_micros() + 1))
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::new(0);
        let m = LatencyModel::Fixed(SimTime::from_micros(7));
        for _ in 0..5 {
            assert_eq!(m.sample(&mut rng).as_micros(), 7);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Uniform {
            lo: SimTime::from_micros(10),
            hi: SimTime::from_micros(20),
        };
        for _ in 0..100 {
            let d = m.sample(&mut rng).as_micros();
            assert!((10..=20).contains(&d), "{d}");
        }
    }

    #[test]
    fn uniform_hits_both_endpoints() {
        let mut rng = SimRng::new(2);
        let m =
            LatencyModel::Uniform { lo: SimTime::from_micros(0), hi: SimTime::from_micros(1) };
        let draws: std::collections::BTreeSet<u64> =
            (0..64).map(|_| m.sample(&mut rng).as_micros()).collect();
        assert_eq!(draws.len(), 2);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn inverted_uniform_panics() {
        let mut rng = SimRng::new(3);
        LatencyModel::Uniform { lo: SimTime::from_micros(5), hi: SimTime::from_micros(1) }
            .sample(&mut rng);
    }

    #[test]
    fn presets_are_ordered() {
        let mut rng = SimRng::new(4);
        let lan = LatencyModel::lan().sample(&mut rng);
        let wan = LatencyModel::wan().sample(&mut rng);
        assert!(wan > lan);
    }
}
