//! Deterministic discrete-event network implementing `CO_RFIFO` (Fig. 3).

use crate::fault::{FaultAction, FaultInjector, FaultPlan, FaultStats};
use crate::latency::LatencyModel;
use crate::stats::NetStats;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use vsgm_ioa::{SimRng, SimTime};
use crate::Wire;
use vsgm_obs::{names, NoopRecorder, Recorder};
use vsgm_types::{NetMsg, ProcSet, ProcessId};

#[derive(Debug, Clone)]
struct InFlight<M> {
    msg: M,
    sent: SimTime,
    arrival: SimTime,
}

/// A deterministic simulated network with the semantics of the `CO_RFIFO`
/// specification (Fig. 3):
///
/// * per-ordered-pair FIFO channels — arrival times are monotone within a
///   channel, so messages never overtake each other;
/// * **reliability** is governed by each sender's `reliable_set`
///   ([`SimNet::set_reliable`]): messages to peers in the set are never
///   lost (they wait out partitions); messages to peers outside it are
///   dropped when the pair is disconnected (the spec's `lose` action);
/// * **liveness** is governed by connectivity ([`SimNet::partition`] /
///   [`SimNet::heal`]): a message is only delivered while its endpoints
///   are in the same partition component, which is exactly the spec's
///   `live_set`-gated delivery task;
/// * crash/recovery per §8: a crash empties the victim's `reliable_set`
///   (its in-flight output becomes losable and is dropped, modeling reset
///   connections) and pauses its input until recovery.
///
/// All randomness (latency jitter) is drawn from a seeded [`SimRng`], so a
/// run is a pure function of `(scenario, seed)`.
#[derive(Debug)]
pub struct SimNet<M: Wire = NetMsg> {
    procs: Vec<ProcessId>,
    latency: LatencyModel,
    rng: SimRng,
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<InFlight<M>>>,
    reliable: HashMap<ProcessId, ProcSet>,
    component: HashMap<ProcessId, u32>,
    crashed: HashSet<ProcessId>,
    stats: NetStats,
    /// Optional chaos fault injector ([`SimNet::set_faults`]).
    injector: Option<FaultInjector>,
}

impl<M: Wire> SimNet<M> {
    /// Creates a fully connected network over `procs`.
    pub fn new(
        procs: impl IntoIterator<Item = ProcessId>,
        latency: LatencyModel,
        rng: SimRng,
    ) -> SimNet<M> {
        let procs: Vec<ProcessId> = procs.into_iter().collect();
        let component = procs.iter().map(|p| (*p, 0)).collect();
        let reliable = procs.iter().map(|p| (*p, [*p].into_iter().collect())).collect();
        SimNet {
            procs,
            latency,
            rng,
            channels: BTreeMap::new(),
            reliable,
            component,
            crashed: HashSet::new(),
            stats: NetStats::new(),
            injector: None,
        }
    }

    /// Installs a chaos [`FaultPlan`]: from now on every enqueue consults
    /// a [`FaultInjector`] seeded by forking this network's own rng, so
    /// the whole faulty run stays a pure function of `(scenario, seed)`.
    /// Passing a plan with nothing to inject removes the injector.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        if plan.is_none() {
            self.injector = None;
        } else {
            let rng = self.rng.fork(0xFA);
            self.injector = Some(FaultInjector::new(plan, rng));
        }
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(FaultInjector::plan)
    }

    /// What the fault injector has done so far (zeroes when no plan is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.as_ref().map(FaultInjector::stats).unwrap_or_default()
    }

    /// The registered processes.
    pub fn procs(&self) -> &[ProcessId] {
        &self.procs
    }

    /// Whether `p` and `q` are currently in the same partition component
    /// (and neither is unknown). A process is always connected to itself.
    pub fn connected(&self, p: ProcessId, q: ProcessId) -> bool {
        if p == q {
            return true;
        }
        match (self.component.get(&p), self.component.get(&q)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// The spec's `live_set[p]`: peers currently alive and connected to
    /// `p`, including `p` itself.
    pub fn live_set(&self, p: ProcessId) -> ProcSet {
        self.procs
            .iter()
            .copied()
            .filter(|q| {
                *q == p || (self.connected(p, *q) && !self.crashed.contains(q))
            })
            .collect()
    }

    /// `CO_RFIFO.reliable_p(set)`: declare the peers `p` wants gap-free
    /// FIFO channels to.
    pub fn set_reliable(&mut self, p: ProcessId, set: ProcSet) {
        // Dropping a peer from the reliable set makes the channel suffix
        // losable; if the pair is also disconnected we drop eagerly, since
        // nothing will ever retransmit.
        let removed: Vec<ProcessId> = self
            .reliable
            .get(&p)
            .map(|old| old.difference(&set).copied().collect())
            .unwrap_or_default();
        for q in removed {
            if !self.connected(p, q) {
                self.drop_channel(p, q);
            }
        }
        self.reliable.insert(p, set);
    }

    /// The current `reliable_set[p]`.
    pub fn reliable_set(&self, p: ProcessId) -> ProcSet {
        self.reliable.get(&p).cloned().unwrap_or_else(|| [p].into_iter().collect())
    }

    /// `CO_RFIFO.send_p(set, m)` at simulated time `now`.
    pub fn send(&mut self, now: SimTime, from: ProcessId, set: &ProcSet, msg: &M) {
        self.send_rec(now, from, set, msg, &mut NoopRecorder);
    }

    /// [`SimNet::send`] with an observability [`Recorder`]: mirrors the
    /// per-tag traffic and drop accounting into the recorder.
    pub fn send_rec(
        &mut self,
        now: SimTime,
        from: ProcessId,
        set: &ProcSet,
        msg: &M,
        rec: &mut dyn Recorder,
    ) {
        for q in set {
            if *q == from {
                continue; // end-points never multicast to themselves
            }
            let reliable = self.reliable_set(from).contains(q);
            if !reliable && !self.connected(from, *q) {
                // lose(from, q): the freshly appended message is the tail.
                self.stats.dropped += 1;
                rec.counter(names::NET_DROPPED, 1);
                continue;
            }
            // Chaos faults: loss/duplication only where the spec's `lose`
            // is enabled (receiver outside the reliable set); extra delay
            // anywhere (the asynchronous model never bounds latency).
            let action = match &mut self.injector {
                Some(inj) => inj.on_send(!reliable),
                None => FaultAction::Deliver { copies: 1, extra_delay: SimTime::ZERO },
            };
            let (copies, extra_delay) = match action {
                FaultAction::Drop => {
                    // Injected lose(from, q): identical to the spec drop.
                    self.stats.dropped += 1;
                    rec.counter(names::NET_DROPPED, 1);
                    continue;
                }
                FaultAction::Deliver { copies, extra_delay } => (copies, extra_delay),
            };
            for _ in 0..copies {
                self.stats.record_send(msg);
                rec.traffic(msg.tag(), msg.wire_size() as u64);
                let chan = self.channels.entry((from, *q)).or_default();
                let floor = chan.back().map_or(SimTime::ZERO, |m| m.arrival);
                let arrival =
                    (now + self.latency.sample(&mut self.rng) + extra_delay).max(floor);
                chan.push_back(InFlight { msg: msg.clone(), sent: now, arrival });
            }
        }
    }

    /// Splits the network into the given partition components. Processes
    /// not named in any group each get their own singleton component.
    /// In-flight messages on newly disconnected channels are dropped when
    /// the receiver is outside the sender's `reliable_set` (the spec's
    /// `lose`), and retained otherwise.
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        let mut comp: HashMap<ProcessId, u32> = HashMap::new();
        for (i, g) in groups.iter().enumerate() {
            for p in g {
                comp.insert(*p, i as u32);
            }
        }
        let mut next = groups.len() as u32;
        for p in &self.procs {
            comp.entry(*p).or_insert_with(|| {
                let c = next;
                next += 1;
                c
            });
        }
        self.component = comp;
        // Apply loss on newly disconnected, unreliable channels.
        let keys: Vec<(ProcessId, ProcessId)> = self.channels.keys().copied().collect();
        for (p, q) in keys {
            if !self.connected(p, q) && !self.reliable_set(p).contains(&q) {
                self.drop_channel(p, q);
            }
        }
    }

    /// Reconnects everything into a single component. Queued messages on
    /// previously blocked channels are re-stamped to arrive after `now`
    /// (they still need a network traversal).
    pub fn heal(&mut self, now: SimTime) {
        let blocked: Vec<(ProcessId, ProcessId)> = self
            .channels
            .keys()
            .copied()
            .filter(|(p, q)| !self.connected(*p, *q))
            .collect();
        for p in &self.procs {
            self.component.insert(*p, 0);
        }
        for key in blocked {
            let mut floor = SimTime::ZERO;
            let latency = &self.latency;
            let rng = &mut self.rng;
            if let Some(chan) = self.channels.get_mut(&key) {
                for m in chan.iter_mut() {
                    let stamped = (now + latency.sample(rng)).max(floor);
                    m.arrival = m.arrival.max(stamped);
                    floor = m.arrival;
                }
            }
        }
    }

    /// `crash_p()` (§8): empties `p`'s reliable set (dropping its
    /// in-flight output — reset connections) and pauses delivery to `p`.
    pub fn crash(&mut self, p: ProcessId) {
        self.crashed.insert(p);
        self.reliable.insert(p, ProcSet::new());
        let outgoing: Vec<(ProcessId, ProcessId)> =
            self.channels.keys().copied().filter(|(from, _)| *from == p).collect();
        for (from, to) in outgoing {
            self.drop_channel(from, to);
        }
    }

    /// `recover_p()` (§8): resumes delivery; reliable set back to `{p}`.
    pub fn recover(&mut self, p: ProcessId) {
        self.crashed.remove(&p);
        self.reliable.insert(p, [p].into_iter().collect());
    }

    /// Whether `p` is currently crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed.contains(&p)
    }

    fn deliverable(&self, from: ProcessId, to: ProcessId) -> bool {
        self.connected(from, to) && !self.crashed.contains(&to)
    }

    /// Earliest arrival among deliverable channels, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.channels
            .iter()
            .filter(|((from, to), _)| self.deliverable(*from, *to))
            .filter_map(|(_, chan)| chan.front().map(|m| m.arrival))
            .min()
    }

    /// Removes and returns every message whose arrival time is `<= now` on
    /// a deliverable channel, preserving per-channel FIFO order. Channel
    /// iteration order is deterministic (sorted by `(from, to)`).
    pub fn pop_ready(&mut self, now: SimTime) -> Vec<(ProcessId, ProcessId, M)> {
        self.pop_ready_rec(now, &mut NoopRecorder)
    }

    /// [`SimNet::pop_ready`] with an observability [`Recorder`]: counts
    /// deliveries and feeds each message's network transit time into the
    /// `net.delivery_latency_us` histogram.
    pub fn pop_ready_rec(
        &mut self,
        now: SimTime,
        rec: &mut dyn Recorder,
    ) -> Vec<(ProcessId, ProcessId, M)> {
        let mut out = Vec::new();
        let keys: Vec<(ProcessId, ProcessId)> = self.channels.keys().copied().collect();
        for key in keys {
            if !self.deliverable(key.0, key.1) {
                continue;
            }
            let Some(chan) = self.channels.get_mut(&key) else { continue };
            while chan.front().is_some_and(|m| m.arrival <= now) {
                let Some(m) = chan.pop_front() else { break };
                self.stats.delivered += 1;
                rec.counter(names::NET_DELIVERED, 1);
                rec.observe(
                    names::NET_DELIVERY_LATENCY_US,
                    m.arrival.saturating_sub(m.sent).as_micros(),
                );
                out.push((key.0, key.1, m.msg));
            }
        }
        out
    }

    /// Iterates every in-flight message as `(from, to, msg)` (for
    /// invariant checking over global states).
    pub fn iter_in_transit(&self) -> impl Iterator<Item = (ProcessId, ProcessId, &M)> + '_ {
        self.channels
            .iter()
            .flat_map(|((from, to), chan)| chan.iter().map(move |m| (*from, *to, &m.msg)))
    }

    /// Number of messages currently queued from `p` to `q`.
    pub fn in_transit(&self, p: ProcessId, q: ProcessId) -> usize {
        self.channels.get(&(p, q)).map_or(0, VecDeque::len)
    }

    /// Whether any message is queued anywhere (even on blocked channels).
    pub fn is_idle(&self) -> bool {
        self.channels.values().all(VecDeque::is_empty)
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets traffic statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }

    fn drop_channel(&mut self, p: ProcessId, q: ProcessId) {
        if let Some(chan) = self.channels.get_mut(&(p, q)) {
            self.stats.dropped += chan.len() as u64;
            chan.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn procs(n: u64) -> Vec<ProcessId> {
        (1..=n).map(p).collect()
    }

    fn app(s: &str) -> NetMsg {
        NetMsg::App(AppMsg::from(s))
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn lan_net(n: u64, seed: u64) -> SimNet {
        SimNet::new(procs(n), LatencyModel::lan(), SimRng::new(seed))
    }

    fn drain_all(net: &mut SimNet) -> Vec<(ProcessId, ProcessId, NetMsg)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_arrival() {
            out.extend(net.pop_ready(t));
        }
        out
    }

    #[test]
    fn fifo_order_preserved_despite_jitter() {
        let mut net = lan_net(2, 1);
        net.set_reliable(p(1), set(&[1, 2]));
        for i in 0..50 {
            net.send(SimTime::ZERO, p(1), &set(&[2]), &app(&format!("m{i}")));
        }
        let got = drain_all(&mut net);
        assert_eq!(got.len(), 50);
        for (i, (_, _, m)) in got.iter().enumerate() {
            assert_eq!(*m, app(&format!("m{i}")));
        }
    }

    #[test]
    fn multicast_reaches_all_destinations_but_not_self() {
        let mut net = lan_net(3, 2);
        net.set_reliable(p(1), set(&[1, 2, 3]));
        net.send(SimTime::ZERO, p(1), &set(&[1, 2, 3]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(1)), 0);
        assert_eq!(net.in_transit(p(1), p(2)), 1);
        assert_eq!(net.in_transit(p(1), p(3)), 1);
    }

    #[test]
    fn partition_blocks_reliable_channel_until_heal() {
        let mut net = lan_net(2, 3);
        net.set_reliable(p(1), set(&[1, 2]));
        net.partition(&[vec![p(1)], vec![p(2)]]);
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(2)), 1);
        assert_eq!(net.next_arrival(), None, "blocked channel must not deliver");
        net.heal(SimTime::from_millis(10));
        let got = drain_all(&mut net);
        assert_eq!(got.len(), 1);
        assert!(got[0].2 == app("x"));
        // Re-stamped to arrive after the heal.
        assert!(net.stats().delivered == 1);
    }

    #[test]
    fn partition_drops_unreliable_messages() {
        let mut net = lan_net(2, 4);
        // p2 NOT in p1's reliable set.
        net.set_reliable(p(1), set(&[1]));
        net.partition(&[vec![p(1)], vec![p(2)]]);
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(2)), 0);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn partition_drops_in_flight_unreliable() {
        let mut net = lan_net(2, 5);
        net.set_reliable(p(1), set(&[1]));
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x")); // connected: queued
        assert_eq!(net.in_transit(p(1), p(2)), 1);
        net.partition(&[vec![p(1)], vec![p(2)]]);
        assert_eq!(net.in_transit(p(1), p(2)), 0);
    }

    #[test]
    fn shrinking_reliable_set_while_disconnected_drops() {
        let mut net = lan_net(2, 6);
        net.set_reliable(p(1), set(&[1, 2]));
        net.partition(&[vec![p(1)], vec![p(2)]]);
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(2)), 1);
        net.set_reliable(p(1), set(&[1]));
        assert_eq!(net.in_transit(p(1), p(2)), 0);
    }

    #[test]
    fn crash_drops_outgoing_and_blocks_incoming() {
        let mut net = lan_net(2, 7);
        net.set_reliable(p(1), set(&[1, 2]));
        net.set_reliable(p(2), set(&[1, 2]));
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("to2"));
        net.send(SimTime::ZERO, p(2), &set(&[1]), &app("to1"));
        net.crash(p(2));
        // p2's outgoing dropped; p1's message to p2 parked.
        assert_eq!(net.in_transit(p(2), p(1)), 0);
        assert_eq!(net.in_transit(p(1), p(2)), 1);
        assert_eq!(net.next_arrival(), None);
        net.recover(p(2));
        let got = drain_all(&mut net);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, app("to2"));
    }

    #[test]
    fn live_set_reflects_partitions_and_crashes() {
        let mut net = lan_net(3, 8);
        assert_eq!(net.live_set(p(1)), set(&[1, 2, 3]));
        net.partition(&[vec![p(1), p(2)], vec![p(3)]]);
        assert_eq!(net.live_set(p(1)), set(&[1, 2]));
        net.crash(p(2));
        assert_eq!(net.live_set(p(1)), set(&[1]));
        assert_eq!(net.live_set(p(3)), set(&[3]));
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut net = lan_net(3, seed);
            net.set_reliable(p(1), set(&[1, 2, 3]));
            for i in 0..10 {
                net.send(SimTime::from_micros(i), p(1), &set(&[2, 3]), &app(&format!("{i}")));
            }
            drain_all(&mut net)
                .into_iter()
                .map(|(a, b, m)| (a, b, m.tag().to_string(), format!("{m:?}")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn is_idle_tracks_queues() {
        let mut net = lan_net(2, 9);
        assert!(net.is_idle());
        net.set_reliable(p(1), set(&[1, 2]));
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert!(!net.is_idle());
        drain_all(&mut net);
        assert!(net.is_idle());
    }

    #[test]
    fn fault_drop_spares_reliable_channels() {
        let mut net = lan_net(3, 11);
        net.set_reliable(p(1), set(&[1, 2])); // p3 NOT reliable
        net.set_faults(FaultPlan { drop: 1.0, ..FaultPlan::default() });
        for i in 0..20 {
            net.send(SimTime::from_micros(i), p(1), &set(&[2, 3]), &app(&format!("m{i}")));
        }
        // Every copy to p2 arrives; every copy to p3 is lost.
        assert_eq!(net.in_transit(p(1), p(2)), 20);
        assert_eq!(net.in_transit(p(1), p(3)), 0);
        assert_eq!(net.fault_stats().injected_drops, 20);
        assert_eq!(net.stats().dropped, 20);
    }

    #[test]
    fn fault_dup_enqueues_two_copies_on_unreliable_channel() {
        let mut net = lan_net(2, 12);
        net.set_reliable(p(1), set(&[1])); // p2 unreliable but connected
        net.set_faults(FaultPlan { dup: 1.0, ..FaultPlan::default() });
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(2)), 2);
        assert_eq!(net.fault_stats().injected_dups, 1);
        let got = drain_all(&mut net);
        assert_eq!(got.len(), 2, "duplicate delivered twice");
    }

    #[test]
    fn fault_jitter_keeps_per_channel_fifo() {
        let mut net = lan_net(2, 13);
        net.set_reliable(p(1), set(&[1, 2]));
        net.set_faults(FaultPlan { reorder_ms: 30, ..FaultPlan::default() });
        for i in 0..40 {
            net.send(SimTime::from_micros(i), p(1), &set(&[2]), &app(&format!("m{i}")));
        }
        let got = drain_all(&mut net);
        assert_eq!(got.len(), 40);
        for (i, (_, _, m)) in got.iter().enumerate() {
            assert_eq!(*m, app(&format!("m{i}")), "jitter must not reorder within a channel");
        }
        assert!(net.fault_stats().delayed > 0);
    }

    #[test]
    fn fault_burst_loses_consecutive_unreliable_messages() {
        let mut net = lan_net(2, 14);
        net.set_reliable(p(1), set(&[1]));
        net.set_faults(FaultPlan { burst: 1.0, burst_len: 64, ..FaultPlan::default() });
        for i in 0..10 {
            net.send(SimTime::from_micros(i), p(1), &set(&[2]), &app(&format!("m{i}")));
        }
        assert_eq!(net.in_transit(p(1), p(2)), 0, "whole burst window lost");
        assert_eq!(net.fault_stats().injected_drops, 10);
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut net = lan_net(3, seed);
            net.set_reliable(p(1), set(&[1, 2]));
            net.set_faults(FaultPlan {
                drop: 0.4,
                reorder_ms: 5,
                burst: 0.1,
                burst_len: 3,
                ..FaultPlan::default()
            });
            for i in 0..50 {
                net.send(SimTime::from_micros(i), p(1), &set(&[2, 3]), &app(&format!("{i}")));
            }
            let drained: Vec<String> = drain_all(&mut net)
                .into_iter()
                .map(|(a, b, m)| format!("{a}->{b}:{m:?}"))
                .collect();
            (drained, net.fault_stats())
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn clearing_faults_restores_the_identity_network() {
        let mut net = lan_net(2, 15);
        net.set_reliable(p(1), set(&[1]));
        net.set_faults(FaultPlan { drop: 1.0, ..FaultPlan::default() });
        assert!(net.fault_plan().is_some());
        net.set_faults(FaultPlan::none());
        assert!(net.fault_plan().is_none());
        net.send(SimTime::ZERO, p(1), &set(&[2]), &app("x"));
        assert_eq!(net.in_transit(p(1), p(2)), 1);
    }

    #[test]
    fn unlisted_processes_get_singleton_components() {
        let mut net = lan_net(3, 10);
        net.partition(&[vec![p(1), p(2)]]);
        assert!(net.connected(p(1), p(2)));
        assert!(!net.connected(p(1), p(3)));
        assert!(!net.connected(p(2), p(3)));
        assert!(net.connected(p(3), p(3)));
    }
}
