//! `CO_RFIFO` substrates for the vsgm stack.
//!
//! The group communication end-points of the paper communicate over a
//! *connection-oriented reliable FIFO multicast service* (Fig. 3). This
//! crate provides two interchangeable implementations:
//!
//! * [`sim::SimNet`] — a deterministic discrete-event network with
//!   configurable latency ([`latency::LatencyModel`]), partitions, message
//!   loss outside `reliable_set`s, and crash handling. Used by the
//!   simulation harness; every run is reproducible from a seed.
//! * [`tcp::TcpTransport`] — an event-loop transport over real TCP
//!   sockets (length-prefixed frames, a fixed pool of readiness-loop
//!   threads owning all connections), for same-host deployments and
//!   wall-clock benchmarks. TCP provides exactly the per-pair reliable
//!   FIFO channel semantics the spec requires; the paper's own
//!   implementation used the analogous datagram service of its
//!   reference \[36\].
//!
//! Both are validated against the `CO_RFIFO` spec checker from
//! `vsgm-spec`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub(crate) mod evloop;
pub mod fault;
pub mod latency;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod udp;
pub(crate) mod writer;

pub use codec::WireFormat;
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultStats};
pub use latency::LatencyModel;
pub use sim::SimNet;
pub use stats::NetStats;
pub use tcp::{TcpConfig, TcpTransport, Transport};
pub use udp::UdpTransport;

/// A message kind the simulated network can carry and account for.
///
/// [`sim::SimNet`] is generic over its payload so both the GCS end-points'
/// [`vsgm_types::NetMsg`] traffic and the membership servers' internal
/// protocol can run over the same fault model.
pub trait Wire: Clone + std::fmt::Debug {
    /// Short tag naming the message kind, used for traffic accounting.
    fn tag(&self) -> &'static str;
    /// Approximate wire size in bytes, used for byte accounting.
    fn wire_size(&self) -> usize;
}

impl Wire for vsgm_types::NetMsg {
    fn tag(&self) -> &'static str {
        NetMsgExt::tag(self)
    }
    fn wire_size(&self) -> usize {
        NetMsgExt::wire_size(self)
    }
}

/// Disambiguation shim: calls the inherent methods on `NetMsg`.
trait NetMsgExt {
    fn tag(&self) -> &'static str;
    fn wire_size(&self) -> usize;
}

impl NetMsgExt for vsgm_types::NetMsg {
    fn tag(&self) -> &'static str {
        vsgm_types::NetMsg::tag(self)
    }
    fn wire_size(&self) -> usize {
        vsgm_types::NetMsg::wire_size(self)
    }
}
