//! Seeded fault injection for the simulated `CO_RFIFO` network.
//!
//! The spec (Fig. 3) draws a sharp line through the fault space:
//!
//! * channels to peers in the sender's `reliable_set` are gap-free FIFO —
//!   the *only* legal degradation is unbounded delay;
//! * channels to peers **outside** the `reliable_set` may additionally
//!   *lose* any message at any time (the internal `lose(p, q)` action).
//!
//! A [`FaultPlan`] bends the network exactly along that line: probabilistic
//! drop and burst loss apply only to non-`reliable_set` messages (staying
//! inside the spec envelope, so the `CO_RFIFO` checker remains green),
//! while reorder jitter — extra per-message delay that lets channels
//! overtake each other — applies everywhere, because the asynchronous
//! model permits arbitrary delay. Duplication (`dup`) also targets only
//! non-`reliable_set` messages but *exceeds* the spec envelope (Fig. 3
//! never duplicates); it exists to validate that the oracle notices a
//! misbehaving network, and chaos search keeps it off by default.
//!
//! All randomness flows through a forked [`SimRng`], so every injected
//! fault is a pure function of `(plan, seed)` and failing runs replay
//! bit-exactly.

use serde::{Deserialize, Serialize};
use vsgm_ioa::{SimRng, SimTime};

/// Declarative description of the faults to inject, replayable from a
/// seed. All probabilities are per in-transit message (a multicast to `k`
/// peers makes `k` independent draws, one per channel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability of dropping a message on a non-`reliable_set` channel.
    #[serde(default)]
    pub drop: f64,
    /// Probability of duplicating a message on a non-`reliable_set`
    /// channel. **Exceeds** the `CO_RFIFO` envelope — the spec permits
    /// loss but never duplication — so runs with `dup > 0` are expected
    /// to trip the `CO_RFIFO` checker (that is the point: it proves the
    /// oracle is watching).
    #[serde(default)]
    pub dup: f64,
    /// Extra arrival jitter: each message is delayed by a uniformly
    /// random amount in `[0, reorder_ms]` milliseconds on top of the
    /// latency model. Applies to *all* channels (delay is always legal)
    /// and reorders messages across channels, never within one.
    #[serde(default)]
    pub reorder_ms: u64,
    /// Probability that a non-`reliable_set` send starts a burst-loss
    /// window: the message and the next [`FaultPlan::burst_len`]` - 1`
    /// droppable messages (network-wide) are all lost.
    #[serde(default)]
    pub burst: f64,
    /// Messages lost per burst window; `0` (the serde default for an
    /// omitted field) means the standard window of
    /// [`FaultPlan::DEFAULT_BURST_LEN`].
    #[serde(default)]
    pub burst_len: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { drop: 0.0, dup: 0.0, reorder_ms: 0, burst: 0.0, burst_len: 0 }
    }
}

impl FaultPlan {
    /// Burst window used when [`FaultPlan::burst_len`] is left at `0`.
    pub const DEFAULT_BURST_LEN: u64 = 8;

    /// A plan that injects nothing (the identity network).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The burst window actually used (`burst_len`, or the standard
    /// window when left at `0`).
    pub fn effective_burst_len(&self) -> u64 {
        if self.burst_len == 0 { Self::DEFAULT_BURST_LEN } else { self.burst_len }
    }

    /// Whether this plan can inject any fault at all.
    pub fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.dup <= 0.0 && self.reorder_ms == 0 && self.burst <= 0.0
    }

    /// Whether this plan stays inside the `CO_RFIFO` spec envelope
    /// (loss and delay only — no duplication).
    pub fn within_spec_envelope(&self) -> bool {
        self.dup <= 0.0
    }
}

/// Counters of what the injector actually did (for reports and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the probabilistic or burst fault.
    pub injected_drops: u64,
    /// Extra copies enqueued by the duplication fault.
    pub injected_dups: u64,
    /// Messages delayed by reorder jitter.
    pub delayed: u64,
    /// Burst-loss windows opened.
    pub bursts: u64,
}

/// What should happen to one message on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Enqueue the message; `copies > 1` means duplicates were injected.
    Deliver {
        /// Number of copies to enqueue (1 = no duplication).
        copies: u64,
        /// Extra delay to add to this message's arrival time.
        extra_delay: SimTime,
    },
    /// Lose the message (spec's `lose` on a non-`reliable_set` channel).
    Drop,
}

/// Per-message fault decisions, driven by a [`FaultPlan`] and a forked
/// [`SimRng`]. Owned by [`crate::SimNet`] and consulted on every enqueue.
///
/// The draw order per message is fixed (burst, drop, dup, jitter) so a
/// plan change perturbs only the faults it configures.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    burst_left: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector executing `plan` with randomness from `rng`.
    pub fn new(plan: FaultPlan, rng: SimRng) -> Self {
        FaultInjector { plan, rng, burst_left: 0, stats: FaultStats::default() }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one message. `droppable` is whether the
    /// receiver is outside the sender's `reliable_set` (only such
    /// messages may be lost or duplicated; jitter applies to all).
    pub fn on_send(&mut self, droppable: bool) -> FaultAction {
        if droppable {
            if self.burst_left > 0 {
                self.burst_left -= 1;
                self.stats.injected_drops += 1;
                return FaultAction::Drop;
            }
            if self.plan.burst > 0.0 && self.rng.chance(self.plan.burst) {
                self.stats.bursts += 1;
                self.burst_left = self.plan.effective_burst_len().saturating_sub(1);
                self.stats.injected_drops += 1;
                return FaultAction::Drop;
            }
            if self.plan.drop > 0.0 && self.rng.chance(self.plan.drop) {
                self.stats.injected_drops += 1;
                return FaultAction::Drop;
            }
        }
        let copies = if droppable && self.plan.dup > 0.0 && self.rng.chance(self.plan.dup) {
            self.stats.injected_dups += 1;
            2
        } else {
            1
        };
        let extra_delay = if self.plan.reorder_ms > 0 {
            let us = self.rng.range(0, self.plan.reorder_ms * 1_000 + 1);
            if us > 0 {
                self.stats.delayed += 1;
            }
            SimTime::from_micros(us)
        } else {
            SimTime::ZERO
        };
        FaultAction::Deliver { copies, extra_delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(plan, SimRng::new(seed))
    }

    #[test]
    fn none_plan_is_identity() {
        let mut inj = injector(FaultPlan::none(), 1);
        assert!(FaultPlan::none().is_none());
        for droppable in [false, true] {
            assert_eq!(
                inj.on_send(droppable),
                FaultAction::Deliver { copies: 1, extra_delay: SimTime::ZERO }
            );
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn certain_drop_only_hits_droppable_messages() {
        let mut inj = injector(FaultPlan { drop: 1.0, ..FaultPlan::default() }, 2);
        assert_eq!(inj.on_send(true), FaultAction::Drop);
        // Reliable-channel messages are never lost, whatever the plan.
        assert!(matches!(inj.on_send(false), FaultAction::Deliver { copies: 1, .. }));
        assert_eq!(inj.stats().injected_drops, 1);
    }

    #[test]
    fn burst_loses_a_window_of_droppable_messages() {
        let plan = FaultPlan { burst: 1.0, burst_len: 3, ..FaultPlan::default() };
        let mut inj = injector(plan, 3);
        // First droppable send opens the window; the window spans 3 total.
        assert_eq!(inj.on_send(true), FaultAction::Drop);
        // Reliable messages pass through mid-burst without consuming it.
        assert!(matches!(inj.on_send(false), FaultAction::Deliver { .. }));
        assert_eq!(inj.on_send(true), FaultAction::Drop);
        assert_eq!(inj.on_send(true), FaultAction::Drop);
        assert_eq!(inj.stats().injected_drops, 3);
        assert!(inj.stats().bursts >= 1);
    }

    #[test]
    fn dup_adds_a_copy_on_droppable_channels_only() {
        let plan = FaultPlan { dup: 1.0, ..FaultPlan::default() };
        assert!(!plan.within_spec_envelope());
        let mut inj = injector(plan, 4);
        assert!(matches!(inj.on_send(true), FaultAction::Deliver { copies: 2, .. }));
        assert!(matches!(inj.on_send(false), FaultAction::Deliver { copies: 1, .. }));
        assert_eq!(inj.stats().injected_dups, 1);
    }

    #[test]
    fn jitter_applies_to_all_channels() {
        let plan = FaultPlan { reorder_ms: 50, ..FaultPlan::default() };
        let mut inj = injector(plan, 5);
        let mut saw_delay = false;
        for droppable in [true, false, true, false, true, false] {
            match inj.on_send(droppable) {
                FaultAction::Deliver { extra_delay, .. } => {
                    assert!(extra_delay <= SimTime::from_millis(50));
                    saw_delay |= extra_delay > SimTime::ZERO;
                }
                FaultAction::Drop => panic!("jitter-only plan must not drop"),
            }
        }
        assert!(saw_delay, "50ms jitter never produced a delay in 6 draws");
    }

    #[test]
    fn deterministic_per_seed() {
        let plan =
            FaultPlan { drop: 0.3, dup: 0.1, reorder_ms: 10, burst: 0.05, burst_len: 4 };
        let run = |seed| {
            let mut inj = injector(plan.clone(), seed);
            (0..200).map(|i| inj.on_send(i % 3 != 0)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn plan_serde_roundtrip_with_defaults() {
        let plan = FaultPlan { drop: 0.25, reorder_ms: 5, ..FaultPlan::default() };
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan parses");
        assert_eq!(plan, back);
        // Omitted fields take their documented defaults.
        let sparse: FaultPlan = serde_json::from_str("{\"drop\": 0.5}").expect("sparse parses");
        assert_eq!(sparse.effective_burst_len(), FaultPlan::DEFAULT_BURST_LEN);
        assert_eq!(sparse.dup, 0.0);
    }
}
