//! Traffic accounting for experiments.

use std::collections::BTreeMap;
use crate::Wire;

/// Counts and byte totals per message tag, plus loss accounting.
///
/// The experiment harness reads these to report the series the paper's
/// claims are judged on (messages per view change, sync-message bytes,
/// forwarded copies, …).
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// `(count, bytes)` per message tag, counted per (sender, receiver)
    /// pair — a multicast to `k` peers counts `k` times, matching the
    /// spec's per-channel queues.
    per_tag: BTreeMap<&'static str, (u64, u64)>,
    /// Messages dropped by the network (loss outside reliable sets).
    pub dropped: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Reconnect attempts after a failed connect (live transports with
    /// capped-backoff reconnection, e.g. [`crate::TcpTransport`]).
    pub retries: u64,
    /// Heartbeat frames sent to probe peer liveness (live transports).
    pub heartbeats: u64,
    /// Buffered socket flushes issued by per-connection writer threads
    /// ([`crate::TcpTransport`]'s coalesced write path).
    pub flushes: u64,
    /// Frames carried by those flushes; `frames_flushed / flushes` is the
    /// mean coalescing factor.
    pub frames_flushed: u64,
    /// Largest number of frames coalesced into one flush.
    pub coalesce_max: u64,
    /// High-water mark of any per-connection write-queue depth.
    pub queue_depth_max: u64,
    /// Enqueues that found a write queue at or above the backpressure
    /// watermark ([`crate::TcpConfig::queue_watermark`]).
    pub backpressure_hits: u64,
    /// Frames accepted into per-connection write queues (data and
    /// heartbeats). At quiescence the write path conserves frames:
    /// `frames_enqueued == frames_flushed + frames_dropped`.
    pub frames_enqueued: u64,
    /// Frames discarded without reaching the wire — queue remnants and
    /// in-flight coalesce buffers of torn-down connections.
    pub frames_dropped: u64,
    /// Inbound frames rejected because their length prefix exceeded
    /// [`crate::TcpConfig::max_frame_len`] (connection torn down).
    pub oversize_rejected: u64,
    /// Connections evicted for stalling mid-handshake or mid-frame
    /// longer than [`crate::TcpConfig::read_idle_timeout`].
    pub idle_evictions: u64,
    /// Connections currently owned by the transport's event loops.
    pub conns_open: u64,
    /// Event-loop threads multiplexing all of the transport's sockets —
    /// constant in the connection count.
    pub loop_threads: u64,
}

impl NetStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Rebuilds a `NetStats` view from an observability registry filled
    /// by [`crate::SimNet::send_rec`] / [`crate::SimNet::pop_ready_rec`].
    ///
    /// `dropped` only reflects send-time losses mirrored into the
    /// registry; losses from channel teardown (partitions, crashes) are
    /// accounted in the network's own [`crate::SimNet::stats`].
    pub fn from_registry(reg: &vsgm_obs::Registry) -> NetStats {
        NetStats {
            per_tag: reg.traffic_rows().map(|(tag, t)| (tag, (t.count, t.bytes))).collect(),
            dropped: reg.counter(vsgm_obs::names::NET_DROPPED),
            delivered: reg.counter(vsgm_obs::names::NET_DELIVERED),
            // Transport-level counters: the simulated network neither
            // reconnects nor heartbeats.
            retries: 0,
            heartbeats: 0,
            // Writer-path counters, exported by
            // `TcpTransport::export_obs` on live transports.
            flushes: reg.counter(vsgm_obs::names::NET_FLUSHES),
            frames_flushed: reg.counter(vsgm_obs::names::NET_FRAMES_FLUSHED),
            coalesce_max: reg.gauge(vsgm_obs::names::NET_COALESCE_MAX).unwrap_or(0),
            queue_depth_max: reg.gauge(vsgm_obs::names::NET_QUEUE_DEPTH_MAX).unwrap_or(0),
            backpressure_hits: reg.counter(vsgm_obs::names::NET_BACKPRESSURE),
            frames_enqueued: reg.counter(vsgm_obs::names::NET_FRAMES_ENQUEUED),
            frames_dropped: reg.counter(vsgm_obs::names::NET_FRAMES_DROPPED),
            oversize_rejected: reg.counter(vsgm_obs::names::NET_OVERSIZE_REJECTED),
            idle_evictions: reg.counter(vsgm_obs::names::NET_IDLE_EVICTIONS),
            conns_open: reg.gauge(vsgm_obs::names::NET_CONNS_OPEN).unwrap_or(0),
            loop_threads: reg.gauge(vsgm_obs::names::NET_LOOP_THREADS).unwrap_or(0),
        }
    }

    /// Records one point-to-point enqueue of `msg`.
    pub fn record_send<M: Wire>(&mut self, msg: &M) {
        let e = self.per_tag.entry(msg.tag()).or_insert((0, 0));
        e.0 += 1;
        e.1 += msg.wire_size() as u64;
    }

    /// Number of point-to-point sends of messages with `tag`.
    pub fn count(&self, tag: &str) -> u64 {
        self.per_tag.get(tag).map_or(0, |e| e.0)
    }

    /// Total bytes of messages with `tag`.
    pub fn bytes(&self, tag: &str) -> u64 {
        self.per_tag.get(tag).map_or(0, |e| e.1)
    }

    /// Total point-to-point sends across all tags.
    pub fn total_msgs(&self) -> u64 {
        self.per_tag.values().map(|e| e.0).sum()
    }

    /// Total bytes across all tags.
    pub fn total_bytes(&self) -> u64 {
        self.per_tag.values().map(|e| e.1).sum()
    }

    /// Iterates `(tag, count, bytes)` rows for reports.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.per_tag.iter().map(|(t, (c, b))| (*t, *c, *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{AppMsg, NetMsg};

    #[test]
    fn records_counts_and_bytes() {
        let mut s = NetStats::new();
        let m = NetMsg::App(AppMsg::from("abcd"));
        s.record_send(&m);
        s.record_send(&m);
        assert_eq!(s.count("app_msg"), 2);
        assert_eq!(s.bytes("app_msg"), 2 * m.wire_size() as u64);
        assert_eq!(s.total_msgs(), 2);
        assert_eq!(s.count("sync_msg"), 0);
    }

    #[test]
    fn rows_enumerate_tags() {
        let mut s = NetStats::new();
        s.record_send(&NetMsg::App(AppMsg::from("x")));
        let rows: Vec<_> = s.rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "app_msg");
    }

    #[test]
    fn per_tag_counts_and_bytes_are_independent() {
        let mut s = NetStats::new();
        let app = NetMsg::App(AppMsg::from("abcd"));
        let fwd = NetMsg::Fwd(vsgm_types::FwdPayload {
            origin: vsgm_types::ProcessId::new(1),
            view: vsgm_types::View::initial(vsgm_types::ProcessId::new(1)),
            index: 0,
            msg: AppMsg::from("zz"),
        });
        s.record_send(&app);
        s.record_send(&fwd);
        s.record_send(&fwd);
        assert_eq!(s.count("app_msg"), 1);
        assert_eq!(s.count("fwd_msg"), 2);
        assert_eq!(s.bytes("app_msg"), app.wire_size() as u64);
        assert_eq!(s.bytes("fwd_msg"), 2 * fwd.wire_size() as u64);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), (app.wire_size() + 2 * fwd.wire_size()) as u64);
    }

    #[test]
    fn dropped_and_delivered_are_separate_tallies() {
        let mut s = NetStats::new();
        s.record_send(&NetMsg::App(AppMsg::from("x")));
        s.dropped += 2;
        s.delivered += 1;
        assert_eq!(s.dropped, 2);
        assert_eq!(s.delivered, 1);
        // Drops are not sends: the per-tag tally is unaffected.
        assert_eq!(s.total_msgs(), 1);
    }

    #[test]
    fn view_over_registry_matches_direct_accounting() {
        use vsgm_obs::{Recorder, Registry};
        let mut reg = Registry::new();
        let msg = NetMsg::App(AppMsg::from("hello"));
        // Mirror what SimNet::send_rec / pop_ready_rec record.
        let rec: &mut dyn Recorder = &mut reg;
        rec.traffic(msg.tag(), msg.wire_size() as u64);
        rec.traffic(msg.tag(), msg.wire_size() as u64);
        rec.counter(vsgm_obs::names::NET_DROPPED, 1);
        rec.counter(vsgm_obs::names::NET_DELIVERED, 2);
        let s = NetStats::from_registry(&reg);
        assert_eq!(s.count("app_msg"), 2);
        assert_eq!(s.bytes("app_msg"), 2 * msg.wire_size() as u64);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivered, 2);
    }
}
