//! A reliable datagram service over UDP — the substrate of the paper's
//! reference \[36\] (Shnaiderman, *Implementation of Reliable Datagram
//! Service in the LAN environment*), which the authors' C++
//! implementation used as its `CO_RFIFO`.
//!
//! Per ordered peer pair the service provides gap-free FIFO delivery over
//! lossy datagrams via:
//!
//! * per-peer sequence numbers on data frames;
//! * cumulative acknowledgments (receiver acks `next_expected`);
//! * a retransmission loop resending unacknowledged frames;
//! * receiver-side reordering buffers releasing in-order prefixes.
//!
//! [`UdpTransport::set_loss`] injects random outbound datagram loss so
//! tests exercise the recovery machinery deterministically.

use crate::codec::{self, WireFormat};
use crate::tcp::Transport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vsgm_ioa::SimRng;
use vsgm_types::{NetMsg, ProcSet, ProcessId};

const FRAME_DATA: u8 = 0;
const FRAME_ACK: u8 = 1;
/// Stay inside a safe single-datagram size.
const MAX_PAYLOAD: usize = 60_000;
const RETRANSMIT_AFTER: Duration = Duration::from_millis(40);
const RETRANSMIT_TICK: Duration = Duration::from_millis(10);

#[derive(Default)]
struct PeerSend {
    next_seq: u64,
    /// seq → (encoded frame, last transmission instant).
    unacked: BTreeMap<u64, (Vec<u8>, Instant)>,
}

#[derive(Default)]
struct PeerRecv {
    next_expected: u64,
    buffer: BTreeMap<u64, NetMsg>,
}

struct Shared {
    me: ProcessId,
    socket: UdpSocket,
    // vsgm-lock-tier(1): the retransmit sweep holds this while taking
    // send_state, so the address book always comes first.
    addr_book: Mutex<HashMap<ProcessId, SocketAddr>>,
    // vsgm-lock-tier(2): taken under addr_book by the retransmit sweep,
    // bare everywhere else.
    send_state: Mutex<HashMap<ProcessId, PeerSend>>,
    // vsgm-lock-tier(3): leaf — reorder buffers, receive path only.
    recv_state: Mutex<HashMap<ProcessId, PeerRecv>>,
    // vsgm-lock-tier(4): leaf — loss-injection knob, read per datagram.
    loss: Mutex<Option<(f64, SimRng)>>,
    // vsgm-lock-tier(5): leaf — codec selection, read per encode.
    wire_format: Mutex<WireFormat>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Sends a raw datagram, applying injected loss (acks and data alike —
    /// real networks do not distinguish).
    fn transmit(&self, to: SocketAddr, frame: &[u8]) -> io::Result<()> {
        if let Some((p, rng)) = self.loss.lock().as_mut() {
            if rng.chance(*p) {
                return Ok(()); // dropped on the (virtual) wire
            }
        }
        self.socket.send_to(frame, to).map(|_| ())
    }

    fn addr_of(&self, peer: ProcessId) -> io::Result<SocketAddr> {
        self.addr_book.lock().get(&peer).copied().ok_or_else(|| {
            io::Error::new(ErrorKind::NotFound, format!("no address registered for {peer}"))
        })
    }
}

/// UDP implementation of [`Transport`] with reliability per \[36\].
///
/// ```no_run
/// use vsgm_net::{UdpTransport, Transport};
/// use vsgm_types::{ProcessId, NetMsg, AppMsg};
///
/// # fn main() -> std::io::Result<()> {
/// let a = UdpTransport::bind(ProcessId::new(1), "127.0.0.1:0")?;
/// let b = UdpTransport::bind(ProcessId::new(2), "127.0.0.1:0")?;
/// a.register_peer(ProcessId::new(2), b.local_addr());
/// b.register_peer(ProcessId::new(1), a.local_addr());
/// a.send(&[ProcessId::new(2)].into_iter().collect(), &NetMsg::App(AppMsg::from("hi")))?;
/// # Ok(())
/// # }
/// ```
pub struct UdpTransport {
    shared: Arc<Shared>,
    incoming: Receiver<(ProcessId, NetMsg)>,
    local_addr: SocketAddr,
}

impl UdpTransport {
    /// Binds a socket and starts the receive and retransmission loops.
    ///
    /// # Errors
    ///
    /// Returns any socket error.
    pub fn bind(me: ProcessId, addr: &str) -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind(addr)?;
        let local_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let shared = Arc::new(Shared {
            me,
            socket,
            addr_book: Mutex::new(HashMap::new()),
            send_state: Mutex::new(HashMap::new()),
            recv_state: Mutex::new(HashMap::new()),
            loss: Mutex::new(None),
            wire_format: Mutex::new(WireFormat::default()),
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = unbounded();
        spawn_recv_loop(Arc::clone(&shared), tx);
        spawn_retransmit_loop(Arc::clone(&shared));
        Ok(UdpTransport { shared, incoming: rx, local_addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Records where `peer` can be reached.
    pub fn register_peer(&self, peer: ProcessId, addr: SocketAddr) {
        self.shared.addr_book.lock().insert(peer, addr);
    }

    /// Injects random outbound datagram loss with probability `p`
    /// (deterministic per `seed`); pass `p = 0.0` to disable.
    pub fn set_loss(&self, p: f64, seed: u64) {
        *self.shared.loss.lock() =
            if p > 0.0 { Some((p, SimRng::new(seed))) } else { None };
    }

    /// Selects the encoding for outgoing message bodies. Receivers always
    /// accept both formats, so peers can switch independently.
    pub fn set_wire_format(&self, format: WireFormat) {
        *self.shared.wire_format.lock() = format;
    }

    /// Number of frames awaiting acknowledgment (for tests).
    pub fn unacked(&self) -> usize {
        self.shared.send_state.lock().values().map(|s| s.unacked.len()).sum()
    }
}

impl Transport for UdpTransport {
    fn me(&self) -> ProcessId {
        self.shared.me
    }

    fn send(&self, to: &ProcSet, msg: &NetMsg) -> io::Result<()> {
        let body = codec::encode_body(msg, *self.shared.wire_format.lock())?;
        if body.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds datagram limit {MAX_PAYLOAD}", body.len()),
            ));
        }
        for q in to {
            if *q == self.shared.me {
                continue;
            }
            let addr = self.shared.addr_of(*q)?;
            let mut state = self.shared.send_state.lock();
            let peer = state.entry(*q).or_default();
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let frame = encode_frame(FRAME_DATA, self.shared.me, seq, &body);
            peer.unacked.insert(seq, (frame.clone(), Instant::now()));
            drop(state);
            self.shared.transmit(addr, &frame)?;
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, NetMsg)> {
        self.incoming.recv_timeout(timeout).ok()
    }

    fn try_recv(&self) -> Option<(ProcessId, NetMsg)> {
        self.incoming.try_recv().ok()
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for UdpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpTransport")
            .field("me", &self.shared.me)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn encode_frame(kind: u8, from: ProcessId, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + body.len());
    out.push(kind);
    out.extend_from_slice(&from.raw().to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// A structurally valid datagram.
#[derive(Debug, PartialEq, Eq)]
enum Frame<'a> {
    /// Sequenced payload bytes (still to be JSON-decoded).
    Data { from: ProcessId, seq: u64, body: &'a [u8] },
    /// Cumulative acknowledgment: everything below `seq` was received.
    Ack { from: ProcessId, seq: u64 },
}

/// Pure, total parser for raw datagrams off the wire. Anything malformed
/// — truncated headers, unknown frame kinds, payload bytes on an ack —
/// is rejected with `None`; no input can panic or allocate. The receive
/// loop depends on this totality: a hostile or corrupted datagram must
/// cost nothing but its own bytes.
fn parse_frame(frame: &[u8]) -> Option<Frame<'_>> {
    let (kind, rest) = frame.split_first()?;
    let (from_bytes, rest) = rest.split_first_chunk::<8>()?;
    let (seq_bytes, body) = rest.split_first_chunk::<8>()?;
    let from = ProcessId::new(u64::from_le_bytes(*from_bytes));
    let seq = u64::from_le_bytes(*seq_bytes);
    match *kind {
        FRAME_DATA => Some(Frame::Data { from, seq, body }),
        FRAME_ACK if body.is_empty() => Some(Frame::Ack { from, seq }),
        _ => None,
    }
}

fn spawn_recv_loop(shared: Arc<Shared>, tx: Sender<(ProcessId, NetMsg)>) {
    std::thread::Builder::new()
        .name("vsgm-udp-recv".into())
        .spawn(move || {
            let mut buf = vec![0u8; MAX_PAYLOAD + 64];
            while !shared.shutdown.load(Ordering::SeqCst) {
                let (len, _src) = match shared.socket.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => return,
                };
                let Some(frame) = buf.get(..len).and_then(parse_frame) else {
                    continue; // malformed datagram: ignored, never fatal
                };
                match frame {
                    Frame::Ack { from, seq } => {
                        // Cumulative: everything below `seq` is received.
                        let mut state = shared.send_state.lock();
                        if let Some(peer) = state.get_mut(&from) {
                            peer.unacked.retain(|s, _| *s >= seq);
                        }
                    }
                    Frame::Data { from, seq, body } => {
                        // Accepts binary and JSON bodies alike (codec sniffs
                        // the leading byte); garbage is skipped, never fatal.
                        let Some(msg) = codec::decode_body(body) else { continue };
                        let ack_to = shared.addr_of(from).ok();
                        let mut state = shared.recv_state.lock();
                        let peer = state.entry(from).or_default();
                        if seq >= peer.next_expected {
                            peer.buffer.insert(seq, msg);
                            // Release the in-order prefix.
                            while let Some(m) = peer.buffer.remove(&peer.next_expected) {
                                peer.next_expected += 1;
                                if tx.send((from, m)).is_err() {
                                    return;
                                }
                            }
                        }
                        let ack_seq = peer.next_expected;
                        drop(state);
                        if let Some(addr) = ack_to {
                            let ack = encode_frame(FRAME_ACK, shared.me, ack_seq, &[]);
                            let _ = shared.transmit(addr, &ack);
                        }
                    }
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn udp recv thread");
}

fn spawn_retransmit_loop(shared: Arc<Shared>) {
    std::thread::Builder::new()
        .name("vsgm-udp-retx".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(RETRANSMIT_TICK);
                let now = Instant::now();
                // Collect due frames under the lock, transmit outside it.
                let mut due: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
                {
                    let addr_book = shared.addr_book.lock();
                    let mut state = shared.send_state.lock();
                    for (peer, ps) in state.iter_mut() {
                        let Some(addr) = addr_book.get(peer).copied() else { continue };
                        for (frame, last) in ps.unacked.values_mut() {
                            if now.duration_since(*last) >= RETRANSMIT_AFTER {
                                *last = now;
                                due.push((addr, frame.clone()));
                            }
                        }
                    }
                }
                for (addr, frame) in due {
                    let _ = shared.transmit(addr, &frame);
                }
            }
        })
        // vsgm-allow(P1): thread-spawn failure is OS resource exhaustion
        // at transport startup — not a protocol state, nothing to unwind to
        .expect("spawn udp retransmit thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn pair() -> (UdpTransport, UdpTransport) {
        let a = UdpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let b = UdpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        b.register_peer(p(1), a.local_addr());
        (a, b)
    }

    fn only(i: u64) -> ProcSet {
        [p(i)].into_iter().collect()
    }

    #[test]
    fn basic_send_receive() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("over udp"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("over udp")));
    }

    #[test]
    fn fifo_preserved_without_loss() {
        let (a, b) = pair();
        for k in 0..50 {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("m{k}").as_str()))).unwrap();
        }
        for k in 0..50 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).expect("arrives");
            assert_eq!(msg, NetMsg::App(AppMsg::from(format!("m{k}").as_str())));
        }
    }

    #[test]
    fn fifo_recovered_under_heavy_loss() {
        let (a, b) = pair();
        // 30% of a's outbound datagrams (data AND acks it sends back) drop.
        a.set_loss(0.3, 42);
        b.set_loss(0.3, 43);
        const COUNT: usize = 80;
        for k in 0..COUNT {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("m{k}").as_str()))).unwrap();
        }
        for k in 0..COUNT {
            let (_, msg) = b
                .recv_timeout(Duration::from_secs(20))
                .unwrap_or_else(|| panic!("message {k} never recovered"));
            assert_eq!(msg, NetMsg::App(AppMsg::from(format!("m{k}").as_str())), "at {k}");
        }
    }

    #[test]
    fn acks_clear_the_retransmit_queue() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.unacked() > 0 {
            assert!(Instant::now() < deadline, "ack never cleared the queue");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair();
        a.send(&only(2), &NetMsg::App(AppMsg::from("ping"))).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, NetMsg::App(AppMsg::from("ping")));
        b.send(&only(1), &NetMsg::App(AppMsg::from("pong"))).unwrap();
        let (from, msg) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(2));
        assert_eq!(msg, NetMsg::App(AppMsg::from("pong")));
    }

    #[test]
    fn oversized_payload_rejected() {
        let (a, _b) = pair();
        let big = NetMsg::App(AppMsg::from(vec![0u8; MAX_PAYLOAD + 1]));
        let err = a.send(&only(2), &big).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn unknown_peer_errors() {
        let a = UdpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let err = a.send(&only(9), &NetMsg::App(AppMsg::from("x"))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
    }

    #[test]
    fn frame_parser_is_total_over_a_malformed_corpus() {
        // A corpus of hostile datagrams: every prefix of a valid frame,
        // every single-byte corruption of its header, random byte soup,
        // and structurally wrong-but-plausible frames. The parser must
        // reject (or accept) each without panicking.
        let valid = encode_frame(FRAME_DATA, p(3), 9, b"payload");
        assert_eq!(
            parse_frame(&valid),
            Some(Frame::Data { from: p(3), seq: 9, body: b"payload" })
        );
        for cut in 0..valid.len() {
            let prefix = valid.get(..cut).unwrap();
            if cut < 17 {
                assert_eq!(parse_frame(prefix), None, "truncated header at {cut} accepted");
            } else {
                // Truncation inside the body still parses — the JSON
                // layer above rejects it.
                assert!(matches!(parse_frame(prefix), Some(Frame::Data { .. })));
            }
        }
        for i in 0..valid.len().min(17) {
            let mut mutated = valid.clone();
            if let Some(b) = mutated.get_mut(i) {
                *b ^= 0xFF;
            }
            let _ = parse_frame(&mutated); // any verdict, but no panic
        }
        let mut rng = SimRng::new(0xF0221);
        for _ in 0..2_000 {
            let len = rng.range(0, 64) as usize;
            let soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            let _ = parse_frame(&soup); // must not panic on any input
        }
        // Unknown frame kinds are rejected even with a well-formed header.
        let unknown = encode_frame(7, p(1), 1, b"");
        assert_eq!(parse_frame(&unknown), None);
        // An ack carrying payload bytes is malformed.
        let fat_ack = encode_frame(FRAME_ACK, p(1), 1, b"x");
        assert_eq!(parse_frame(&fat_ack), None);
        // A bare ack is fine.
        let ack = encode_frame(FRAME_ACK, p(2), 5, b"");
        assert_eq!(parse_frame(&ack), Some(Frame::Ack { from: p(2), seq: 5 }));
        // Binary-codec garbage: well-formed datagram headers whose bodies
        // claim to be BINARY_V1 but are truncations, corruptions, or soup.
        // The layer that decodes them must stay total too.
        let valid_body =
            codec::encode_body(&NetMsg::App(AppMsg::from("bin")), WireFormat::Binary).unwrap();
        for cut in 0..valid_body.len() {
            let truncated = valid_body.get(..cut).unwrap();
            let frame = encode_frame(FRAME_DATA, p(3), 1, truncated);
            if let Some(Frame::Data { body, .. }) = parse_frame(&frame) {
                assert_eq!(codec::decode_body(body), None, "truncated binary body at {cut}");
            }
        }
        for _ in 0..2_000 {
            let len = rng.range(1, 64) as usize;
            let mut soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            if let Some(first) = soup.first_mut() {
                *first = codec::BINARY_V1; // force the binary-decode path
            }
            let frame = encode_frame(FRAME_DATA, p(3), 1, &soup);
            if let Some(Frame::Data { body, .. }) = parse_frame(&frame) {
                let _ = codec::decode_body(body); // must not panic
            }
        }
    }

    #[test]
    fn garbage_datagrams_do_not_disrupt_delivery() {
        // Blast malformed datagrams at b's socket, then check a real
        // message still goes through the same socket unharmed.
        let (a, b) = pair();
        let noise = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut rng = SimRng::new(0xBAD);
        for _ in 0..200 {
            let len = rng.range(0, 48) as usize;
            let soup: Vec<u8> = (0..len).map(|_| rng.range(0, 256) as u8).collect();
            noise.send_to(&soup, b.local_addr()).unwrap();
        }
        a.send(&only(2), &NetMsg::App(AppMsg::from("through the noise"))).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("survives garbage");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("through the noise")));
    }

    #[test]
    fn duplicate_datagrams_not_redelivered() {
        // Loss on b's acks forces a to retransmit data b already has; b
        // must deduplicate.
        let (a, b) = pair();
        b.set_loss(0.8, 7); // most acks drop → many retransmissions
        const COUNT: usize = 10;
        for k in 0..COUNT {
            a.send(&only(2), &NetMsg::App(AppMsg::from(format!("d{k}").as_str()))).unwrap();
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < COUNT && Instant::now() < deadline {
            if let Some((_, msg)) = b.recv_timeout(Duration::from_millis(50)) {
                got.push(msg);
            }
        }
        assert_eq!(got.len(), COUNT);
        // Nothing extra shows up afterwards.
        b.set_loss(0.0, 0);
        std::thread::sleep(Duration::from_millis(200));
        assert!(b.try_recv().is_none(), "duplicate delivered");
    }
}
