//! Wire robustness: malformed, truncated, or hostile datagrams and
//! frames must never crash a transport or corrupt its streams.

use std::net::UdpSocket;
use std::time::Duration;
use vsgm_net::{Transport, UdpTransport};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn only(i: u64) -> ProcSet {
    [p(i)].into_iter().collect()
}

#[test]
fn udp_ignores_garbage_datagrams() {
    let a = UdpTransport::bind(p(1), "127.0.0.1:0").unwrap();
    let b = UdpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());

    // Blast b with junk from a raw socket: empty, short, bad kind, bad
    // JSON body, huge sequence numbers.
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = b.local_addr();
    let junk: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0; 16],
        vec![9; 40],                    // unknown frame kind
        {
            let mut f = vec![0u8];      // data frame kind
            f.extend_from_slice(&1u64.to_le_bytes());
            f.extend_from_slice(&u64::MAX.to_le_bytes());
            f.extend_from_slice(b"{not json");
            f
        },
    ];
    for frame in &junk {
        attacker.send_to(frame, target).unwrap();
    }
    // Real traffic still flows, in order.
    for k in 0..10 {
        a.send(&only(2), &NetMsg::App(AppMsg::from(format!("ok{k}").as_str()))).unwrap();
    }
    for k in 0..10 {
        let (from, msg) = b.recv_timeout(Duration::from_secs(10)).expect("arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from(format!("ok{k}").as_str())));
    }
    // No junk surfaced as messages.
    assert!(b.try_recv().is_none());
}

#[test]
fn udp_forged_sender_id_does_not_corrupt_real_stream() {
    let a = UdpTransport::bind(p(1), "127.0.0.1:0").unwrap();
    let b = UdpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());

    // Attacker forges frames claiming to be from p1 with clashing seq 0.
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    let body = serde_json::to_vec(&NetMsg::App(AppMsg::from("forged"))).unwrap();
    let mut frame = vec![0u8]; // data
    frame.extend_from_slice(&1u64.to_le_bytes()); // "from p1"
    frame.extend_from_slice(&0u64.to_le_bytes()); // seq 0
    frame.extend_from_slice(&body);
    attacker.send_to(&frame, b.local_addr()).unwrap();

    // The forged frame may be accepted (no authentication — same trust
    // model as the paper), but the legitimate stream must still arrive
    // completely and in order AFTER it, since the forger consumed seq 0.
    let (_, first) = b.recv_timeout(Duration::from_secs(5)).expect("first frame");
    assert_eq!(first, NetMsg::App(AppMsg::from("forged")));
    a.send(&only(2), &NetMsg::App(AppMsg::from("real-0"))).unwrap();
    // a's seq 0 is treated as a duplicate of the forged frame; its data
    // would be suppressed — which is exactly why deployments layer
    // authentication below CO_RFIFO. Document the failure mode by
    // asserting the *transport* stays alive and delivers subsequent
    // traffic once sequence numbers advance past the forgery.
    for k in 1..5 {
        a.send(&only(2), &NetMsg::App(AppMsg::from(format!("real-{k}").as_str()))).unwrap();
    }
    let mut got = Vec::new();
    while let Some((_, msg)) = b.recv_timeout(Duration::from_secs(2)) {
        got.push(msg);
        if got.len() >= 4 {
            break;
        }
    }
    assert!(
        got.contains(&NetMsg::App(AppMsg::from("real-1"))),
        "transport wedged after forgery: {got:?}"
    );
}

#[test]
fn tcp_reader_survives_peer_disconnect() {
    use vsgm_net::TcpTransport;
    let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
    let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());
    a.send(&only(2), &NetMsg::App(AppMsg::from("x"))).unwrap();
    b.recv_timeout(Duration::from_secs(5)).unwrap();
    // Drop a: its connections close; b keeps running.
    drop(a);
    std::thread::sleep(Duration::from_millis(50));
    assert!(b.try_recv().is_none());
    // b can still talk to a NEW peer.
    let c = TcpTransport::bind(p(3), "127.0.0.1:0").unwrap();
    c.register_peer(p(2), b.local_addr());
    c.send(&only(2), &NetMsg::App(AppMsg::from("fresh"))).unwrap();
    let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("new peer works");
    assert_eq!(from, p(3));
    assert_eq!(msg, NetMsg::App(AppMsg::from("fresh")));
}
