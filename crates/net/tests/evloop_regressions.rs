//! Pinned regressions for the event-loop transport rewrite.
//!
//! Three bugs of the old thread-per-connection transport, each pinned
//! at the transport level (the queue-level heartbeat pin lives in
//! `writer.rs`):
//!
//! 1. the frame reader trusted the peer's length prefix — one malformed
//!    frame could demand a multi-gigabyte allocation; now capped by
//!    `TcpConfig::max_frame_len` with connection teardown;
//! 2. a half-open peer stalling mid-handshake pinned a blocked reader
//!    thread and its socket forever; now evicted after
//!    `TcpConfig::read_idle_timeout` and counted in `NetStats`;
//! 3. heartbeats shared the bounded writer queue with data, so a
//!    saturated queue silently skipped liveness probes and triggered
//!    false suspicion of a healthy-but-busy peer; now probes claim a
//!    reserved slot and drain ahead of queued data.
//!
//! Plus the connection-churn soak: repeated connect/disconnect storms
//! across 64 peers must leak no file descriptors or threads, conserve
//! frames (`enqueued == flushed + dropped`), and shut the loop threads
//! down cleanly.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use vsgm_net::codec::{encode_frame, WireFormat};
use vsgm_net::{TcpConfig, TcpTransport, Transport};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn only(to: u64) -> ProcSet {
    [p(to)].into_iter().collect()
}

fn wait_until(what: &str, deadline: Duration, mut ok: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !ok() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Bug 1 (pinned): a length prefix over `max_frame_len` must tear the
/// connection down — never allocate. Frames before the poisoned prefix
/// still deliver, and the reject is counted in `NetStats` and the
/// observability registry.
#[test]
fn oversize_length_prefix_tears_the_connection_down() {
    let srv = TcpTransport::bind_with(
        p(1),
        "127.0.0.1:0",
        TcpConfig { max_frame_len: 1024, ..TcpConfig::default() },
    )
    .unwrap();
    let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
    raw.write_all(&2u64.to_le_bytes()).unwrap(); // handshake: we are p2
    let good = encode_frame(&NetMsg::App(AppMsg::from("ok")), WireFormat::Binary).unwrap();
    raw.write_all(&good).unwrap();
    // A frame claiming 1 MiB against the 1 KiB cap: teardown, no read.
    raw.write_all(&(1u32 << 20).to_le_bytes()).unwrap();
    let (from, msg) = srv.recv_timeout(Duration::from_secs(5)).expect("pre-poison frame");
    assert_eq!((from, msg), (p(2), NetMsg::App(AppMsg::from("ok"))));
    wait_until("oversize reject", Duration::from_secs(5), || srv.stats().oversize_rejected == 1);
    // The transport hung up on us (read sees EOF/reset, not a hang).
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut probe = [0u8; 1];
    assert!(
        matches!(raw.read(&mut probe), Ok(0) | Err(_)),
        "poisoned connection must be closed by the transport"
    );
    wait_until("conn teardown", Duration::from_secs(5), || srv.stats().conns_open == 0);
    // The counter survives the obs export/import roundtrip.
    let mut reg = vsgm_obs::Registry::new();
    srv.export_obs(&mut reg);
    assert_eq!(vsgm_net::NetStats::from_registry(&reg).oversize_rejected, 1);
}

/// Bug 2 (pinned): a peer that sends 3 of the 8 handshake bytes and
/// stalls used to leak a blocked reader thread plus its socket until
/// process exit. The event loop must evict it after `read_idle_timeout`
/// and count the eviction in `NetStats`.
#[test]
fn half_open_peer_stalled_mid_handshake_is_evicted() {
    let srv = TcpTransport::bind_with(
        p(1),
        "127.0.0.1:0",
        TcpConfig { read_idle_timeout: Duration::from_millis(100), ..TcpConfig::default() },
    )
    .unwrap();
    let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
    raw.write_all(&7u64.to_le_bytes()[..3]).unwrap(); // 3 of 8 header bytes, then silence
    wait_until("conn adopted", Duration::from_secs(5), || srv.stats().conns_open == 1);
    wait_until("idle eviction", Duration::from_secs(5), || {
        let s = srv.stats();
        s.idle_evictions == 1 && s.conns_open == 0
    });
    // The socket really was reclaimed, not just counted.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut probe = [0u8; 1];
    assert!(
        matches!(raw.read(&mut probe), Ok(0) | Err(_)),
        "evicted connection must be closed by the transport"
    );
    // Idle *between* frames is legal: a completed handshake with no
    // pending partial frame is never evicted.
    let mut calm = TcpStream::connect(srv.local_addr()).unwrap();
    calm.write_all(&8u64.to_le_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(srv.stats().idle_evictions, 1, "quiescent peer wrongly evicted");
    assert_eq!(srv.stats().conns_open, 1);
    drop(calm);
}

/// Bug 3 (pinned): with the write queue saturated against a stalled
/// receiver, heartbeat probes must still be accepted (reserved slot)
/// and must appear on the wire ahead of the queued data backlog. The
/// old transport enqueued probes like data with a zero timeout: a full
/// queue dropped every probe and a healthy-but-busy peer was falsely
/// suspected.
#[test]
fn saturated_queue_still_sends_heartbeats_ahead_of_data() {
    const FRAMES: usize = 400;
    let payload = AppMsg::from(vec![0x5a; 64 << 10]);
    let sender = TcpTransport::bind_with(
        p(1),
        "127.0.0.1:0",
        TcpConfig {
            writer_queue: 4,
            queue_watermark: 2,
            enqueue_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(20),
            ..TcpConfig::default()
        },
    )
    .unwrap();
    let peer = TcpListener::bind("127.0.0.1:0").unwrap();
    sender.register_peer(p(2), peer.local_addr().unwrap());
    {
        let to = only(2);
        let msg = NetMsg::App(payload);
        let sender = &sender;
        // The scope joins the pump thread on exit (propagating its
        // panics), so every `send` is known to have succeeded.
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..FRAMES {
                    sender.send(&to, &msg).expect("send during saturation");
                }
            });
            // The receiver: accept, read the handshake, then stall until
            // the sender's queue is saturated.
            let (mut conn, _) = peer.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut hs = [0u8; 8];
            conn.read_exact(&mut hs).unwrap();
            assert_eq!(u64::from_le_bytes(hs), 1);
            wait_until("queue saturation", Duration::from_secs(10), || {
                sender.stats().backpressure_hits > 0
            });
            // While saturated, probes keep flowing into the reserved
            // slot — this is the regression: pre-fix, `heartbeats`
            // stayed frozen here and the peer was falsely suspected.
            let hb0 = sender.stats().heartbeats;
            std::thread::sleep(Duration::from_millis(150));
            let hb1 = sender.stats().heartbeats;
            assert!(
                hb1 > hb0,
                "saturated queue must still accept heartbeat probes ({hb0} -> {hb1})"
            );
            // Drain the stream and record frame sizes in arrival order.
            let mut sizes: Vec<usize> = Vec::new();
            let mut data_seen = 0usize;
            while data_seen < FRAMES {
                let mut len4 = [0u8; 4];
                conn.read_exact(&mut len4).unwrap();
                let len = u32::from_le_bytes(len4) as usize;
                if len > 0 {
                    let mut body = vec![0u8; len];
                    conn.read_exact(&mut body).unwrap();
                    data_seen += 1;
                }
                sizes.push(len);
            }
            let first_hb = sizes.iter().position(|&l| l == 0);
            let last_data = sizes.iter().rposition(|&l| l > 0).unwrap();
            let hb = first_hb.expect("at least one heartbeat must reach the wire");
            assert!(
                hb < last_data,
                "heartbeat must be emitted ahead of the queued data backlog \
                 (first probe at {hb}, last data at {last_data})"
            );
        });
    }
    // Quiescent conservation: everything enqueued reached the wire.
    wait_until("conservation", Duration::from_secs(5), || {
        let s = sender.stats();
        s.frames_enqueued == s.frames_flushed + s.frames_dropped
    });
}

fn count_dir(path: &str) -> usize {
    std::fs::read_dir(path).map(|d| d.count()).unwrap_or(0)
}

/// Connection-churn soak: 64 peers across four connect/disconnect
/// storms. Asserts no fd or thread leak (`/proc/self/fd`,
/// `/proc/self/task`), per-client frame conservation at quiescence, and
/// that every client's loop/accept/heartbeat threads shut down cleanly.
#[test]
fn connection_churn_soaks_without_leaking_fds_or_threads() {
    let client_cfg = TcpConfig {
        loop_threads: 1,
        heartbeat_interval: Duration::from_millis(25),
        ..TcpConfig::default()
    };
    let srv = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
    let run_storm = |round: u64| {
        let clients: Vec<TcpTransport> = (0..16)
            .map(|i| {
                let c = TcpTransport::bind_with(
                    p(100 + round * 16 + i),
                    "127.0.0.1:0",
                    client_cfg.clone(),
                )
                .unwrap();
                c.register_peer(p(1), srv.local_addr());
                c
            })
            .collect();
        for c in &clients {
            for k in 0..5 {
                c.send(&only(1), &NetMsg::App(AppMsg::from(format!("r{round}k{k}").as_str())))
                    .unwrap();
            }
        }
        for _ in 0..(16 * 5) {
            srv.recv_timeout(Duration::from_secs(10)).expect("storm frame arrives");
        }
        // Each client quiesces with its books balanced before teardown.
        for c in &clients {
            wait_until("client conservation", Duration::from_secs(5), || {
                let s = c.stats();
                s.frames_enqueued == s.frames_flushed + s.frames_dropped
            });
        }
        drop(clients);
    };
    // Warm-up storm: let lazy allocations (channel buffers, pools)
    // settle before taking the leak baseline.
    run_storm(0);
    let settle = |what: &str, fd0: usize, th0: usize| {
        wait_until(what, Duration::from_secs(20), || {
            count_dir("/proc/self/fd") <= fd0 && count_dir("/proc/self/task") <= th0
        });
    };
    settle("warm-up teardown", count_dir("/proc/self/fd") + 2, count_dir("/proc/self/task"));
    let fd0 = count_dir("/proc/self/fd");
    let th0 = count_dir("/proc/self/task");
    for round in 1..4 {
        run_storm(round);
    }
    // Everything the storms created must be gone again: sockets closed
    // (fds), and every client's loop/accept/heartbeat thread exited.
    settle("post-storm resource return", fd0 + 2, th0);
    wait_until("server conns retired", Duration::from_secs(10), || srv.stats().conns_open == 0);
    let s = srv.stats();
    assert_eq!(s.loop_threads, TcpConfig::default().loop_threads as u64);
    assert_eq!(s.oversize_rejected, 0, "{s:?}");
    assert_eq!(s.idle_evictions, 0, "{s:?}");
    assert_eq!(s.frames_enqueued, s.frames_flushed + s.frames_dropped, "{s:?}");
}
