//! Concurrency and stress tests for the real transports (TCP and the
//! UDP reliable-datagram service).

use std::sync::Arc;
use std::time::{Duration, Instant};
use vsgm_net::{TcpTransport, Transport, UdpTransport};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn only(i: u64) -> ProcSet {
    [p(i)].into_iter().collect()
}

fn payload(tag: u64, k: usize) -> NetMsg {
    NetMsg::App(AppMsg::from(format!("{tag}:{k}").as_str()))
}

#[test]
fn tcp_concurrent_senders_share_one_transport() {
    // Transport::send takes &self: multiple threads may send through the
    // same node concurrently. Each thread's stream must stay FIFO.
    let a = Arc::new(TcpTransport::bind(p(1), "127.0.0.1:0").unwrap());
    let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());

    const THREADS: u64 = 4;
    const PER_THREAD: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            for k in 0..PER_THREAD {
                a.send(&only(2), &payload(t, k)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Collect everything; per-tag sequences must be in order.
    let mut seqs: std::collections::HashMap<u64, Vec<usize>> = Default::default();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut got = 0;
    while got < THREADS as usize * PER_THREAD {
        assert!(Instant::now() < deadline, "only {got} messages arrived");
        if let Some((_, NetMsg::App(m))) = b.recv_timeout(Duration::from_millis(100)) {
            let text = String::from_utf8_lossy(m.as_bytes()).into_owned();
            let (tag, k) = text.split_once(':').unwrap();
            seqs.entry(tag.parse().unwrap()).or_default().push(k.parse().unwrap());
            got += 1;
        }
    }
    for (tag, seq) in seqs {
        let expected: Vec<usize> = (0..PER_THREAD).collect();
        assert_eq!(seq, expected, "thread {tag} stream reordered");
    }
}

#[test]
fn tcp_many_peers_fan_out() {
    const N: u64 = 6;
    let transports: Vec<TcpTransport> =
        (1..=N).map(|i| TcpTransport::bind(p(i), "127.0.0.1:0").unwrap()).collect();
    let addrs: Vec<_> = transports.iter().map(|t| t.local_addr()).collect();
    for t in &transports {
        for i in 1..=N {
            if p(i) != t.me() {
                t.register_peer(p(i), addrs[(i - 1) as usize]);
            }
        }
    }
    let everyone: ProcSet = (1..=N).map(p).collect();
    transports[0].send(&everyone, &payload(0, 0)).unwrap();
    for t in &transports[1..] {
        let (from, msg) = t.recv_timeout(Duration::from_secs(10)).expect("fan-out arrives");
        assert_eq!(from, p(1));
        assert_eq!(msg, payload(0, 0));
    }
}

#[test]
fn udp_concurrent_senders_with_loss() {
    let a = Arc::new(UdpTransport::bind(p(1), "127.0.0.1:0").unwrap());
    let b = UdpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());
    a.set_loss(0.1, 99);

    const THREADS: u64 = 3;
    const PER_THREAD: usize = 25;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            for k in 0..PER_THREAD {
                a.send(&only(2), &payload(t, k)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut seqs: std::collections::HashMap<u64, Vec<usize>> = Default::default();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = 0;
    while got < THREADS as usize * PER_THREAD {
        assert!(Instant::now() < deadline, "only {got} messages recovered");
        if let Some((_, NetMsg::App(m))) = b.recv_timeout(Duration::from_millis(100)) {
            let text = String::from_utf8_lossy(m.as_bytes()).into_owned();
            let (tag, k) = text.split_once(':').unwrap();
            seqs.entry(tag.parse().unwrap()).or_default().push(k.parse().unwrap());
            got += 1;
        }
    }
    // The single UDP channel serializes everything into ONE FIFO; each
    // thread's relative order must still hold (subsequence property).
    for (tag, seq) in seqs {
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "thread {tag} stream reordered: {seq:?}"
        );
    }
}

#[test]
fn udp_burst_larger_than_window_survives() {
    let a = UdpTransport::bind(p(1), "127.0.0.1:0").unwrap();
    let b = UdpTransport::bind(p(2), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());
    const COUNT: usize = 500;
    for k in 0..COUNT {
        a.send(&only(2), &payload(0, k)).unwrap();
    }
    for k in 0..COUNT {
        let (_, msg) = b
            .recv_timeout(Duration::from_secs(20))
            .unwrap_or_else(|| panic!("message {k} missing"));
        assert_eq!(msg, payload(0, k));
    }
}
