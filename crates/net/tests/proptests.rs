//! Property-based tests of the simulated network against the `CO_RFIFO`
//! channel semantics, under random operation sequences, plus wire-codec
//! round-trip properties over every [`NetMsg`] variant.

use proptest::prelude::*;
use vsgm_ioa::{SimRng, SimTime};
use vsgm_net::{codec, LatencyModel, SimNet, WireFormat};
use vsgm_types::{
    AppMsg, BaselineMsg, Cut, FwdPayload, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload,
    View, ViewId,
};

const N: u64 = 4;

#[derive(Debug, Clone)]
enum NetOp {
    /// `p_{1+(a%N)}` multicasts a fresh message to everyone else.
    Send(u64),
    /// Set sender's reliable set from a bitmask.
    Reliable(u64, u8),
    /// Partition at a split point.
    Partition(u64),
    Heal,
    Crash(u64),
    Recover(u64),
    /// Deliver the next ready batch.
    Deliver,
}

fn op_strategy() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        4 => any::<u64>().prop_map(NetOp::Send),
        2 => (any::<u64>(), any::<u8>()).prop_map(|(a, m)| NetOp::Reliable(a, m)),
        1 => (1..N).prop_map(NetOp::Partition),
        1 => Just(NetOp::Heal),
        1 => any::<u64>().prop_map(NetOp::Crash),
        1 => any::<u64>().prop_map(NetOp::Recover),
        4 => Just(NetOp::Deliver),
    ]
}

fn pid(a: u64) -> ProcessId {
    ProcessId::new(1 + (a % N))
}

fn all_procs() -> Vec<ProcessId> {
    (1..=N).map(ProcessId::new).collect()
}

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    any::<u64>().prop_map(ProcessId::new)
}

fn arb_view() -> impl Strategy<Value = View> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::btree_map(any::<u64>(), any::<u64>(), 1..6),
    )
        .prop_map(|(epoch, proposer, ids)| {
            let pairs: Vec<(ProcessId, StartChangeId)> = ids
                .into_iter()
                .map(|(p, c)| (ProcessId::new(p), StartChangeId::new(c)))
                .collect();
            let members: Vec<ProcessId> = pairs.iter().map(|(p, _)| *p).collect();
            View::new(ViewId::new(epoch, proposer), members, pairs)
        })
}

fn arb_cut() -> impl Strategy<Value = Cut> {
    prop::collection::btree_map(any::<u64>(), any::<u64>(), 0..6).prop_map(|m| {
        let mut cut = Cut::new();
        for (p, i) in m {
            cut.set(ProcessId::new(p), i);
        }
        cut
    })
}

fn arb_app() -> impl Strategy<Value = AppMsg> {
    prop::collection::vec(any::<u8>(), 0..128).prop_map(AppMsg::from)
}

fn arb_sync_payload() -> impl Strategy<Value = SyncPayload> {
    (any::<u64>(), any::<bool>(), arb_view(), arb_cut()).prop_map(|(cid, slim, view, cut)| {
        SyncPayload {
            cid: StartChangeId::new(cid),
            view: if slim { None } else { Some(view) },
            cut,
        }
    })
}

fn arb_net_msg() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        arb_view().prop_map(NetMsg::ViewMsg),
        arb_app().prop_map(NetMsg::App),
        (arb_pid(), arb_view(), any::<u64>(), arb_app())
            .prop_map(|(origin, view, index, msg)| NetMsg::Fwd(FwdPayload {
                origin,
                view,
                index,
                msg
            })),
        arb_sync_payload().prop_map(NetMsg::Sync),
        prop::collection::vec((arb_pid(), arb_sync_payload()), 0..4).prop_map(NetMsg::SyncAgg),
        (prop::collection::btree_set(arb_pid(), 0..6), any::<u64>())
            .prop_map(|(participants, seq)| NetMsg::Baseline(BaselineMsg::Propose {
                participants,
                seq
            })),
        (
            prop::collection::btree_set(arb_pid(), 0..6),
            (any::<u64>(), any::<u64>()),
            arb_view(),
            arb_cut()
        )
            .prop_map(|(participants, tag, view, cut)| NetMsg::Baseline(BaselineMsg::Sync {
                participants,
                tag,
                view,
                cut
            })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Every `NetMsg` round-trips through the binary codec unchanged, and
    /// through a JSON body decoded by the same sniffing decoder.
    #[test]
    fn codec_roundtrips_every_variant(msg in arb_net_msg()) {
        let bin = codec::encode_body(&msg, WireFormat::Binary).expect("binary encode");
        let from_bin = codec::decode_body(&bin);
        prop_assert_eq!(from_bin.as_ref(), Some(&msg));
        let json = codec::encode_body(&msg, WireFormat::Json).expect("json encode");
        let from_json = codec::decode_body(&json);
        prop_assert_eq!(from_json.as_ref(), Some(&msg));
        // Framing: the frame is exactly a little-endian length + body.
        let frame = codec::encode_frame(&msg, WireFormat::Binary).expect("frame");
        let (len, body) = frame.split_at(4);
        prop_assert_eq!(u32::from_le_bytes(len.try_into().unwrap()) as usize, body.len());
        prop_assert_eq!(body, &bin[..]);
    }

    /// Binary encoding is deterministic: re-encoding a decoded message
    /// reproduces the identical byte string (wire-format stability).
    #[test]
    fn codec_binary_encoding_is_deterministic(msg in arb_net_msg()) {
        let a = codec::encode_body(&msg, WireFormat::Binary).expect("encode");
        let decoded = codec::decode_body(&a).expect("decode");
        let b = codec::encode_body(&decoded, WireFormat::Binary).expect("re-encode");
        prop_assert_eq!(a, b);
    }

    /// The decoder is total: no byte string makes it panic, and appending
    /// trailing garbage to a valid body makes it reject.
    #[test]
    fn codec_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode_body(&bytes); // any verdict, never a panic
    }

    /// Every `(GroupId, NetMsg)` pair round-trips through the v2 group
    /// envelope in both wire formats, and the envelope header is exactly
    /// `0x02 gid:u64le` in front of the single-group body.
    #[test]
    fn codec_group_envelope_roundtrips(gid in any::<u64>(), msg in arb_net_msg()) {
        let gid = vsgm_types::GroupId::new(gid);
        let bin = codec::encode_body_grouped(gid, &msg, WireFormat::Binary).expect("encode");
        prop_assert_eq!(
            codec::decode_body_routed(&bin, false),
            Some((Some(gid), msg.clone()))
        );
        let (split_gid, inner) = codec::split_group_envelope(&bin).expect("split");
        prop_assert_eq!(split_gid, gid);
        prop_assert_eq!(inner, &codec::encode_body(&msg, WireFormat::Binary).expect("inner")[..]);
        let json = codec::encode_body_grouped(gid, &msg, WireFormat::Json).expect("encode json");
        prop_assert_eq!(
            codec::decode_body_routed(&json, true),
            Some((Some(gid), msg.clone()))
        );
        prop_assert_eq!(codec::decode_body_routed(&json, false), None);
        // Legacy interop: the same message as a bare v1 body routes with
        // no group id.
        let bare = codec::encode_body(&msg, WireFormat::Binary).expect("bare");
        prop_assert_eq!(codec::decode_body_routed(&bare, false), Some((None, msg)));
    }

    /// The routed decoder is total over arbitrary bytes, including bytes
    /// that claim the envelope version.
    #[test]
    fn codec_routed_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode_body_routed(&bytes, true);
        let _ = codec::decode_body_routed(&bytes, false);
        let mut claimed = bytes;
        claimed.insert(0, codec::GROUP_ENVELOPE_V2);
        let _ = codec::decode_body_routed(&claimed, true);
    }

    #[test]
    fn codec_rejects_trailing_garbage(msg in arb_net_msg(), tail in 1usize..8) {
        let mut bin = codec::encode_body(&msg, WireFormat::Binary).expect("encode");
        bin.extend(std::iter::repeat_n(0xA5u8, tail));
        prop_assert_eq!(codec::decode_body(&bin), None);
    }

    /// Per-channel FIFO: for each ordered pair, the delivered sequence is
    /// a subsequence of the sent sequence, in order, without duplicates.
    #[test]
    fn deliveries_are_ordered_subsequences(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut sent: std::collections::HashMap<(ProcessId, ProcessId), Vec<u64>> =
            Default::default();
        let mut delivered: std::collections::HashMap<(ProcessId, ProcessId), Vec<u64>> =
            Default::default();
        for op in &ops {
            match op {
                NetOp::Send(a) => {
                    let from = pid(*a);
                    if net.is_crashed(from) { continue; }
                    seq += 1;
                    let to: ProcSet = all_procs().into_iter().filter(|q| *q != from).collect();
                    let msg = NetMsg::App(AppMsg::from(seq.to_string().as_str()));
                    // Track only destinations that could actually accept it.
                    for q in &to {
                        let kept = net.reliable_set(from).contains(q) || net.connected(from, *q);
                        if kept {
                            sent.entry((from, *q)).or_default().push(seq);
                        }
                    }
                    net.send(now, from, &to, &msg);
                }
                NetOp::Reliable(a, mask) => {
                    let p = pid(*a);
                    let set: ProcSet = (0..N)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| ProcessId::new(i + 1))
                        .chain([p])
                        .collect();
                    net.set_reliable(p, set);
                }
                NetOp::Partition(split) => {
                    let a: Vec<ProcessId> = (1..=*split).map(ProcessId::new).collect();
                    let b: Vec<ProcessId> = (*split + 1..=N).map(ProcessId::new).collect();
                    net.partition(&[a, b]);
                }
                NetOp::Heal => net.heal(now),
                NetOp::Crash(a) => net.crash(pid(*a)),
                NetOp::Recover(a) => net.recover(pid(*a)),
                NetOp::Deliver => {
                    if let Some(t) = net.next_arrival() {
                        now = t;
                        for (from, to, msg) in net.pop_ready(t) {
                            if let NetMsg::App(m) = msg {
                                let v: u64 =
                                    String::from_utf8_lossy(m.as_bytes()).parse().unwrap();
                                delivered.entry((from, to)).or_default().push(v);
                            }
                        }
                    }
                }
            }
        }
        // Drain the rest.
        while let Some(t) = net.next_arrival() {
            for (from, to, msg) in net.pop_ready(t) {
                if let NetMsg::App(m) = msg {
                    let v: u64 = String::from_utf8_lossy(m.as_bytes()).parse().unwrap();
                    delivered.entry((from, to)).or_default().push(v);
                }
            }
        }
        for (chan, got) in &delivered {
            let sent_list = sent.get(chan).cloned().unwrap_or_default();
            // `got` must be a subsequence of `sent_list` (strictly
            // increasing positions), hence ordered and duplicate-free.
            let mut it = sent_list.iter();
            for g in got {
                prop_assert!(
                    it.any(|s| s == g),
                    "channel {chan:?}: delivered {g} out of order or twice; sent {sent_list:?}, got {got:?}"
                );
            }
        }
    }

    /// Messages to reliable, connected peers are never lost: after a
    /// quiet network with no faults, everything sent arrives.
    #[test]
    fn reliable_connected_channels_lose_nothing(
        seed in any::<u64>(),
        burst in 1usize..40,
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let everyone: ProcSet = all_procs().into_iter().collect();
        for p in all_procs() {
            net.set_reliable(p, everyone.clone());
        }
        for k in 0..burst {
            net.send(
                SimTime::from_micros(k as u64),
                ProcessId::new(1),
                &everyone,
                &NetMsg::App(AppMsg::from(format!("{k}").as_str())),
            );
        }
        let mut count = 0;
        while let Some(t) = net.next_arrival() {
            count += net.pop_ready(t).len();
        }
        prop_assert_eq!(count, burst * (N as usize - 1));
        prop_assert_eq!(net.stats().dropped, 0);
    }

    /// Arrival times within one channel never decrease (FIFO timing).
    #[test]
    fn arrival_times_monotone_per_channel(seed in any::<u64>(), burst in 1usize..30) {
        let mut net: SimNet<NetMsg> = SimNet::new(
            all_procs(),
            LatencyModel::Uniform { lo: SimTime::from_micros(1), hi: SimTime::from_micros(500) },
            SimRng::new(seed),
        );
        let p1 = ProcessId::new(1);
        let p2: ProcSet = [ProcessId::new(2)].into_iter().collect();
        net.set_reliable(p1, [p1, ProcessId::new(2)].into_iter().collect());
        for k in 0..burst {
            net.send(
                SimTime::from_micros(k as u64),
                p1,
                &p2,
                &NetMsg::App(AppMsg::from(format!("{k}").as_str())),
            );
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = net.next_arrival() {
            prop_assert!(t >= last);
            last = t;
            net.pop_ready(t);
        }
    }

    /// live_set is always reflexive and symmetric among non-crashed
    /// processes.
    #[test]
    fn live_set_symmetric(
        seed in any::<u64>(),
        split in 1..N,
        crash_a in any::<u64>(),
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let a: Vec<ProcessId> = (1..=split).map(ProcessId::new).collect();
        let b: Vec<ProcessId> = (split + 1..=N).map(ProcessId::new).collect();
        net.partition(&[a, b]);
        net.crash(pid(crash_a));
        for p in all_procs() {
            prop_assert!(net.live_set(p).contains(&p), "reflexive at {p}");
            for q in all_procs() {
                if net.is_crashed(p) || net.is_crashed(q) {
                    continue;
                }
                prop_assert_eq!(
                    net.live_set(p).contains(&q),
                    net.live_set(q).contains(&p),
                    "symmetry between {} and {}", p, q
                );
            }
        }
    }
}
