//! Property-based tests of the simulated network against the `CO_RFIFO`
//! channel semantics, under random operation sequences.

use proptest::prelude::*;
use vsgm_ioa::{SimRng, SimTime};
use vsgm_net::{LatencyModel, SimNet};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

const N: u64 = 4;

#[derive(Debug, Clone)]
enum NetOp {
    /// `p_{1+(a%N)}` multicasts a fresh message to everyone else.
    Send(u64),
    /// Set sender's reliable set from a bitmask.
    Reliable(u64, u8),
    /// Partition at a split point.
    Partition(u64),
    Heal,
    Crash(u64),
    Recover(u64),
    /// Deliver the next ready batch.
    Deliver,
}

fn op_strategy() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        4 => any::<u64>().prop_map(NetOp::Send),
        2 => (any::<u64>(), any::<u8>()).prop_map(|(a, m)| NetOp::Reliable(a, m)),
        1 => (1..N).prop_map(NetOp::Partition),
        1 => Just(NetOp::Heal),
        1 => any::<u64>().prop_map(NetOp::Crash),
        1 => any::<u64>().prop_map(NetOp::Recover),
        4 => Just(NetOp::Deliver),
    ]
}

fn pid(a: u64) -> ProcessId {
    ProcessId::new(1 + (a % N))
}

fn all_procs() -> Vec<ProcessId> {
    (1..=N).map(ProcessId::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Per-channel FIFO: for each ordered pair, the delivered sequence is
    /// a subsequence of the sent sequence, in order, without duplicates.
    #[test]
    fn deliveries_are_ordered_subsequences(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut sent: std::collections::HashMap<(ProcessId, ProcessId), Vec<u64>> =
            Default::default();
        let mut delivered: std::collections::HashMap<(ProcessId, ProcessId), Vec<u64>> =
            Default::default();
        for op in &ops {
            match op {
                NetOp::Send(a) => {
                    let from = pid(*a);
                    if net.is_crashed(from) { continue; }
                    seq += 1;
                    let to: ProcSet = all_procs().into_iter().filter(|q| *q != from).collect();
                    let msg = NetMsg::App(AppMsg::from(seq.to_string().as_str()));
                    // Track only destinations that could actually accept it.
                    for q in &to {
                        let kept = net.reliable_set(from).contains(q) || net.connected(from, *q);
                        if kept {
                            sent.entry((from, *q)).or_default().push(seq);
                        }
                    }
                    net.send(now, from, &to, &msg);
                }
                NetOp::Reliable(a, mask) => {
                    let p = pid(*a);
                    let set: ProcSet = (0..N)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| ProcessId::new(i + 1))
                        .chain([p])
                        .collect();
                    net.set_reliable(p, set);
                }
                NetOp::Partition(split) => {
                    let a: Vec<ProcessId> = (1..=*split).map(ProcessId::new).collect();
                    let b: Vec<ProcessId> = (*split + 1..=N).map(ProcessId::new).collect();
                    net.partition(&[a, b]);
                }
                NetOp::Heal => net.heal(now),
                NetOp::Crash(a) => net.crash(pid(*a)),
                NetOp::Recover(a) => net.recover(pid(*a)),
                NetOp::Deliver => {
                    if let Some(t) = net.next_arrival() {
                        now = t;
                        for (from, to, msg) in net.pop_ready(t) {
                            if let NetMsg::App(m) = msg {
                                let v: u64 =
                                    String::from_utf8_lossy(m.as_bytes()).parse().unwrap();
                                delivered.entry((from, to)).or_default().push(v);
                            }
                        }
                    }
                }
            }
        }
        // Drain the rest.
        while let Some(t) = net.next_arrival() {
            for (from, to, msg) in net.pop_ready(t) {
                if let NetMsg::App(m) = msg {
                    let v: u64 = String::from_utf8_lossy(m.as_bytes()).parse().unwrap();
                    delivered.entry((from, to)).or_default().push(v);
                }
            }
        }
        for (chan, got) in &delivered {
            let sent_list = sent.get(chan).cloned().unwrap_or_default();
            // `got` must be a subsequence of `sent_list` (strictly
            // increasing positions), hence ordered and duplicate-free.
            let mut it = sent_list.iter();
            for g in got {
                prop_assert!(
                    it.any(|s| s == g),
                    "channel {chan:?}: delivered {g} out of order or twice; sent {sent_list:?}, got {got:?}"
                );
            }
        }
    }

    /// Messages to reliable, connected peers are never lost: after a
    /// quiet network with no faults, everything sent arrives.
    #[test]
    fn reliable_connected_channels_lose_nothing(
        seed in any::<u64>(),
        burst in 1usize..40,
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let everyone: ProcSet = all_procs().into_iter().collect();
        for p in all_procs() {
            net.set_reliable(p, everyone.clone());
        }
        for k in 0..burst {
            net.send(
                SimTime::from_micros(k as u64),
                ProcessId::new(1),
                &everyone,
                &NetMsg::App(AppMsg::from(format!("{k}").as_str())),
            );
        }
        let mut count = 0;
        while let Some(t) = net.next_arrival() {
            count += net.pop_ready(t).len();
        }
        prop_assert_eq!(count, burst * (N as usize - 1));
        prop_assert_eq!(net.stats().dropped, 0);
    }

    /// Arrival times within one channel never decrease (FIFO timing).
    #[test]
    fn arrival_times_monotone_per_channel(seed in any::<u64>(), burst in 1usize..30) {
        let mut net: SimNet<NetMsg> = SimNet::new(
            all_procs(),
            LatencyModel::Uniform { lo: SimTime::from_micros(1), hi: SimTime::from_micros(500) },
            SimRng::new(seed),
        );
        let p1 = ProcessId::new(1);
        let p2: ProcSet = [ProcessId::new(2)].into_iter().collect();
        net.set_reliable(p1, [p1, ProcessId::new(2)].into_iter().collect());
        for k in 0..burst {
            net.send(
                SimTime::from_micros(k as u64),
                p1,
                &p2,
                &NetMsg::App(AppMsg::from(format!("{k}").as_str())),
            );
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = net.next_arrival() {
            prop_assert!(t >= last);
            last = t;
            net.pop_ready(t);
        }
    }

    /// live_set is always reflexive and symmetric among non-crashed
    /// processes.
    #[test]
    fn live_set_symmetric(
        seed in any::<u64>(),
        split in 1..N,
        crash_a in any::<u64>(),
    ) {
        let mut net: SimNet<NetMsg> =
            SimNet::new(all_procs(), LatencyModel::lan(), SimRng::new(seed));
        let a: Vec<ProcessId> = (1..=split).map(ProcessId::new).collect();
        let b: Vec<ProcessId> = (split + 1..=N).map(ProcessId::new).collect();
        net.partition(&[a, b]);
        net.crash(pid(crash_a));
        for p in all_procs() {
            prop_assert!(net.live_set(p).contains(&p), "reflexive at {p}");
            for q in all_procs() {
                if net.is_crashed(p) || net.is_crashed(q) {
                    continue;
                }
                prop_assert_eq!(
                    net.live_set(p).contains(&q),
                    net.live_set(q).contains(&p),
                    "symmetry between {} and {}", p, q
                );
            }
        }
    }
}
