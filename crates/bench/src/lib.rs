//! Benchmark-hosting package; see the `benches/` directory. Each bench
//! target regenerates one experiment table from `EXPERIMENTS.md` (printed
//! once at startup) and then times its measurement kernel with Criterion.
