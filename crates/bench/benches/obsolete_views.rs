//! E3 — views delivered under cascaded membership changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e3_obsolete_views(&[1, 2, 4, 8]).render());
    let mut g = c.benchmark_group("E3_obsolete_views");
    g.sample_size(10);
    for k in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("cascade_depth", k), &k, |b, &k| {
            b.iter(|| experiments::e3_obsolete_views(&[k]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
