//! E8 — crash/recovery without stable storage (§8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e8_crash_recovery(&[1, 2, 3]).render());
    let mut g = c.benchmark_group("E8_crash_recovery");
    g.sample_size(10);
    for f in [1usize, 3] {
        g.bench_with_input(BenchmarkId::new("failures", f), &f, |b, &f| {
            b.iter(|| experiments::e8_crash_recovery(&[f]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
