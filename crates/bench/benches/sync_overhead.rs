//! E7 — §5.2.4 slim synchronization messages.

use criterion::{criterion_group, criterion_main, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e7_sync_overhead(&[4, 8, 16]).render());
    let mut g = c.benchmark_group("E7_sync_overhead");
    g.sample_size(10);
    g.bench_function("join_view_change", |b| {
        b.iter(|| experiments::e7_sync_overhead(&[8]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
