//! Net-layer throughput: JSON vs binary codec × per-send vs coalesced
//! flushing, over the real TCP transport on loopback — plus the
//! connection-scaling arm of the event-loop rewrite (frames/s into one
//! receiver at 16 / 256 / 4096 concurrent connections, thread count
//! fixed at the loop-pool size).
//!
//! Beyond the Criterion display benches, this bench writes a machine-
//! readable `BENCH_net.json` (path overridable via `VSGM_BENCH_JSON`)
//! with frames/sec per arm and the headline speedup of the rebuilt send
//! path — binary coalesced over per-message JSON — which EXPERIMENTS.md
//! tracks against its ≥2× claim. `VSGM_NET_BENCH_MSGS` scales the burst
//! size (default 8000 frames per arm); `VSGM_NET_BENCH_CONNS` picks the
//! scaling arms (default `16,256,4096`), `VSGM_NET_CONN_FRAMES` their
//! total frame budget, `VSGM_NET_SCALE_FLOOR` asserts a frames/s floor
//! on the smallest arm, and `VSGM_NET_SCALING_ONLY=1` runs just the
//! scaling arms as a CI smoke (no JSON, no Criterion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::{Duration, Instant};
use vsgm_net::{TcpConfig, TcpTransport, Transport, WireFormat};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

const PAYLOAD_BYTES: usize = 96;
/// Loop threads serving the scaling-arm receiver, no matter how many
/// connections storm it.
const SCALE_LOOP_THREADS: usize = 4;

fn burst_size() -> u64 {
    std::env::var("VSGM_NET_BENCH_MSGS").ok().and_then(|s| s.parse().ok()).unwrap_or(8_000)
}

fn scaling_conns() -> Vec<usize> {
    std::env::var("VSGM_NET_BENCH_CONNS")
        .unwrap_or_else(|_| "16,256,4096".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect()
}

fn scaling_frames() -> u64 {
    std::env::var("VSGM_NET_CONN_FRAMES").ok().and_then(|s| s.parse().ok()).unwrap_or(98_304)
}

fn arm_config(format: WireFormat, coalesce: bool) -> TcpConfig {
    TcpConfig {
        wire_format: format,
        // `max_coalesce_frames: 1` degenerates the writer to one flush per
        // frame — the old per-send write behavior, kept as a baseline arm.
        max_coalesce_frames: if coalesce { 256 } else { 1 },
        writer_queue: 4096,
        enqueue_timeout: Duration::from_secs(30),
        // No heartbeats: measure the data path alone.
        heartbeat_interval: Duration::ZERO,
        ..TcpConfig::default()
    }
}

/// Sends `msgs` frames over a fresh loopback pair and drains them all;
/// returns frames/sec from first send to last receive.
fn run_arm(format: WireFormat, coalesce: bool, msgs: u64) -> f64 {
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let config = arm_config(format, coalesce);
    let a = TcpTransport::bind_with(p1, "127.0.0.1:0", config.clone()).unwrap();
    let b = TcpTransport::bind_with(p2, "127.0.0.1:0", config).unwrap();
    a.register_peer(p2, b.local_addr());
    let to: ProcSet = [p2].into_iter().collect();
    let msg = NetMsg::App(AppMsg::from(vec![0xAB; PAYLOAD_BYTES]));
    // Warm the connection so the handshake is outside the timed region.
    a.send(&to, &msg).unwrap();
    b.recv_timeout(Duration::from_secs(10)).expect("warmup frame");

    let start = Instant::now();
    for _ in 0..msgs {
        a.send(&to, &msg).unwrap();
    }
    for _ in 0..msgs {
        b.recv_timeout(Duration::from_secs(30)).expect("bench frame lost");
    }
    let secs = start.elapsed().as_secs_f64();
    msgs as f64 / secs.max(f64::EPSILON)
}

fn connect_retry(addr: std::net::SocketAddr) -> TcpStream {
    // The listener backlog is finite; connection storms (4096 dials from
    // 8 threads) overrun it, so refused/reset dials are retried.
    for _ in 0..2_000 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    panic!("could not connect to the scaling-arm receiver at {addr}");
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

/// Soft `RLIMIT_NOFILE`, from `/proc/self/limits` (no libc in the dep
/// set). `None` off Linux — arms then run unguarded, as before.
fn fd_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Frames/s into ONE receiver transport from `conns` raw binary senders
/// (pre-encoded frames, chunked writes). Returns `(frames_per_sec,
/// receiver_loop_threads, process_thread_peak)` — the last two pin the
/// headline property of the event-loop rewrite: serving 4096
/// connections takes the same fixed thread pool as serving 16.
fn run_scaling_arm(conns: usize, total_frames: u64) -> (f64, u64, usize) {
    let rx = TcpTransport::bind_with(
        ProcessId::new(1),
        "127.0.0.1:0",
        TcpConfig {
            heartbeat_interval: Duration::ZERO,
            loop_threads: SCALE_LOOP_THREADS,
            ..TcpConfig::default()
        },
    )
    .unwrap();
    let addr = rx.local_addr();
    let msg = NetMsg::App(AppMsg::from(vec![0xCD; PAYLOAD_BYTES]));
    let frame = vsgm_net::codec::encode_frame(&msg, WireFormat::Binary).unwrap();
    let per_conn = (total_frames / conns as u64).max(1);
    let expected = per_conn * conns as u64;
    let senders = conns.min(8);
    let barrier = Barrier::new(senders + 1);
    let mut rate = 0.0;
    let mut thread_peak = 0usize;
    std::thread::scope(|s| {
        for t in 0..senders {
            let (barrier, frame) = (&barrier, &frame);
            s.spawn(move || {
                // Establish this thread's share of the connections, with
                // handshakes, before the timed region starts.
                let mut mine: Vec<TcpStream> = (t..conns)
                    .step_by(senders)
                    .map(|i| {
                        let mut c = connect_retry(addr);
                        c.set_nodelay(true).unwrap();
                        c.write_all(&(1_000 + i as u64).to_le_bytes()).unwrap();
                        c
                    })
                    .collect();
                // One chunk = up to 256 coalesced frames per syscall,
                // mirroring the transport's own flush coalescing.
                const CHUNK: u64 = 256;
                let mut chunk = Vec::with_capacity(frame.len() * CHUNK as usize);
                for _ in 0..CHUNK {
                    chunk.extend_from_slice(frame);
                }
                barrier.wait();
                let mut sent = vec![0u64; mine.len()];
                loop {
                    let mut idle = true;
                    for (c, done) in mine.iter_mut().zip(sent.iter_mut()) {
                        let n = (per_conn - *done).min(CHUNK);
                        if n == 0 {
                            continue;
                        }
                        idle = false;
                        c.write_all(&chunk[..frame.len() * n as usize]).unwrap();
                        *done += n;
                    }
                    if idle {
                        break;
                    }
                }
            });
        }
        barrier.wait();
        let start = Instant::now();
        for i in 0..expected {
            rx.recv_timeout(Duration::from_secs(60)).expect("scaling frame lost");
            if i == expected / 2 {
                thread_peak = thread_count();
            }
        }
        rate = expected as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON);
    });
    (rate, rx.stats().loop_threads, thread_peak)
}

struct Arm {
    name: &'static str,
    format: WireFormat,
    coalesce: bool,
}

const ARMS: [Arm; 4] = [
    Arm { name: "json_per_send", format: WireFormat::Json, coalesce: false },
    Arm { name: "json_coalesced", format: WireFormat::Json, coalesce: true },
    Arm { name: "binary_per_send", format: WireFormat::Binary, coalesce: false },
    Arm { name: "binary_coalesced", format: WireFormat::Binary, coalesce: true },
];

fn emit_json(
    rates: &[(&'static str, f64)],
    scaling: &[(usize, f64)],
    loop_threads: u64,
    thread_peak: usize,
) {
    let path = std::env::var("VSGM_BENCH_JSON").unwrap_or_else(|_| "BENCH_net.json".into());
    let speedup = {
        let rate = |n: &str| rates.iter().find(|(a, _)| *a == n).map_or(0.0, |(_, r)| *r);
        let base = rate("json_per_send");
        if base > 0.0 { rate("binary_coalesced") / base } else { 0.0 }
    };
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"net_throughput\",\n");
    body.push_str(&format!("  \"payload_bytes\": {PAYLOAD_BYTES},\n"));
    body.push_str(&format!("  \"msgs_per_arm\": {},\n", burst_size()));
    body.push_str("  \"frames_per_sec\": {\n");
    for (i, (name, rate)) in rates.iter().enumerate() {
        let comma = if i + 1 == rates.len() { "" } else { "," };
        body.push_str(&format!("    \"{name}\": {rate:.1}{comma}\n"));
    }
    body.push_str("  },\n");
    // The connection-scaling arms: frames/s into one receiver transport
    // at N concurrent inbound connections, event loops fixed at
    // `loop_threads` (thread count must not scale with connections).
    body.push_str("  \"connections\": {\n");
    for (i, (conns, rate)) in scaling.iter().enumerate() {
        let comma = if i + 1 == scaling.len() { "" } else { "," };
        body.push_str(&format!("    \"{conns}\": {rate:.1}{comma}\n"));
    }
    body.push_str("  },\n");
    body.push_str("  \"scaling\": {\n");
    body.push_str(&format!("    \"receiver_loop_threads\": {loop_threads},\n"));
    body.push_str(&format!("    \"frames_per_scaling_arm\": {},\n", scaling_frames()));
    body.push_str(&format!("    \"process_thread_peak\": {thread_peak}\n"));
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"speedup_binary_coalesced_over_json_per_send\": {speedup:.2}\n"
    ));
    body.push_str("}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("net_throughput: wrote {path} (speedup {speedup:.2}x)"),
        Err(e) => eprintln!("net_throughput: cannot write {path}: {e}"),
    }
}

/// Runs every requested scaling arm; asserts the pool-size invariant and
/// (when `VSGM_NET_SCALE_FLOOR` is set) the frames/s floor on the
/// smallest arm. Returns the arm rates plus loop/process thread counts.
fn run_scaling_arms() -> (Vec<(usize, f64)>, u64, usize) {
    let total = scaling_frames();
    let mut out = Vec::new();
    let mut loop_threads = SCALE_LOOP_THREADS as u64;
    let mut peak = 0usize;
    for conns in scaling_conns() {
        // The harness holds both ends of every connection (2 fds each)
        // plus listeners, channels, and stdio. Skip — loudly, never
        // silently — arms the fd rlimit cannot carry instead of dying
        // mid-storm on EMFILE (`ulimit -n 20000` runs them all).
        let need = 2 * conns as u64 + 64;
        if let Some(limit) = fd_limit() {
            if need > limit {
                println!(
                    "net_throughput/conns_{conns:<5} SKIPPED \
                     (needs ~{need} fds, rlimit is {limit}; raise ulimit -n)"
                );
                continue;
            }
        }
        let (rate, loops, threads) = run_scaling_arm(conns, total);
        println!(
            "net_throughput/conns_{conns:<5} {rate:>12.0} frames/s \
             ({loops} loop threads, {threads} process threads)"
        );
        assert!(
            loops <= SCALE_LOOP_THREADS as u64,
            "loop threads blew past the configured pool: {loops} > {SCALE_LOOP_THREADS}"
        );
        loop_threads = loops;
        peak = peak.max(threads);
        out.push((conns, rate));
    }
    if let Some(floor) =
        std::env::var("VSGM_NET_SCALE_FLOOR").ok().and_then(|s| s.parse::<f64>().ok())
    {
        let (conns, rate) = *out
            .iter()
            .min_by_key(|(c, _)| *c)
            .expect("VSGM_NET_SCALE_FLOOR needs at least one scaling arm");
        assert!(
            rate >= floor,
            "scaling arm regressed: {rate:.0} frames/s at {conns} conns is below the \
             pinned floor {floor:.0}"
        );
        println!("net_throughput: {conns}-conn floor held ({rate:.0} >= {floor:.0} frames/s)");
    }
    (out, loop_threads, peak)
}

fn net_bench(c: &mut Criterion) {
    if std::env::var_os("VSGM_NET_SCALING_ONLY").is_some() {
        // CI smoke: just the scaling arms and their floor/pool asserts.
        run_scaling_arms();
        return;
    }
    let msgs = burst_size();
    let mut rates: Vec<(&'static str, f64)> = Vec::new();
    for arm in &ARMS {
        let rate = run_arm(arm.format, arm.coalesce, msgs);
        println!("net_throughput/{:<18} {rate:>12.0} frames/s ({msgs} frames)", arm.name);
        rates.push((arm.name, rate));
    }
    let (scaling, loop_threads, thread_peak) = run_scaling_arms();
    emit_json(&rates, &scaling, loop_threads, thread_peak);

    // Criterion display benches over the same arms (budget-bounded).
    let mut g = c.benchmark_group("net_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(msgs));
    for arm in &ARMS {
        g.bench_function(arm.name, |b| {
            b.iter(|| run_arm(arm.format, arm.coalesce, msgs.min(1_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, net_bench);
criterion_main!(benches);
