//! Net-layer throughput: JSON vs binary codec × per-send vs coalesced
//! flushing, over the real TCP transport on loopback.
//!
//! Beyond the Criterion display benches, this bench writes a machine-
//! readable `BENCH_net.json` (path overridable via `VSGM_BENCH_JSON`)
//! with frames/sec per arm and the headline speedup of the rebuilt send
//! path — binary coalesced over per-message JSON — which EXPERIMENTS.md
//! tracks against its ≥2× claim. `VSGM_NET_BENCH_MSGS` scales the burst
//! size (default 8000 frames per arm).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::{Duration, Instant};
use vsgm_net::{TcpConfig, TcpTransport, Transport, WireFormat};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

const PAYLOAD_BYTES: usize = 96;

fn burst_size() -> u64 {
    std::env::var("VSGM_NET_BENCH_MSGS").ok().and_then(|s| s.parse().ok()).unwrap_or(8_000)
}

fn arm_config(format: WireFormat, coalesce: bool) -> TcpConfig {
    TcpConfig {
        wire_format: format,
        // `max_coalesce_frames: 1` degenerates the writer to one flush per
        // frame — the old per-send write behavior, kept as a baseline arm.
        max_coalesce_frames: if coalesce { 256 } else { 1 },
        writer_queue: 4096,
        enqueue_timeout: Duration::from_secs(30),
        // No heartbeats: measure the data path alone.
        heartbeat_interval: Duration::ZERO,
        ..TcpConfig::default()
    }
}

/// Sends `msgs` frames over a fresh loopback pair and drains them all;
/// returns frames/sec from first send to last receive.
fn run_arm(format: WireFormat, coalesce: bool, msgs: u64) -> f64 {
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let config = arm_config(format, coalesce);
    let a = TcpTransport::bind_with(p1, "127.0.0.1:0", config.clone()).unwrap();
    let b = TcpTransport::bind_with(p2, "127.0.0.1:0", config).unwrap();
    a.register_peer(p2, b.local_addr());
    let to: ProcSet = [p2].into_iter().collect();
    let msg = NetMsg::App(AppMsg::from(vec![0xAB; PAYLOAD_BYTES]));
    // Warm the connection so the handshake is outside the timed region.
    a.send(&to, &msg).unwrap();
    b.recv_timeout(Duration::from_secs(10)).expect("warmup frame");

    let start = Instant::now();
    for _ in 0..msgs {
        a.send(&to, &msg).unwrap();
    }
    for _ in 0..msgs {
        b.recv_timeout(Duration::from_secs(30)).expect("bench frame lost");
    }
    let secs = start.elapsed().as_secs_f64();
    msgs as f64 / secs.max(f64::EPSILON)
}

struct Arm {
    name: &'static str,
    format: WireFormat,
    coalesce: bool,
}

const ARMS: [Arm; 4] = [
    Arm { name: "json_per_send", format: WireFormat::Json, coalesce: false },
    Arm { name: "json_coalesced", format: WireFormat::Json, coalesce: true },
    Arm { name: "binary_per_send", format: WireFormat::Binary, coalesce: false },
    Arm { name: "binary_coalesced", format: WireFormat::Binary, coalesce: true },
];

fn emit_json(rates: &[(&'static str, f64)]) {
    let path = std::env::var("VSGM_BENCH_JSON").unwrap_or_else(|_| "BENCH_net.json".into());
    let speedup = {
        let rate = |n: &str| rates.iter().find(|(a, _)| *a == n).map_or(0.0, |(_, r)| *r);
        let base = rate("json_per_send");
        if base > 0.0 { rate("binary_coalesced") / base } else { 0.0 }
    };
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"net_throughput\",\n");
    body.push_str(&format!("  \"payload_bytes\": {PAYLOAD_BYTES},\n"));
    body.push_str(&format!("  \"msgs_per_arm\": {},\n", burst_size()));
    body.push_str("  \"frames_per_sec\": {\n");
    for (i, (name, rate)) in rates.iter().enumerate() {
        let comma = if i + 1 == rates.len() { "" } else { "," };
        body.push_str(&format!("    \"{name}\": {rate:.1}{comma}\n"));
    }
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"speedup_binary_coalesced_over_json_per_send\": {speedup:.2}\n"
    ));
    body.push_str("}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("net_throughput: wrote {path} (speedup {speedup:.2}x)"),
        Err(e) => eprintln!("net_throughput: cannot write {path}: {e}"),
    }
}

fn net_bench(c: &mut Criterion) {
    let msgs = burst_size();
    let mut rates: Vec<(&'static str, f64)> = Vec::new();
    for arm in &ARMS {
        let rate = run_arm(arm.format, arm.coalesce, msgs);
        println!("net_throughput/{:<18} {rate:>12.0} frames/s ({msgs} frames)", arm.name);
        rates.push((arm.name, rate));
    }
    emit_json(&rates);

    // Criterion display benches over the same arms (budget-bounded).
    let mut g = c.benchmark_group("net_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(msgs));
    for arm in &ARMS {
        g.bench_function(arm.name, |b| {
            b.iter(|| run_arm(arm.format, arm.coalesce, msgs.min(1_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, net_bench);
criterion_main!(benches);
