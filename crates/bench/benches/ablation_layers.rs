//! Layer ablation: WV_RFIFO vs VS_RFIFO+TS vs the full GCS.

use criterion::{criterion_group, criterion_main, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::ablation_layers().render());
    let mut g = c.benchmark_group("ABL_layers");
    g.sample_size(10);
    g.bench_function("all_layers", |b| b.iter(experiments::ablation_layers));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
