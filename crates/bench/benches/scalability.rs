//! E9 — client-server scalability: server traffic independent of clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e9_scalability(&[8, 32, 64], &[2, 4]).render());
    let mut g = c.benchmark_group("E9_scalability");
    g.sample_size(10);
    for clients in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, &n| {
            b.iter(|| experiments::e9_scalability(&[n], &[2]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
