//! E6 — forwarding strategies: eager vs min-copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e6_forwarding(&[4, 8, 16]).render());
    let mut g = c.benchmark_group("E6_forwarding");
    g.sample_size(10);
    {
        let n = 8usize;
        g.bench_with_input(BenchmarkId::new("recovery_scenario", n), &n, |b, &n| {
            b.iter(|| experiments::e6_forwarding(&[n]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
