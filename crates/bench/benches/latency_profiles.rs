//! E12 — view-change cost across network latency profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e12_latency_profiles(8).render());
    let mut g = c.benchmark_group("E12_latency_profiles");
    g.sample_size(10);
    g.bench_function("profile_sweep", |b| b.iter(|| experiments::e12_latency_profiles(8)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
