//! GCS endpoint throughput: per-message sends vs endpoint-level batching
//! (`BatchConfig`), end-to-end over the real TCP transport on loopback.
//!
//! Unlike `net_throughput` (raw transport frames), this measures the full
//! group-multicast hot path: `Node::send` → WV_RFIFO stamping → batch
//! accumulation → one `AppBatch` frame per flush → receive-side
//! unbatching → application delivery. Beyond the Criterion display
//! benches, it writes a machine-readable `BENCH_gcs.json` (path
//! overridable via `VSGM_BENCH_JSON`) with delivered msgs/sec per arm and
//! the headline `speedup_batched_over_per_message`, which EXPERIMENTS.md
//! tracks against its ≥2× claim. `VSGM_GCS_BENCH_MSGS` scales the burst
//! size (default 8000 messages per arm).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::{Duration, Instant};
use vsgm_core::node::{AppEvent, Node};
use vsgm_core::{BatchConfig, Config, Endpoint, Input};
use vsgm_net::{TcpConfig, TcpTransport};
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

const PAYLOAD_BYTES: usize = 16;

fn burst_size() -> u64 {
    std::env::var("VSGM_GCS_BENCH_MSGS").ok().and_then(|s| s.parse().ok()).unwrap_or(8_000)
}

fn transport_config() -> TcpConfig {
    TcpConfig {
        writer_queue: 4096,
        enqueue_timeout: Duration::from_secs(30),
        // No heartbeats: measure the data path alone.
        heartbeat_interval: Duration::ZERO,
        ..TcpConfig::default()
    }
}

/// Builds a connected two-node group with an installed two-member view.
fn two_node_group(batch: BatchConfig) -> (Node<TcpTransport>, Node<TcpTransport>) {
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let t1 = TcpTransport::bind_with(p1, "127.0.0.1:0", transport_config()).unwrap();
    let t2 = TcpTransport::bind_with(p2, "127.0.0.1:0", transport_config()).unwrap();
    t1.register_peer(p2, t2.local_addr());
    t2.register_peer(p1, t1.local_addr());
    let cfg = Config { batch, ..Config::default() };
    let mut a = Node::new(Endpoint::new(p1, cfg.clone()), t1);
    let mut b = Node::new(Endpoint::new(p2, cfg), t2);
    let members: ProcSet = [p1, p2].into_iter().collect();
    let view = View::new(
        ViewId::new(1, 0),
        [p1, p2],
        [(p1, StartChangeId::new(1)), (p2, StartChangeId::new(1))],
    );
    let mut installed = 0usize;
    for n in [&mut a, &mut b] {
        let evs = n
            .membership(Input::StartChange { cid: StartChangeId::new(1), set: members.clone() })
            .unwrap();
        installed += evs.iter().filter(|e| matches!(e, AppEvent::View { .. })).count();
    }
    for n in [&mut a, &mut b] {
        let evs = n.membership(Input::MbrshpView(view.clone())).unwrap();
        installed += evs.iter().filter(|e| matches!(e, AppEvent::View { .. })).count();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while installed < 2 {
        assert!(Instant::now() < deadline, "view never installed");
        for n in [&mut a, &mut b] {
            let evs = n.pump(Duration::from_millis(2)).unwrap();
            installed += evs.iter().filter(|e| matches!(e, AppEvent::View { .. })).count();
        }
    }
    (a, b)
}

fn count_delivered(evs: &[AppEvent]) -> u64 {
    evs.iter().filter(|e| matches!(e, AppEvent::Delivered { .. })).count() as u64
}

/// Multicasts `msgs` messages from node 1 and drains them at node 2;
/// returns delivered msgs/sec from first send to last delivery.
fn run_arm(batch: BatchConfig, msgs: u64) -> f64 {
    let (mut a, mut b) = two_node_group(batch);
    let msg = AppMsg::from(vec![0xAB; PAYLOAD_BYTES]);
    // Warm the path (and flush any linger tail) outside the timed region.
    a.send(msg.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut warm = 0u64;
    while warm < 1 {
        assert!(Instant::now() < deadline, "warmup message never delivered");
        let _ = a.pump(Duration::from_millis(1)).unwrap();
        warm += count_delivered(&b.pump(Duration::from_millis(1)).unwrap());
    }

    let start = Instant::now();
    let mut delivered = 0u64;
    for _ in 0..msgs {
        a.send(msg.clone()).unwrap();
        delivered += count_delivered(&b.pump(Duration::ZERO).unwrap());
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while delivered < msgs {
        assert!(Instant::now() < deadline, "bench messages lost: {delivered}/{msgs}");
        // Pumping the sender releases any linger-held tail batch.
        let _ = a.pump(Duration::from_millis(1)).unwrap();
        delivered += count_delivered(&b.pump(Duration::from_millis(1)).unwrap());
    }
    let secs = start.elapsed().as_secs_f64();
    msgs as f64 / secs.max(f64::EPSILON)
}

struct Arm {
    name: &'static str,
    batch: fn() -> BatchConfig,
}

const ARMS: [Arm; 3] = [
    Arm { name: "per_message", batch: BatchConfig::off },
    Arm { name: "batched_small", batch: BatchConfig::small },
    Arm { name: "batched_large", batch: BatchConfig::large },
];

fn emit_json(rates: &[(&'static str, f64)]) {
    let path = std::env::var("VSGM_BENCH_JSON").unwrap_or_else(|_| "BENCH_gcs.json".into());
    let speedup = {
        let rate = |n: &str| rates.iter().find(|(a, _)| *a == n).map_or(0.0, |(_, r)| *r);
        let base = rate("per_message");
        if base > 0.0 { rate("batched_large") / base } else { 0.0 }
    };
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"gcs_throughput\",\n");
    body.push_str(&format!("  \"payload_bytes\": {PAYLOAD_BYTES},\n"));
    body.push_str(&format!("  \"msgs_per_arm\": {},\n", burst_size()));
    body.push_str("  \"delivered_msgs_per_sec\": {\n");
    for (i, (name, rate)) in rates.iter().enumerate() {
        let comma = if i + 1 == rates.len() { "" } else { "," };
        body.push_str(&format!("    \"{name}\": {rate:.1}{comma}\n"));
    }
    body.push_str("  },\n");
    body.push_str(&format!("  \"speedup_batched_over_per_message\": {speedup:.2}\n"));
    body.push_str("}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("gcs_throughput: wrote {path} (speedup {speedup:.2}x)"),
        Err(e) => eprintln!("gcs_throughput: cannot write {path}: {e}"),
    }
}

fn gcs_bench(c: &mut Criterion) {
    let msgs = burst_size();
    let mut rates: Vec<(&'static str, f64)> = Vec::new();
    for arm in &ARMS {
        let rate = run_arm((arm.batch)(), msgs);
        println!("gcs_throughput/{:<16} {rate:>12.0} msgs/s ({msgs} msgs)", arm.name);
        rates.push((arm.name, rate));
    }
    emit_json(&rates);

    // Criterion display benches over the same arms (budget-bounded).
    let mut g = c.benchmark_group("gcs_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(msgs));
    for arm in &ARMS {
        g.bench_function(arm.name, |b| b.iter(|| run_arm((arm.batch)(), msgs.min(1_000))));
    }
    g.finish();
}

criterion_group!(benches, gcs_bench);
criterion_main!(benches);
