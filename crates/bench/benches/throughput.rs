//! E5 — steady-state multicast throughput (simulated and real TCP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use vsgm_core::node::AppEvent;
use vsgm_core::{Config, Endpoint, Input, Node};
use vsgm_harness::experiments;
use vsgm_net::TcpTransport;
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

/// With `VSGM_OBS_SNAPSHOT=<dir>` set, re-runs an instrumented 4-process
/// steady-state multicast burst and writes the observability snapshot
/// (delivery-latency histogram, per-tag traffic) to
/// `<dir>/throughput.json`.
fn dump_obs_snapshot() {
    let Ok(dir) = std::env::var("VSGM_OBS_SNAPSHOT") else { return };
    use vsgm_harness::sim::procs;
    use vsgm_harness::{Sim, SimOptions};
    let mut sim = Sim::new_paper(4, Config::default(), SimOptions::default());
    sim.enable_obs();
    sim.reconfigure(&procs(4));
    for k in 0..20u64 {
        for i in 1..=4u64 {
            sim.send(ProcessId::new(i), AppMsg::from(format!("m{i}.{k}").as_str()));
        }
        sim.run_to_quiescence();
    }
    let snap = vsgm_obs::Snapshot::capture(&sim.take_obs().expect("obs on"));
    let path = std::path::Path::new(&dir).join("throughput.json");
    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, snap.to_json_pretty()))
        .unwrap_or_else(|e| eprintln!("VSGM_OBS_SNAPSHOT: cannot write {}: {e}", path.display()));
    println!("obs snapshot written to {}", path.display());
}

fn sim_bench(c: &mut Criterion) {
    println!("{}", experiments::e5_throughput(&[2, 4, 8, 16], 20).render());
    dump_obs_snapshot();
    let mut g = c.benchmark_group("E5_throughput_sim");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.throughput(Throughput::Elements((n * n * 20) as u64));
        g.bench_with_input(BenchmarkId::new("group", n), &n, |b, &n| {
            b.iter(|| experiments::e5_throughput(&[n], 20))
        });
    }
    g.finish();
}

fn tcp_bench(c: &mut Criterion) {
    // Two nodes on loopback; time a 100-message FIFO burst end to end.
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let t1 = TcpTransport::bind(p1, "127.0.0.1:0").unwrap();
    let t2 = TcpTransport::bind(p2, "127.0.0.1:0").unwrap();
    t1.register_peer(p2, t2.local_addr());
    t2.register_peer(p1, t1.local_addr());
    let mut a = Node::new(Endpoint::new(p1, Config::default()), t1);
    let mut bnode = Node::new(Endpoint::new(p2, Config::default()), t2);
    let members: ProcSet = [p1, p2].into_iter().collect();
    let view = View::new(
        ViewId::new(1, 0),
        members.iter().copied(),
        members.iter().map(|&m| (m, StartChangeId::new(1))),
    );
    for n in [&mut a, &mut bnode] {
        n.membership(Input::StartChange { cid: StartChangeId::new(1), set: members.clone() })
            .unwrap();
        n.membership(Input::MbrshpView(view.clone())).unwrap();
    }
    // Pump until both installed (judged by endpoint state — installation
    // can complete inside the membership() calls above).
    while a.endpoint().current_view().len() < 2 || bnode.endpoint().current_view().len() < 2 {
        for n in [&mut a, &mut bnode] {
            n.pump(Duration::from_millis(5)).unwrap();
        }
    }
    let mut g = c.benchmark_group("E5_throughput_tcp");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100));
    g.bench_function("loopback_100_msgs", |b| {
        b.iter(|| {
            for k in 0..100 {
                a.send(AppMsg::from(format!("m{k}").as_str())).unwrap();
            }
            let mut got = 0;
            while got < 100 {
                for e in bnode.pump(Duration::from_millis(1)).unwrap() {
                    if matches!(e, AppEvent::Delivered { .. }) {
                        got += 1;
                    }
                }
                a.pump(Duration::ZERO).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, sim_bench, tcp_bench);
criterion_main!(benches);
