//! E4 — application progress across a reconfiguration.

use criterion::{criterion_group, criterion_main, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e4_reconfig_delivery().render());
    let mut g = c.benchmark_group("E4_reconfig_delivery");
    g.sample_size(10);
    g.bench_function("burst_through_reconfig", |b| {
        b.iter(experiments::e4_reconfig_delivery)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
