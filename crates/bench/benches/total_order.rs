//! E11 — totally ordered multicast atop the FIFO service.

use criterion::{criterion_group, criterion_main, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e11_total_order(6, 5).render());
    let mut g = c.benchmark_group("E11_total_order");
    g.sample_size(10);
    g.bench_function("order_burst", |b| {
        b.iter(|| experiments::e11_total_order(6, 5))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
