//! E10 — §9 two-tier aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e10_aggregation(&[4, 8, 16, 32]).render());
    let mut g = c.benchmark_group("E10_aggregation");
    g.sample_size(10);
    for n in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("view_change", n), &n, |b, &n| {
            b.iter(|| experiments::e10_aggregation(&[n]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
