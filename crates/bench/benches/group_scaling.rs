//! Groups × clients scaling: many independent group instances
//! multiplexed through one `vsgm-server` daemon on TCP loopback
//! (EXPERIMENTS.md E15).
//!
//! The headline arm is 1000 groups × 10 clients: every client joins
//! every group through the directory protocol, then the clients
//! multicast round-robin across all groups and the run is judged
//! end-to-end — every expected delivery observed back at a client
//! socket, every group's spec checkers green, zero unroutable frames.
//!
//! Emits a machine-readable `BENCH_groups.json` (path overridable via
//! `VSGM_BENCH_JSON`). Knobs: `VSGM_GROUPS` (default 1000),
//! `VSGM_GROUP_CLIENTS` (default 10), `VSGM_GROUP_SENDS` (total
//! multicasts, default one per group), `VSGM_GROUP_SHARDS` (default 4),
//! and `VSGM_GROUPS_FLOOR` (deliveries/s floor; the process exits
//! nonzero below it — the CI smoke gate).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use vsgm_server::{GroupServer, ServerConfig};
use vsgm_types::{AppMsg, GroupId, NetMsg, ProcessId};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One bench client: a transport plus a receive thread that routes
/// directory replies to the requester and counts bench deliveries.
struct Client {
    transport: Arc<vsgm_net::TcpTransport>,
    replies: mpsc::Receiver<String>,
    deliveries: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    rx_thread: Option<std::thread::JoinHandle<()>>,
    server: ProcessId,
}

impl Client {
    fn connect(me: u64, server: &GroupServer) -> Client {
        let pid = ProcessId::new(me);
        let transport =
            Arc::new(vsgm_net::TcpTransport::bind(pid, "127.0.0.1:0").expect("bind client"));
        transport.register_peer(ProcessId::new(0), server.local_addr());
        server.register_client(pid, transport.local_addr());
        let (reply_tx, replies) = mpsc::channel();
        let deliveries = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let rx_thread = {
            let transport = Arc::clone(&transport);
            let deliveries = Arc::clone(&deliveries);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match transport.recv_routed_timeout(Duration::from_millis(25)) {
                        Some((_, Some(GroupId::DIRECTORY), NetMsg::App(reply))) => {
                            let _ = reply_tx
                                .send(String::from_utf8_lossy(reply.as_bytes()).into_owned());
                        }
                        Some((_, Some(_), NetMsg::Fwd(f)))
                            if f.msg.as_bytes().starts_with(b"bench-") =>
                        {
                            deliveries.fetch_add(1, Ordering::Relaxed);
                        }
                        // View installations and other control traffic are
                        // not part of the delivery count.
                        _ => {}
                    }
                }
            })
        };
        Client {
            transport,
            replies,
            deliveries,
            stop,
            rx_thread: Some(rx_thread),
            server: ProcessId::new(0),
        }
    }

    fn request(&self, line: &str) -> String {
        let to = [self.server].into_iter().collect();
        self.transport
            .send_to_group(GroupId::DIRECTORY, &to, &NetMsg::App(AppMsg::from(line)))
            .expect("directory request");
        self.replies.recv_timeout(Duration::from_secs(30)).expect("directory reply")
    }

    fn send(&self, gid: GroupId, payload: &str) {
        let to = [self.server].into_iter().collect();
        self.transport
            .send_to_group(gid, &to, &NetMsg::App(AppMsg::from(payload)))
            .expect("group send");
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.rx_thread.take() {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    groups: u64,
    clients: u64,
    shards: u64,
    sends_total: u64,
    create_rate: f64,
    join_rate: f64,
    deliveries: u64,
    delivery_rate: f64,
    frames_routed: u64,
    frames_unroutable: u64,
    wall_secs: f64,
) {
    let path = std::env::var("VSGM_BENCH_JSON").unwrap_or_else(|_| "BENCH_groups.json".into());
    let body = format!(
        "{{\n  \"bench\": \"group_scaling\",\n  \"groups\": {groups},\n  \
         \"clients\": {clients},\n  \"shards\": {shards},\n  \
         \"sends_total\": {sends_total},\n  \
         \"create_groups_per_sec\": {create_rate:.1},\n  \
         \"join_ops_per_sec\": {join_rate:.1},\n  \
         \"deliveries\": {deliveries},\n  \
         \"deliveries_per_sec\": {delivery_rate:.1},\n  \
         \"frames_routed\": {frames_routed},\n  \
         \"frames_unroutable\": {frames_unroutable},\n  \
         \"checkers_green\": true,\n  \"wall_secs\": {wall_secs:.2}\n}}\n"
    );
    match std::fs::write(&path, &body) {
        Ok(()) => println!("group_scaling: wrote {path}"),
        Err(e) => eprintln!("group_scaling: cannot write {path}: {e}"),
    }
}

fn main() {
    // Criterion-style CLI args (--bench etc.) are accepted and ignored.
    let groups = env_u64("VSGM_GROUPS", 1000);
    let clients = env_u64("VSGM_GROUP_CLIENTS", 10);
    let sends_total = env_u64("VSGM_GROUP_SENDS", groups);
    let shards = env_u64("VSGM_GROUP_SHARDS", 4);
    let wall_start = Instant::now();

    let cfg = ServerConfig {
        shards: shards as usize,
        group_capacity: clients,
        ..ServerConfig::default()
    };
    let server =
        GroupServer::bind(ProcessId::new(0), "127.0.0.1:0", cfg).expect("bind group server");
    let handles: Vec<Client> =
        (1..=clients).map(|i| Client::connect(i, &server)).collect();

    // Phase 1 — client 1 creates every group.
    let creator = handles.first().expect("at least one client");
    let t = Instant::now();
    for g in 0..groups {
        let reply = creator.request(&format!("create bench-g{g}"));
        assert!(reply.starts_with("ok create "), "create failed: {reply}");
    }
    let create_secs = t.elapsed().as_secs_f64();
    let create_rate = groups as f64 / create_secs.max(f64::EPSILON);

    // Phase 2 — every other client joins every group.
    let t = Instant::now();
    for c in handles.iter().skip(1) {
        for g in 0..groups {
            let reply = c.request(&format!("join bench-g{g}"));
            assert!(reply.starts_with("ok join "), "join failed: {reply}");
        }
    }
    let join_ops = groups * clients.saturating_sub(1);
    let join_rate = join_ops as f64 / t.elapsed().as_secs_f64().max(f64::EPSILON);

    // Phase 3 — multicast round-robin across groups and clients, then
    // wait for every expected delivery to land back on a client socket
    // (each group member, sender included, observes each multicast).
    let expected = sends_total * clients;
    let t = Instant::now();
    for i in 0..sends_total {
        let gid = GroupId::new(1 + i % groups);
        let sender = &handles[(i % clients) as usize];
        sender.send(gid, &format!("bench-{i}"));
    }
    let deadline = Instant::now() + Duration::from_secs(600);
    let observed = loop {
        let observed: u64 = handles.iter().map(|c| c.deliveries.load(Ordering::Relaxed)).sum();
        if observed >= expected {
            break observed;
        }
        assert!(
            Instant::now() < deadline,
            "deliveries stalled: {observed}/{expected} after {:?}",
            t.elapsed()
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    let delivery_secs = t.elapsed().as_secs_f64();
    let delivery_rate = observed as f64 / delivery_secs.max(f64::EPSILON);

    // Judge: every group's spec checkers green, nothing unroutable.
    for g in 1..=groups {
        let verdict = server.shards().finish(GroupId::new(g)).expect("hosted group");
        assert!(verdict.is_empty(), "group {g} violations: {verdict:?}");
    }
    let stats = server.stats();
    assert_eq!(stats.frames_unroutable, 0, "unroutable frames during the run: {stats:?}");
    assert_eq!(stats.groups_hosted, groups, "hosted-group count: {stats:?}");

    let wall_secs = wall_start.elapsed().as_secs_f64();
    println!(
        "group_scaling: {groups} groups x {clients} clients ({shards} shards): \
         create {create_rate:.0}/s, join {join_rate:.0}/s, \
         {observed} deliveries at {delivery_rate:.0}/s, wall {wall_secs:.2}s"
    );
    emit_json(
        groups,
        clients,
        shards,
        sends_total,
        create_rate,
        join_rate,
        observed,
        delivery_rate,
        stats.frames_routed,
        stats.frames_unroutable,
        wall_secs,
    );

    let floor = env_u64("VSGM_GROUPS_FLOOR", 0);
    assert!(
        floor == 0 || delivery_rate >= floor as f64,
        "deliveries/s {delivery_rate:.0} below floor {floor}"
    );
}
