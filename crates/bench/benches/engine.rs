//! Engine micro-benchmarks: the data structures and hot paths under the
//! protocol (not a paper experiment; used to keep the simulator honest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vsgm_core::state::MsgSeq;
use vsgm_core::{Config, Endpoint, Input};
use vsgm_ioa::{SimRng, SimTime};
use vsgm_net::{LatencyModel, SimNet};
use vsgm_types::{AppMsg, Cut, NetMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn bench_msg_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/msg_seq");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("push_1000", |b| {
        b.iter(|| {
            let mut s = MsgSeq::default();
            for _ in 0..1000 {
                s.push(AppMsg::from("x"));
            }
            s.longest_prefix()
        })
    });
    g.bench_function("sparse_fill_then_prefix", |b| {
        b.iter(|| {
            let mut s = MsgSeq::default();
            for i in (1..=1000).rev() {
                s.set(i, AppMsg::from("x"));
            }
            s.longest_prefix()
        })
    });
    g.finish();
}

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/simnet");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("send_pop_1000", |b| {
        b.iter(|| {
            let procs: Vec<ProcessId> = (1..=8).map(ProcessId::new).collect();
            let mut net: SimNet<NetMsg> =
                SimNet::new(procs.clone(), LatencyModel::lan(), SimRng::new(1));
            let everyone: ProcSet = procs.iter().copied().collect();
            net.set_reliable(ProcessId::new(1), everyone.clone());
            let msg = NetMsg::App(AppMsg::from("payload"));
            for i in 0..1000 {
                net.send(SimTime::from_micros(i), ProcessId::new(1), &everyone, &msg);
            }
            let mut total = 0;
            while let Some(t) = net.next_arrival() {
                total += net.pop_ready(t).len();
            }
            total
        })
    });
    g.finish();
}

fn bench_endpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/endpoint");
    for n in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("sync_round_local", n), &n, |b, &n| {
            // Time the purely local part of a sync round at one endpoint:
            // start_change handling + block + sync-message production.
            let members: ProcSet = (1..=n as u64).map(ProcessId::new).collect();
            b.iter(|| {
                let mut ep = Endpoint::new(ProcessId::new(1), Config::default());
                ep.handle(Input::StartChange {
                    cid: StartChangeId::new(1),
                    set: members.clone(),
                });
                ep.poll();
                ep.handle(Input::BlockOk);
                ep.poll().len()
            })
        });
    }
    g.bench_function("deliver_100_msgs", |b| {
        // Receipt + delivery of a 100-message stream within a view.
        let p1 = ProcessId::new(1);
        let p2 = ProcessId::new(2);
        let view = View::new(
            ViewId::new(1, 0),
            [p1, p2],
            [(p1, StartChangeId::new(1)), (p2, StartChangeId::new(1))],
        );
        b.iter(|| {
            let mut ep = Endpoint::new(p2, Config::default());
            let members: ProcSet = [p1, p2].into_iter().collect();
            ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: members });
            ep.poll();
            ep.handle(Input::BlockOk);
            ep.poll();
            ep.handle(Input::MbrshpView(view.clone()));
            ep.handle(Input::Net {
                from: p1,
                msg: NetMsg::Sync(vsgm_types::SyncPayload {
                    cid: StartChangeId::new(1),
                    view: Some(View::initial(p1)),
                    cut: Cut::new(),
                }),
            });
            ep.poll();
            ep.handle(Input::Net { from: p1, msg: NetMsg::ViewMsg(view.clone()) });
            for k in 0..100 {
                ep.handle(Input::Net {
                    from: p1,
                    msg: NetMsg::App(AppMsg::from(format!("{k}").as_str())),
                });
            }
            ep.poll().len()
        })
    });
    g.finish();
}

fn bench_view_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/view");
    let big = View::new(
        ViewId::new(1, 0),
        (1..=64).map(ProcessId::new),
        (1..=64).map(|i| (ProcessId::new(i), StartChangeId::new(1))),
    );
    g.bench_function("clone_64_member_view", |b| b.iter(|| big.clone()));
    g.bench_function("intersection_64", |b| {
        b.iter(|| big.intersection(&big).count())
    });
    g.finish();
}

criterion_group!(benches, bench_msg_seq, bench_simnet, bench_endpoint, bench_view_ops);
criterion_main!(benches);
