//! E1/E2 — one-round (paper) vs two-round (baseline) view change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;
use vsgm_harness::sim::procs;
use vsgm_harness::{Sim, SimOptions};

/// With `VSGM_OBS_SNAPSHOT=<dir>` set, re-runs an instrumented 8-process
/// view-change scenario and writes the observability snapshot (span
/// latencies, messages per view change) to `<dir>/view_change.json`.
fn dump_obs_snapshot() {
    let Ok(dir) = std::env::var("VSGM_OBS_SNAPSHOT") else { return };
    let mut sim = Sim::new_paper(8, Default::default(), SimOptions::default());
    sim.enable_obs();
    sim.reconfigure(&procs(8));
    sim.run_to_quiescence();
    for round in 0..4u64 {
        let keep = procs(8 - (round % 2));
        sim.reconfigure(&keep);
        sim.run_to_quiescence();
    }
    let snap = vsgm_obs::Snapshot::capture(&sim.take_obs().expect("obs on"));
    let path = std::path::Path::new(&dir).join("view_change.json");
    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, snap.to_json_pretty()))
        .unwrap_or_else(|e| eprintln!("VSGM_OBS_SNAPSHOT: cannot write {}: {e}", path.display()));
    println!("obs snapshot written to {}", path.display());
}

fn bench(c: &mut Criterion) {
    // Regenerate the table once so `cargo bench` output documents the
    // series the paper's claim is judged on.
    println!("{}", experiments::e1_view_change(&[2, 4, 8, 16]).render());
    dump_obs_snapshot();
    let mut g = c.benchmark_group("E1_view_change");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("paper_1round", n), &n, |b, &n| {
            b.iter(|| experiments::paper_view_change(n, Default::default(), 42))
        });
        g.bench_with_input(BenchmarkId::new("baseline_2round", n), &n, |b, &n| {
            b.iter(|| experiments::baseline_view_change(n, 42))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
