//! E1/E2 — one-round (paper) vs two-round (baseline) view change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsgm_harness::experiments;

fn bench(c: &mut Criterion) {
    // Regenerate the table once so `cargo bench` output documents the
    // series the paper's claim is judged on.
    println!("{}", experiments::e1_view_change(&[2, 4, 8, 16]).render());
    let mut g = c.benchmark_group("E1_view_change");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("paper_1round", n), &n, |b, &n| {
            b.iter(|| experiments::paper_view_change(n, Default::default(), 42))
        });
        g.bench_with_input(BenchmarkId::new("baseline_2round", n), &n, |b, &n| {
            b.iter(|| experiments::baseline_view_change(n, 42))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
