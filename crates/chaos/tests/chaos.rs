//! End-to-end chaos tests: deterministic replay, oracle validation (a
//! deliberately injected protocol bug is caught and shrunk to a tiny
//! reproducer), scenario legality checking, and pinned §8 recovery
//! regression scenarios.

use vsgm_chaos::{
    batch_for_seed, generate, minimize, run_scenario, Artifact, ChaosConfig, Failure, RunOptions,
    validate,
};
use vsgm_harness::{Scenario, Step};

fn run_clean(s: &Scenario) -> vsgm_chaos::RunOutcome {
    let out = run_scenario(s, &RunOptions::default());
    assert!(
        out.failure.is_none(),
        "scenario (seed {}) failed: {:?}\n{}",
        s.seed,
        out.failure,
        s.to_json()
    );
    out
}

#[test]
fn chaos_search_is_deterministic_and_clean() {
    let cfg = ChaosConfig::default();
    let opts = RunOptions::default();
    for seed in 0..25 {
        let s = generate(seed, &cfg);
        let a = run_scenario(&s, &opts);
        let b = run_scenario(&s, &opts);
        assert!(a.failure.is_none(), "seed {seed}: {:?}", a.failure);
        // Same seed ⇒ byte-identical artifact (report determinism).
        assert_eq!(
            Artifact::new(&s, &a, None).to_json(),
            Artifact::new(&s, &b, None).to_json(),
            "seed {seed} replay diverged"
        );
        assert_eq!(a.events, b.events);
    }
}

#[test]
fn injected_sync_bug_is_caught_by_the_liveness_oracle() {
    // Suppressing a single sync message of the final view change is a
    // real protocol bug (a cut/sync silently skipped). The oracle must
    // notice: across a modest seed batch, many runs fail, and the
    // failures are liveness violations.
    let cfg = ChaosConfig::default();
    let opts = RunOptions { skip_sync_at_stabilization: Some(0) };
    let mut caught = 0;
    let mut liveness = 0;
    for seed in 0..20 {
        let s = generate(seed, &cfg);
        if let Some(f) = run_scenario(&s, &opts).failure {
            caught += 1;
            if f.signature().contains("LIVENESS") {
                liveness += 1;
            }
        }
    }
    assert!(caught >= 5, "only {caught}/20 sabotaged runs were caught");
    assert!(liveness >= 5, "only {liveness} failures were liveness violations");
}

#[test]
fn injected_bug_shrinks_to_a_tiny_reproducer() {
    // Acceptance criterion: the injected bug minimizes to ≤ 6 steps.
    let cfg = ChaosConfig::default();
    let opts = RunOptions { skip_sync_at_stabilization: Some(0) };
    let seed = (0..20)
        .find(|&s| run_scenario(&generate(s, &cfg), &opts).failure.is_some())
        .expect("no seed reproduced the injected bug");
    let scenario = generate(seed, &cfg);
    let m = minimize(&scenario, &opts).expect("failing scenario must minimize");
    assert!(
        m.scenario.steps.len() <= 6,
        "reproducer still has {} steps:\n{}",
        m.scenario.steps.len(),
        m.scenario.to_json()
    );
    let f = m.outcome.failure.as_ref().expect("minimized scenario still fails");
    assert!(matches!(f, Failure::Violations(_)), "{f:?}");
    // The artifact carries both scenarios and the journal of the failure.
    let artifact = Artifact::new(&scenario, &m.outcome, Some(&m.scenario));
    assert_eq!(artifact.kind, "violations");
    assert_eq!(artifact.minimized.len(), 1);
    assert!(!artifact.journal.is_empty(), "failing run must capture its journal");
    let json = artifact.to_json();
    let min_steps = m.scenario.steps.len();
    assert!(json.contains("\"seed\""), "{json}");
    // And minimization itself is deterministic.
    let m2 = minimize(&scenario, &opts).expect("second minimize");
    assert_eq!(m2.scenario, m.scenario);
    assert_eq!(m2.scenario.steps.len(), min_steps);
}

#[test]
fn illegal_scenarios_are_rejected_not_run() {
    // form_view nobody asked for.
    let s = Scenario {
        n: 3,
        seed: 0,
        steps: vec![Step::FormView { members: vec![1, 2] }],
    };
    assert!(validate(&s).is_err());
    let out = run_scenario(&s, &RunOptions::default());
    assert!(matches!(out.failure, Some(Failure::InvalidScenario(_))), "{:?}", out.failure);

    // form_view wider than the pending suggestion.
    let s = Scenario {
        n: 3,
        seed: 0,
        steps: vec![
            Step::StartChange { members: vec![1, 2] },
            Step::FormView { members: vec![1, 2, 3] },
        ],
    };
    assert!(validate(&s).is_err());

    // Process number out of range.
    let s = Scenario { n: 2, seed: 0, steps: vec![Step::Send { p: 7, msg: "x".into() }] };
    assert!(validate(&s).is_err());

    // Recovery consumes the pending slot: a form_view after
    // crash+recover needs a fresh start_change.
    let s = Scenario {
        n: 2,
        seed: 0,
        steps: vec![
            Step::StartChange { members: vec![1, 2] },
            Step::Crash { p: 2 },
            Step::Recover { p: 2 },
            Step::FormView { members: vec![1, 2] },
        ],
    };
    assert!(validate(&s).is_err());
}

// --- Pinned §8 recovery regression scenarios -----------------------------
//
// Three handwritten chaos scenarios covering the recovery behaviours the
// paper's §8 calls out. Each must stay green under the full checker suite
// and actually exercise a RecoveryReset (observability journal).

#[test]
fn regression_crash_during_sync_round() {
    // A member dies in the middle of the sync round of an in-flight view
    // change; the survivors finish without it and it recovers later.
    let s = Scenario {
        n: 4,
        seed: 0xC4A0_51,
        steps: vec![
            Step::Faults { drop: 0.1, dup: 0.0, reorder_ms: 3, burst: 0.0 },
            Step::Reconfigure { members: vec![1, 2, 3, 4] },
            Step::Send { p: 1, msg: "a".into() },
            Step::Send { p: 3, msg: "b".into() },
            Step::StartChange { members: vec![1, 2, 3, 4] },
            Step::CrashDuringSync { p: 2 },
            Step::FormView { members: vec![1, 2, 3, 4] },
            Step::Run,
            Step::Recover { p: 2 },
            Step::Send { p: 2, msg: "back".into() },
        ],
    };
    let out = run_clean(&s);
    assert!(out.recovery_resets >= 1, "no RecoveryReset in the journal");
}

#[test]
fn regression_crash_during_sync_with_non_empty_batch() {
    // Pinned batching regression: endpoints run with a large batch (long
    // linger), so the sends below are still *held* in per-endpoint
    // batches when the view change starts — the change must force-flush
    // them before the cut, and a member crashing mid-sync on top of that
    // must not lose or duplicate any batched message. The seed is chosen
    // so `batch_for_seed` picks the large configuration.
    let s = Scenario {
        n: 4,
        seed: 0xC4A0_54,
        steps: vec![
            Step::Reconfigure { members: vec![1, 2, 3, 4] },
            Step::Send { p: 1, msg: "held-a".into() },
            Step::Send { p: 1, msg: "held-b".into() },
            Step::Send { p: 3, msg: "held-c".into() },
            Step::StartChange { members: vec![1, 2, 3, 4] },
            Step::CrashDuringSync { p: 2 },
            Step::FormView { members: vec![1, 2, 3, 4] },
            Step::Run,
            Step::Recover { p: 2 },
            Step::Send { p: 2, msg: "back".into() },
        ],
    };
    assert!(batch_for_seed(s.seed).enabled(), "seed must select a batched endpoint");
    let out = run_clean(&s);
    assert!(out.recovery_resets >= 1, "no RecoveryReset in the journal");
}

#[test]
fn regression_recover_into_cascading_view_change() {
    // A crashed member recovers while the survivors are already mid-way
    // through a cascade of membership changes.
    let s = Scenario {
        n: 4,
        seed: 0xC4A0_52,
        steps: vec![
            Step::Reconfigure { members: vec![1, 2, 3, 4] },
            Step::Send { p: 1, msg: "a".into() },
            Step::Crash { p: 3 },
            Step::StartChange { members: vec![1, 2, 4] },
            Step::FormView { members: vec![1, 2, 4] },
            Step::Recover { p: 3 },
            Step::StartChange { members: vec![1, 2, 3, 4] },
            Step::RunFor { ms: 5 },
        ],
    };
    let out = run_clean(&s);
    assert!(out.recovery_resets >= 1, "no RecoveryReset in the journal");
}

// --- Pinned self-stabilization regression scenarios ----------------------
//
// Violation classes found by the corruption-mode chaos sweep (DESIGN.md
// §15). Each was a real bug in the stabilization machinery — not the
// protocol — minimized by ddmin, fixed, and pinned here replayable.

#[test]
fn regression_reconciliation_mid_change_reissues_start_change() {
    // Sweep seeds 158/165: a member's audit reconciliation between
    // `start_change` and `form_view` clears its pending slot at the
    // membership oracle (reconciliation is a §8 crash/recover), and the
    // scripted `form_view` then panicked "no pending start_change". The
    // service must instead re-engage the reset member with a fresh
    // start_change before the view forms (`Sim::form_view`).
    let s = Scenario {
        n: 3,
        seed: 0xC4A0_55,
        steps: vec![
            Step::Reconfigure { members: vec![1, 2, 3] },
            Step::Send { p: 1, msg: "a".into() },
            Step::StartChange { members: vec![1, 2, 3] },
            Step::Corrupt { p: 2, kind: vsgm_core::CorruptionKind::ScrambleMembership },
            Step::RunFor { ms: 3 },
            Step::FormView { members: vec![1, 2, 3] },
            Step::Run,
        ],
    };
    let out = run_clean(&s);
    assert!(out.corruptions >= 1, "no corruption was injected");
    assert!(out.audit_reconciliations >= 1, "the audit never reconciled p2");
    assert!(out.convergence_us.is_some(), "corruption runs report convergence time");
}

#[test]
fn regression_stalled_change_corruption_judges_the_suffix_cleanly() {
    // Sweep seed 199 (minimized by ddmin to these four steps): a
    // scripted change left stalled at the corruption mark forced its
    // agreed-cut deliveries of deviation-window sends into the judged
    // suffix, where the fresh checkers had never seen the sends —
    // spurious WV_RFIFO/VS_RFIFO violations from the judge itself. The
    // stabilization phase now closes the deviation window at an epoch
    // boundary (complete reconfigure + quiescence) before the mark.
    let s = Scenario {
        n: 2,
        seed: 199,
        steps: vec![
            Step::Reconfigure { members: vec![1, 2] },
            Step::Corrupt { p: 1, kind: vsgm_core::CorruptionKind::TruncateMsgs },
            Step::Send { p: 2, msg: "m3".into() },
            Step::StartChange { members: vec![1, 2] },
        ],
    };
    let out = run_clean(&s);
    assert_eq!(out.corruptions, 1);
    assert!(out.convergence_us.is_some(), "split-trace judging must engage");
}

#[test]
fn regression_partition_heal_churn() {
    // Concurrent partitions with independent views, lossy reordered
    // links, heal-and-remerge, plus a crash during the remerge's sync.
    let s = Scenario {
        n: 5,
        seed: 0xC4A0_53,
        steps: vec![
            Step::Faults { drop: 0.2, dup: 0.0, reorder_ms: 5, burst: 0.02 },
            Step::Reconfigure { members: vec![1, 2, 3, 4, 5] },
            Step::Partition { groups: vec![vec![1, 2], vec![3, 4, 5]] },
            Step::StartChange { members: vec![1, 2] },
            Step::FormView { members: vec![1, 2] },
            Step::StartChange { members: vec![3, 4, 5] },
            Step::FormView { members: vec![3, 4, 5] },
            Step::Send { p: 1, msg: "left".into() },
            Step::Send { p: 4, msg: "right".into() },
            Step::Heal,
            Step::Reconfigure { members: vec![1, 2, 3, 4, 5] },
            Step::Partition { groups: vec![vec![1, 2, 3], vec![4, 5]] },
            Step::Send { p: 2, msg: "again".into() },
            Step::Heal,
            Step::CrashDuringSync { p: 4 },
            Step::Recover { p: 4 },
            Step::Send { p: 4, msg: "back".into() },
        ],
    };
    let out = run_clean(&s);
    assert!(out.recovery_resets >= 1, "no RecoveryReset in the journal");
}
