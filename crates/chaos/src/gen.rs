//! Seed → random legal [`Scenario`] generation.
//!
//! The generator mirrors the membership oracle's legality rules while it
//! emits steps (who has a pending `start_change` and with which suggested
//! set, who is crashed), so every produced script can run without
//! tripping the oracle's scenario-bug assertions:
//!
//! * `start_change`/`reconfigure` record `pending[m] = S` for every
//!   `m ∈ S` (and `reconfigure` immediately consumes it);
//! * `form_view(M)` is only emitted when every `m ∈ M` has a pending
//!   suggestion covering `M` — the generator picks a process `q` with a
//!   pending set `B` and forms the view over
//!   `M = {m ∈ B : pending[m] ⊇ B}` (never empty: `q` qualifies);
//! * `recover(p)` is only emitted for crashed processes, and the last
//!   process standing is never crashed.

use std::collections::{BTreeMap, BTreeSet};
use vsgm_core::CorruptionKind;
use vsgm_harness::{Scenario, Step};
use vsgm_ioa::SimRng;

/// Whether (and how) generated scenarios inject state corruption — the
/// self-stabilization chaos tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptMode {
    /// Classic chaos: no state corruption (the default).
    #[default]
    Off,
    /// Corruption steps with seed-drawn kinds (at least one per
    /// scenario).
    Any,
    /// Corruption steps of exactly this kind — the per-class convergence
    /// sweeps (experiment E11).
    Only(CorruptionKind),
}

impl CorruptMode {
    fn kind(self, rng: &mut SimRng) -> Option<CorruptionKind> {
        match self {
            CorruptMode::Off => None,
            CorruptMode::Any => rng.choose(&CorruptionKind::ALL).copied(),
            CorruptMode::Only(k) => Some(k),
        }
    }
}

/// Tuning knobs for scenario generation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Largest group size to draw (`n ∈ [2, max_procs]`).
    pub max_procs: u64,
    /// Most script steps to draw (after the opening fault plan and
    /// whole-group reconfiguration).
    pub max_steps: usize,
    /// Duplication probability for the generated fault plan. The default
    /// `0.0` keeps every run inside the `CO_RFIFO` envelope; setting it
    /// positive deliberately exceeds the envelope to prove the oracle
    /// notices (see `vsgm_net::FaultPlan::dup`).
    pub dup: f64,
    /// State-corruption injection mode. Anything but [`CorruptMode::Off`]
    /// guarantees at least one corruption step per scenario and switches
    /// the runner to split-trace convergence judging.
    pub corrupt: CorruptMode,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { max_procs: 5, max_steps: 16, dup: 0.0, corrupt: CorruptMode::Off }
    }
}

/// A non-empty random subset of `1..=n`, sorted.
fn subset(rng: &mut SimRng, n: u64) -> Vec<u64> {
    let mut all: Vec<u64> = (1..=n).collect();
    rng.shuffle(&mut all);
    let k = rng.range(1, n + 1) as usize;
    all.truncate(k);
    all.sort_unstable();
    all
}

/// Generates the random legal scenario for `seed` under `cfg`.
///
/// Deterministic: the same `(seed, cfg)` always yields the same scenario,
/// and the scenario embeds `seed` so the simulation schedule replays too.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> Scenario {
    let mut rng = SimRng::new(seed).fork(0xC4A0);
    let n = rng.range(2, cfg.max_procs.max(2) + 1);
    let mut steps = Vec::new();

    // Most runs start under an in-envelope fault plan (loss + jitter).
    if rng.chance(0.7) {
        steps.push(Step::Faults {
            drop: if rng.chance(0.6) { rng.range(1, 26) as f64 / 100.0 } else { 0.0 },
            dup: cfg.dup,
            reorder_ms: rng.range(0, 9),
            burst: if rng.chance(0.3) { 0.02 } else { 0.0 },
        });
    }
    // Establish the full group so there is protocol state to perturb.
    steps.push(Step::Reconfigure { members: (1..=n).collect() });

    // Oracle mirrors.
    let mut pending: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut crashed: BTreeSet<u64> = BTreeSet::new();
    let mut msg_no = 0u64;

    let floor = cfg.max_steps.min(4) as u64;
    let count = rng.range(floor, cfg.max_steps as u64 + 1);
    for _ in 0..count {
        let alive: Vec<u64> = (1..=n).filter(|p| !crashed.contains(p)).collect();
        let roll = rng.range(0, 100);
        let step = if roll < 32 {
            // A quarter of the send mass becomes state corruption when
            // the self-stabilization tier is on (`Off` draws nothing, so
            // classic generation is byte-identical).
            let kind = if roll >= 24 { cfg.corrupt.kind(&mut rng) } else { None };
            match kind {
                Some(kind) => {
                    let p = *rng.choose(&alive).unwrap_or(&1);
                    Some(Step::Corrupt { p, kind })
                }
                None => None, // plain send (the shared fallback below)
            }
        } else if roll < 42 {
            Some(Step::RunFor { ms: rng.range(1, 25) })
        } else if roll < 48 {
            Some(Step::Run)
        } else if roll < 56 {
            let mut procs: Vec<u64> = (1..=n).collect();
            rng.shuffle(&mut procs);
            let cut = rng.range(1, n) as usize;
            let mut left: Vec<u64> = procs.get(..cut).unwrap_or(&[]).to_vec();
            let mut right: Vec<u64> = procs.get(cut..).unwrap_or(&[]).to_vec();
            left.sort_unstable();
            right.sort_unstable();
            Some(Step::Partition { groups: vec![left, right] })
        } else if roll < 62 {
            Some(Step::Heal)
        } else if roll < 70 && alive.len() > 1 {
            // Never crash the last process standing.
            let p = *rng.choose(&alive).unwrap_or(&1);
            crashed.insert(p);
            if rng.chance(0.4) {
                Some(Step::CrashDuringSync { p })
            } else {
                Some(Step::Crash { p })
            }
        } else if roll < 76 && !crashed.is_empty() {
            let down: Vec<u64> = crashed.iter().copied().collect();
            let p = *rng.choose(&down).unwrap_or(&1);
            crashed.remove(&p);
            pending.remove(&p); // recovery resets the oracle's pending slot
            Some(Step::Recover { p })
        } else if roll < 88 {
            let s = subset(&mut rng, n);
            for &m in &s {
                pending.insert(m, s.iter().copied().collect());
            }
            Some(Step::StartChange { members: s })
        } else {
            // form_view: only over processes whose pending suggestion
            // covers the base set; fall back to a cascade otherwise.
            let with_pending: Vec<u64> = pending.keys().copied().collect();
            match rng.choose(&with_pending).copied() {
                Some(q) => {
                    let base = pending.get(&q).cloned().unwrap_or_default();
                    let members: Vec<u64> = base
                        .iter()
                        .copied()
                        .filter(|m| {
                            pending.get(m).is_some_and(|sug| base.is_subset(sug))
                        })
                        .collect();
                    for m in &members {
                        pending.remove(m);
                    }
                    Some(Step::FormView { members })
                }
                None => {
                    let s = subset(&mut rng, n);
                    for &m in &s {
                        pending.insert(m, s.iter().copied().collect());
                    }
                    Some(Step::StartChange { members: s })
                }
            }
        };
        steps.push(step.unwrap_or_else(|| {
            msg_no += 1;
            let p = *rng.choose(&alive).unwrap_or(&1);
            Step::Send { p, msg: format!("m{msg_no}") }
        }));
    }

    // The corruption tiers promise at least one injection per scenario;
    // top up right after the opening reconfiguration (everyone is alive
    // and holds freshly established view state there).
    if !steps.iter().any(|s| matches!(s, Step::Corrupt { .. })) {
        if let Some(kind) = cfg.corrupt.kind(&mut rng) {
            let p = rng.range(1, n + 1);
            let at = steps
                .iter()
                .position(|s| matches!(s, Step::Reconfigure { .. }))
                .map_or(steps.len(), |i| i + 1);
            steps.insert(at, Step::Corrupt { p, kind });
        }
    }

    Scenario { n: n as usize, seed, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::validate;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        for seed in 0..20 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
        assert_ne!(generate(1, &cfg), generate(2, &cfg));
    }

    #[test]
    fn generated_scenarios_are_legal() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            assert!(s.n >= 2 && s.n as u64 <= cfg.max_procs);
            validate(&s).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", s.to_json()));
        }
    }

    #[test]
    fn generator_covers_the_step_space() {
        let cfg = ChaosConfig { max_procs: 6, max_steps: 24, dup: 0.0, corrupt: CorruptMode::Off };
        let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
        for seed in 0..300 {
            for step in &generate(seed, &cfg).steps {
                kinds.insert(match step {
                    Step::Send { .. } => "send",
                    Step::Reconfigure { .. } => "reconfigure",
                    Step::StartChange { .. } => "start_change",
                    Step::FormView { .. } => "form_view",
                    Step::Partition { .. } => "partition",
                    Step::Heal => "heal",
                    Step::Crash { .. } => "crash",
                    Step::Recover { .. } => "recover",
                    Step::Run => "run",
                    Step::RunFor { .. } => "run_for",
                    Step::Faults { .. } => "faults",
                    Step::CrashDuringSync { .. } => "crash_during_sync",
                    Step::Corrupt { .. } => "corrupt",
                });
            }
        }
        for kind in [
            "send",
            "reconfigure",
            "start_change",
            "form_view",
            "partition",
            "heal",
            "crash",
            "recover",
            "run",
            "run_for",
            "faults",
            "crash_during_sync",
        ] {
            assert!(kinds.contains(kind), "generator never produced {kind}");
        }
    }

    #[test]
    fn corrupt_off_never_injects_and_matches_the_classic_stream() {
        let classic = ChaosConfig::default();
        for seed in 0..100 {
            let s = generate(seed, &classic);
            assert!(
                !s.steps.iter().any(|st| matches!(st, Step::Corrupt { .. })),
                "seed {seed} injected corruption with the tier off"
            );
        }
    }

    #[test]
    fn corrupt_any_guarantees_an_injection_and_covers_every_kind() {
        let cfg = ChaosConfig { corrupt: CorruptMode::Any, ..ChaosConfig::default() };
        let mut kinds: BTreeSet<CorruptionKind> = BTreeSet::new();
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            validate(&s).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let injected: Vec<CorruptionKind> = s
                .steps
                .iter()
                .filter_map(|st| match st {
                    Step::Corrupt { kind, .. } => Some(*kind),
                    _ => None,
                })
                .collect();
            assert!(!injected.is_empty(), "seed {seed}: no corruption step");
            kinds.extend(injected);
        }
        for k in CorruptionKind::ALL {
            assert!(kinds.contains(&k), "Any mode never drew {}", k.name());
        }
    }

    #[test]
    fn corrupt_only_pins_the_kind() {
        for k in CorruptionKind::ALL {
            let cfg = ChaosConfig { corrupt: CorruptMode::Only(k), ..ChaosConfig::default() };
            for seed in 0..20 {
                for step in &generate(seed, &cfg).steps {
                    if let Step::Corrupt { kind, .. } = step {
                        assert_eq!(*kind, k);
                    }
                }
            }
        }
    }

    #[test]
    fn dup_knob_flows_into_the_fault_plan() {
        let cfg = ChaosConfig { dup: 0.5, ..ChaosConfig::default() };
        let found = (0..50).any(|seed| {
            generate(seed, &cfg)
                .steps
                .iter()
                .any(|s| matches!(s, Step::Faults { dup, .. } if *dup == 0.5))
        });
        assert!(found, "no generated scenario carried the dup knob");
    }
}
