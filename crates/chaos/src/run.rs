//! Scenario execution under the full oracle, and the failure artifact.
//!
//! A chaos run has three acts:
//!
//! 1. **Validate** the script against the membership oracle's legality
//!    rules ([`validate`]), so oracle panics about nonsense scripts are
//!    reported as [`Failure::InvalidScenario`] instead of masquerading as
//!    protocol bugs.
//! 2. **Execute** every step with all spec checkers online, each step
//!    under `catch_unwind` so a panic (broken paper invariant, livelock
//!    guard) still yields a structured failure with the observability
//!    journal intact.
//! 3. **Stabilize and judge**: clear the fault plan, heal the network,
//!    recover everyone, reconfigure to the full group, run to quiescence,
//!    and attach a Property 4.2 [`LivenessSpec`] for the final view
//!    (attachment replays the recorded trace, so the checker judges the
//!    whole run). After stabilization the premise of Property 4.2 holds,
//!    so "everyone installs the final view and sees every stable-view
//!    message" is *checkable* — the liveness oracle that catches silently
//!    stalled view changes.

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use vsgm_core::{BatchConfig, Config};
use vsgm_harness::{apply_step, Scenario, Sim, SimOptions, Step};
use vsgm_ioa::{SimTime, Violation};
use vsgm_net::{FaultPlan, LatencyModel};
use vsgm_obs::ObsEvent;
use vsgm_spec::LivenessSpec;
use vsgm_types::{AppMsg, ProcessId};

/// Options controlling a chaos run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Deliberate protocol sabotage for oracle validation: arm
    /// `Sim::suppress_sync` with this relative index just before the
    /// stabilization phase, silently swallowing the n-th cut/sync message
    /// of the final view change. A healthy oracle must convert this into
    /// a liveness (or virtual-synchrony) violation — used by the
    /// `--inject-bug` flag and the acceptance tests, never by default.
    pub skip_sync_at_stabilization: Option<u64>,
}

/// Why a chaos run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum Failure {
    /// One or more spec checkers rejected the trace.
    Violations(Vec<Violation>),
    /// The run panicked (paper-invariant assertion, livelock guard, ...).
    Panic(String),
    /// The script itself is illegal for the membership oracle.
    InvalidScenario(String),
}

impl Failure {
    /// Coarse class, used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Violations(_) => "violations",
            Failure::Panic(_) => "panic",
            Failure::InvalidScenario(_) => "invalid_scenario",
        }
    }

    /// Matching key for the minimizer: a candidate reproduces the
    /// original failure iff the signatures agree (same class and, for
    /// violations, same first checker — so shrinking cannot wander from
    /// a liveness bug to an unrelated safety complaint).
    pub fn signature(&self) -> String {
        match self {
            Failure::Violations(vs) => {
                let checker = vs.first().map(|v| v.checker.as_str()).unwrap_or("");
                format!("violations:{checker}")
            }
            Failure::Panic(_) => "panic".to_string(),
            Failure::InvalidScenario(_) => "invalid_scenario".to_string(),
        }
    }

    /// Human-readable lines describing the failure.
    pub fn details(&self) -> Vec<String> {
        match self {
            Failure::Violations(vs) => vs.iter().map(|v| v.to_string()).collect(),
            Failure::Panic(m) => vec![format!("panic: {m}")],
            Failure::InvalidScenario(m) => vec![format!("invalid scenario: {m}")],
        }
    }
}

/// Result of one chaos run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The scenario's seed (replay handle).
    pub seed: u64,
    /// `None` = the full oracle accepted the run.
    pub failure: Option<Failure>,
    /// Total recorded trace events.
    pub events: usize,
    /// §8 recovery resets observed in the journal.
    pub recovery_resets: u64,
    /// Messages the fault injector dropped.
    pub injected_drops: u64,
    /// State corruptions actually injected (0 = classic chaos run).
    pub corruptions: u64,
    /// Audit-triggered endpoint reconciliations observed in the journal.
    pub audit_reconciliations: u64,
    /// Simulated µs from the last injected corruption to the
    /// post-reconciliation quiescent point (corruption runs only).
    pub convergence_us: Option<u64>,
    /// `vsgm-obs` journal (JSON lines) — captured only for failing runs.
    pub journal: String,
}

/// Statically checks that `scenario` is legal for the membership oracle,
/// mirroring its panicking preconditions (see `vsgm_membership`):
/// `form_view(M)` needs every `m ∈ M` to hold a pending `start_change`
/// whose suggested set covers `M`; `recover` clears the pending slot;
/// process numbers must lie in `1..=n`.
///
/// # Errors
///
/// Returns a description of the first illegal step.
pub fn validate(scenario: &Scenario) -> Result<(), String> {
    let n = scenario.n as u64;
    if n == 0 {
        return Err("scenario has no processes".to_string());
    }
    let check_p = |i: usize, p: u64| -> Result<(), String> {
        if p >= 1 && p <= n {
            Ok(())
        } else {
            Err(format!("step {i}: process {p} outside 1..={n}"))
        }
    };
    let check_members = |i: usize, members: &[u64]| -> Result<(), String> {
        if members.is_empty() {
            return Err(format!("step {i}: empty member set"));
        }
        for &m in members {
            check_p(i, m)?;
        }
        Ok(())
    };
    let mut pending: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut crashed: BTreeSet<u64> = BTreeSet::new();
    for (i, step) in scenario.steps.iter().enumerate() {
        match step {
            Step::Send { p, .. } => check_p(i, *p)?,
            Step::Crash { p } | Step::CrashDuringSync { p } => {
                check_p(i, *p)?;
                crashed.insert(*p);
            }
            Step::Recover { p } => {
                check_p(i, *p)?;
                // Recovery of a live process is a harness no-op; only a
                // real recovery clears the oracle's pending slot.
                if crashed.remove(p) {
                    pending.remove(p);
                }
            }
            Step::Partition { groups } => {
                for g in groups {
                    for &m in g {
                        check_p(i, m)?;
                    }
                }
            }
            Step::StartChange { members } => {
                check_members(i, members)?;
                for &m in members {
                    pending.insert(m, members.iter().copied().collect());
                }
            }
            Step::Reconfigure { members } => {
                check_members(i, members)?;
                // start_change for `members` immediately consumed by the
                // formed view.
                for &m in members {
                    pending.remove(&m);
                }
            }
            Step::FormView { members } => {
                check_members(i, members)?;
                let set: BTreeSet<u64> = members.iter().copied().collect();
                for &m in members {
                    match pending.get(&m) {
                        Some(sug) if set.is_subset(sug) => {}
                        Some(_) => {
                            return Err(format!(
                                "step {i}: form_view {members:?} not covered by \
                                 {m}'s pending start_change"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "step {i}: form_view {members:?} but {m} has no \
                                 pending start_change"
                            ));
                        }
                    }
                }
                for &m in members {
                    pending.remove(&m);
                }
            }
            // Corruption of a crashed process is a harness no-op, so any
            // in-range target is legal.
            Step::Corrupt { p, .. } => check_p(i, *p)?,
            Step::Heal | Step::Run | Step::RunFor { .. } | Step::Faults { .. } => {}
        }
    }
    Ok(())
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Endpoint batching configuration derived from a scenario seed: a third
/// of chaos runs exercise each of unbatched, small-batch, and large-batch
/// endpoints, so the full oracle (all spec checkers plus Property 4.2
/// liveness) continuously judges the batching path under faults. Pure in
/// the seed, so replay keeps the same configuration.
pub fn batch_for_seed(seed: u64) -> BatchConfig {
    match seed % 3 {
        1 => BatchConfig::small(),
        2 => BatchConfig::large(),
        _ => BatchConfig::off(),
    }
}

/// Runs `scenario` under the full oracle and judges the outcome.
///
/// Deterministic: the schedule, faults, and verdict are pure functions of
/// the scenario (which embeds its seed) and `opts`. The endpoint batching
/// mode is itself seed-derived ([`batch_for_seed`]).
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> RunOutcome {
    if let Err(e) = validate(scenario) {
        return RunOutcome {
            seed: scenario.seed,
            failure: Some(Failure::InvalidScenario(e)),
            events: 0,
            recovery_resets: 0,
            injected_drops: 0,
            corruptions: 0,
            audit_reconciliations: 0,
            convergence_us: None,
            journal: String::new(),
        };
    }
    // Corruption scenarios run the self-stabilization protocol: the
    // endpoint audit is armed, the *online* checkers are off (the
    // deviation window between injection and reconciliation is allowed to
    // break safety), and the verdict comes from split-trace judging
    // (`vsgm_spec::stabilize`) after the run.
    let corrupting = scenario.steps.iter().any(|s| matches!(s, Step::Corrupt { .. }));
    let mut sim = Sim::new_paper(
        scenario.n,
        Config {
            batch: batch_for_seed(scenario.seed),
            audit: corrupting,
            ..Config::default()
        },
        SimOptions {
            seed: scenario.seed,
            latency: LatencyModel::lan(),
            check: !corrupting,
            shuffle_polling: true,
        },
    );
    sim.enable_obs();
    let mut panicked: Option<String> = None;
    for step in &scenario.steps {
        let r = catch_unwind(AssertUnwindSafe(|| {
            apply_step(&mut sim, step);
            sim.assert_paper_invariants();
        }));
        if let Err(p) = r {
            panicked = Some(panic_text(p));
            break;
        }
    }
    let mut convergence_us = None;
    let mut split_violations: Option<Vec<Violation>> = None;
    if panicked.is_none() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            // Stabilization: stop injecting, heal, recover everyone, and
            // reconfigure to the full group — from here Property 4.2's
            // premise holds, so liveness is checkable at quiescence.
            sim.set_fault_plan(FaultPlan::none());
            sim.heal();
            for i in 1..=(scenario.n as u64) {
                let p = ProcessId::new(i);
                if sim.endpoint(p).is_crashed() {
                    sim.recover(p);
                }
            }
            if corrupting {
                // Give every damaged endpoint a tick window so the audit
                // detects and reconciles *before* the verification
                // reconfigure, then let the reconciliations drain.
                sim.run_for(SimTime::from_millis(5));
            }
            sim.run_to_quiescence();
            let all = sim.all_procs();
            if corrupting {
                // Close the deviation window at an *epoch boundary*:
                // complete a full view change and drain it, so every
                // cross-window obligation (agreed cuts force delivery of
                // messages sent during the deviation window) is settled
                // before the mark and the judged suffix references only
                // post-mark traffic.
                sim.reconfigure(&all);
                sim.run_to_quiescence();
            }
            // Convergence point: quiescent, reconciled, re-formed.
            let stabilized = (sim.trace().len(), sim.now());
            // Deliberate sabotage hook (oracle validation): swallow the
            // n-th sync message of the *final* (judged) view change.
            if let Some(nth) = opts.skip_sync_at_stabilization {
                sim.suppress_sync(nth);
            }
            let v = sim.reconfigure(&all);
            sim.run_to_quiescence();
            if corrupting {
                // Post-convergence probe: one multicast per member must
                // flow through the reconciled group.
                for p in all.iter() {
                    sim.send(*p, AppMsg::from(format!("probe-{p}").as_str()));
                }
                sim.run_to_quiescence();
            } else {
                sim.add_checker(LivenessSpec::new(v.clone()));
            }
            sim.assert_paper_invariants();
            (stabilized, v)
        }));
        match r {
            Ok(((stabilized_len, stabilized_at), final_view)) => {
                if let Some((injection, _)) = sim.corruption_mark() {
                    let report = vsgm_spec::judge_split(
                        sim.trace().entries(),
                        injection,
                        stabilized_len,
                        Some(final_view),
                    );
                    convergence_us = sim.last_corruption().map(|t| {
                        stabilized_at.as_micros().saturating_sub(t.as_micros())
                    });
                    split_violations = Some(report.violations());
                } else if corrupting {
                    // Every corruption step targeted a crashed process
                    // (no-op): judge the whole trace classically, offline
                    // (the online checkers were disarmed above).
                    split_violations =
                        Some(vsgm_spec::judge_trace(sim.trace().entries(), Some(final_view)));
                }
            }
            Err(p) => panicked = Some(panic_text(p)),
        }
    }
    let failure = match panicked {
        Some(msg) => Some(Failure::Panic(msg)),
        None => {
            let violations = match split_violations {
                Some(vs) => vs,
                None => sim.finish(),
            };
            if violations.is_empty() {
                None
            } else {
                Some(Failure::Violations(violations))
            }
        }
    };
    let injected_drops = sim.fault_stats().injected_drops;
    let events = sim.trace().len();
    let (recovery_resets, audit_reconciliations, corruptions, journal) = match sim.take_obs() {
        Some(rec) => (
            rec.journal().count(ObsEvent::RecoveryReset),
            rec.journal().count(ObsEvent::AuditReconciled),
            rec.journal().count(ObsEvent::CorruptionInjected),
            if failure.is_some() { rec.journal().to_json_lines() } else { String::new() },
        ),
        None => (0, 0, 0, String::new()),
    };
    RunOutcome {
        seed: scenario.seed,
        failure,
        events,
        recovery_resets,
        injected_drops,
        corruptions,
        audit_reconciliations,
        convergence_us,
        journal,
    }
}

/// Self-contained failure artifact: the seed, the (possibly minimized)
/// scenario, the failure description, and the observability journal —
/// everything needed to file, replay, and debug the failure.
#[derive(Debug, Serialize)]
pub struct Artifact {
    /// Replay handle: `chaos --seed <seed>` regenerates the scenario.
    pub seed: u64,
    /// Failure class (`violations` / `panic` / `invalid_scenario`),
    /// or `pass`.
    pub kind: String,
    /// Human-readable failure lines.
    pub detail: Vec<String>,
    /// The failing scenario, replayable with `Scenario::from_json`.
    pub scenario: Scenario,
    /// The minimized reproducer, when minimization ran (empty otherwise —
    /// a 0/1-element list keeps the vendored serde surface simple).
    pub minimized: Vec<Scenario>,
    /// `vsgm-obs` journal lines of the failing run.
    pub journal: Vec<String>,
}

impl Artifact {
    /// Builds the artifact for a run (plus optional minimized scenario).
    pub fn new(scenario: &Scenario, outcome: &RunOutcome, minimized: Option<&Scenario>) -> Self {
        Artifact {
            seed: outcome.seed,
            kind: outcome.failure.as_ref().map(Failure::kind).unwrap_or("pass").to_string(),
            detail: outcome.failure.as_ref().map(Failure::details).unwrap_or_default(),
            scenario: scenario.clone(),
            minimized: minimized.cloned().into_iter().collect(),
            journal: outcome.journal.lines().map(str::to_string).collect(),
        }
    }

    /// Serializes the artifact as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact is serializable")
    }
}
