//! **vsgm-chaos** — randomized fault-injection search over the complete
//! protocol stack, with deterministic replay and failing-run minimization.
//!
//! Three pieces, composable as a library and packaged as the `chaos` bin:
//!
//! * [`gen`] — a generator that turns a `u64` seed into a random but
//!   *legal* [`vsgm_harness::Scenario`]: message workloads, partitions and
//!   heals, crashes (including crashes in the middle of a sync round),
//!   recoveries, `start_change` cascades, and a network [`FaultPlan`]
//!   (drop / burst loss / reorder jitter) that stays inside the `CO_RFIFO`
//!   spec envelope. Legality matters: the membership oracle panics on
//!   nonsensical scripts (a `form_view` nobody asked for), and such a
//!   panic must never be confused with a protocol bug.
//! * [`run`] — executes a scenario under the *full* oracle: every spec
//!   automaton from `vsgm-spec`, the paper invariants, and — after a
//!   stabilization phase that heals, recovers, and reconfigures to the
//!   whole group — conditional liveness (Property 4.2). Any violation or
//!   panic becomes a structured [`run::Failure`] with the `vsgm-obs`
//!   journal of the dying run attached.
//! * [`minimize`] — delta-debugging over a failing scenario: drop steps,
//!   weaken fault fields, shrink the group, while the failure signature
//!   (same kind, same first checker) is preserved. The output is a
//!   minimal reproducer small enough to read.
//!
//! Everything downstream of the seed is deterministic: same seed, same
//! scenario, same schedule, same faults, byte-identical report. A failure
//! found on seed `s` anywhere reproduces from `--seed s` everywhere.
//!
//! [`FaultPlan`]: vsgm_net::FaultPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod minimize;
pub mod run;

pub use gen::{generate, ChaosConfig, CorruptMode};
pub use minimize::{minimize, Minimized};
pub use run::{batch_for_seed, run_scenario, validate, Artifact, Failure, RunOptions, RunOutcome};
