//! `chaos` — randomized fault-injection search over the VSGM stack.
//!
//! ```text
//! chaos [--seeds N] [--seed X] [--minimize] [--format json|text]
//!       [--procs MAX] [--steps MAX] [--inject-bug] [--artifacts DIR]
//! ```
//!
//! Each seed deterministically generates a legal random scenario
//! (workload, partitions, crashes, recoveries, cascades, network faults),
//! runs it under every spec checker plus post-stabilization liveness, and
//! reports violations. `--minimize` shrinks each failure to a minimal
//! reproducer; `--artifacts DIR` writes per-failure JSON artifacts
//! (seed + scenario + journal). `--inject-bug` suppresses a sync message
//! in the final view change — a deliberate protocol bug that must be
//! caught, used to validate the oracle itself. Exit status: 0 iff every
//! run passed. Same arguments ⇒ byte-identical report.

use serde::Serialize;
use vsgm_chaos::{generate, minimize, run_scenario, Artifact, ChaosConfig, RunOptions};
use vsgm_harness::Scenario;

#[derive(Serialize)]
struct Row {
    seed: u64,
    n: usize,
    steps: usize,
    events: usize,
    recovery_resets: u64,
    injected_drops: u64,
    result: String,
    detail: Vec<String>,
    minimized_steps: i64,
    minimized_json: String,
}

#[derive(Serialize)]
struct Report {
    total: usize,
    failures: usize,
    runs: Vec<Row>,
}

struct Args {
    seeds: u64,
    seed: Option<u64>,
    minimize: bool,
    json: bool,
    procs: u64,
    steps: usize,
    inject_bug: bool,
    artifacts: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--seed X] [--minimize] [--format json|text]\n\
         \x20            [--procs MAX] [--steps MAX] [--inject-bug] [--artifacts DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 50,
        seed: None,
        minimize: false,
        json: false,
        procs: 5,
        steps: 16,
        inject_bug: false,
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = Some(value(&mut it).parse().unwrap_or_else(|_| usage())),
            "--minimize" => args.minimize = true,
            "--format" => match value(&mut it).as_str() {
                "json" => args.json = true,
                "text" => args.json = false,
                _ => usage(),
            },
            "--procs" => args.procs = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--steps" => args.steps = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--inject-bug" => args.inject_bug = true,
            "--artifacts" => args.artifacts = Some(value(&mut it)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Panics inside a run are caught and reported as failures; keep the
    // default hook from spraying backtraces over the report.
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = ChaosConfig { max_procs: args.procs.max(2), max_steps: args.steps, dup: 0.0 };
    let opts = RunOptions {
        skip_sync_at_stabilization: if args.inject_bug { Some(0) } else { None },
    };
    let seeds: Vec<u64> = match args.seed {
        Some(x) => vec![x],
        None => (0..args.seeds).collect(),
    };

    if let Some(dir) = &args.artifacts {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("chaos: cannot create artifact dir {dir}: {e}");
            std::process::exit(2);
        }
    }

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for seed in seeds {
        let scenario = generate(seed, &cfg);
        let outcome = run_scenario(&scenario, &opts);
        let failed = outcome.failure.is_some();
        let mut minimized: Option<Scenario> = None;
        let mut tested = 0usize;
        if failed {
            failures += 1;
            if args.minimize {
                if let Some(m) = minimize(&scenario, &opts) {
                    tested = m.tested;
                    minimized = Some(m.scenario);
                }
            }
            if let Some(dir) = &args.artifacts {
                let artifact = Artifact::new(&scenario, &outcome, minimized.as_ref());
                let path = format!("{dir}/chaos-seed-{seed}.json");
                if let Err(e) = std::fs::write(&path, artifact.to_json()) {
                    eprintln!("chaos: cannot write {path}: {e}");
                }
            }
        }
        rows.push(Row {
            seed,
            n: scenario.n,
            steps: scenario.steps.len(),
            events: outcome.events,
            recovery_resets: outcome.recovery_resets,
            injected_drops: outcome.injected_drops,
            result: outcome
                .failure
                .as_ref()
                .map(|f| f.kind().to_string())
                .unwrap_or_else(|| "pass".to_string()),
            detail: outcome.failure.as_ref().map(|f| f.details()).unwrap_or_default(),
            minimized_steps: minimized.as_ref().map(|s| s.steps.len() as i64).unwrap_or(-1),
            minimized_json: minimized
                .as_ref()
                .map(|s| {
                    let _ = tested; // recorded in text mode below
                    s.to_json()
                })
                .unwrap_or_default(),
        });
        if !args.json {
            let row = rows.last().expect("just pushed");
            println!(
                "seed {:>4}: {:<16} n={} steps={:>2} events={:>5} resets={} drops={}",
                row.seed,
                row.result,
                row.n,
                row.steps,
                row.events,
                row.recovery_resets,
                row.injected_drops
            );
            for line in &row.detail {
                println!("    {line}");
            }
            if let Some(m) = &minimized {
                println!("    minimized to {} steps ({} candidate runs):", m.steps.len(), tested);
                for l in m.to_json().lines() {
                    println!("    {l}");
                }
            }
        }
    }

    let report = Report { total: rows.len(), failures, runs: rows };
    if args.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else {
        println!("chaos: {} runs, {} failures", report.total, report.failures);
    }
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
