//! `chaos` — randomized fault-injection search over the VSGM stack.
//!
//! ```text
//! chaos [--seeds N] [--seed X] [--minimize] [--format json|text]
//!       [--procs MAX] [--steps MAX] [--inject-bug] [--artifacts DIR]
//!       [--corrupt] [--stabilize-json PATH]
//! ```
//!
//! Each seed deterministically generates a legal random scenario
//! (workload, partitions, crashes, recoveries, cascades, network faults),
//! runs it under every spec checker plus post-stabilization liveness, and
//! reports violations. `--minimize` shrinks each failure to a minimal
//! reproducer; `--artifacts DIR` writes per-failure JSON artifacts
//! (seed + scenario + journal). `--inject-bug` suppresses a sync message
//! in the final view change — a deliberate protocol bug that must be
//! caught, used to validate the oracle itself. `--corrupt` additionally
//! injects transient state corruption (DESIGN.md §15); such runs are
//! judged by split-trace convergence: the deviation window is unjudged
//! and the post-stabilization suffix must satisfy the full spec suite.
//! `--stabilize-json PATH` runs a per-corruption-class sweep (EXPERIMENTS
//! E11) and writes convergence statistics to `PATH`. Exit status: 0 iff
//! every run passed. Same arguments ⇒ byte-identical report.

use serde::Serialize;
use vsgm_chaos::{generate, minimize, run_scenario, Artifact, ChaosConfig, CorruptMode, RunOptions};
use vsgm_core::CorruptionKind;
use vsgm_harness::Scenario;

#[derive(Serialize)]
struct Row {
    seed: u64,
    n: usize,
    steps: usize,
    events: usize,
    recovery_resets: u64,
    injected_drops: u64,
    corruptions: u64,
    reconciliations: u64,
    /// Micros from last injection to the stabilized mark; `-1` when the
    /// run had no judged corruption.
    convergence_us: i64,
    result: String,
    detail: Vec<String>,
    minimized_steps: i64,
    minimized_json: String,
}

#[derive(Serialize)]
struct Report {
    total: usize,
    failures: usize,
    runs: Vec<Row>,
}

/// One corruption class of the E11 sweep (`BENCH_stabilize.json`).
#[derive(Serialize)]
struct StabilizeClass {
    kind: String,
    runs: usize,
    converged: usize,
    failures: usize,
    corruptions_total: u64,
    reconciliations_total: u64,
    convergence_us_min: i64,
    convergence_us_p50: i64,
    convergence_us_mean: i64,
    convergence_us_max: i64,
    failing_seeds: Vec<u64>,
}

#[derive(Serialize)]
struct StabilizeReport {
    seeds_per_class: u64,
    procs: u64,
    steps: usize,
    classes: Vec<StabilizeClass>,
}

struct Args {
    seeds: u64,
    seed: Option<u64>,
    minimize: bool,
    json: bool,
    procs: u64,
    steps: usize,
    inject_bug: bool,
    artifacts: Option<String>,
    corrupt: bool,
    stabilize_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--seed X] [--minimize] [--format json|text]\n\
         \x20            [--procs MAX] [--steps MAX] [--inject-bug] [--artifacts DIR]\n\
         \x20            [--corrupt] [--stabilize-json PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 50,
        seed: None,
        minimize: false,
        json: false,
        procs: 5,
        steps: 16,
        inject_bug: false,
        artifacts: None,
        corrupt: false,
        stabilize_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = Some(value(&mut it).parse().unwrap_or_else(|_| usage())),
            "--minimize" => args.minimize = true,
            "--format" => match value(&mut it).as_str() {
                "json" => args.json = true,
                "text" => args.json = false,
                _ => usage(),
            },
            "--procs" => args.procs = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--steps" => args.steps = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--inject-bug" => args.inject_bug = true,
            "--artifacts" => args.artifacts = Some(value(&mut it)),
            "--corrupt" => args.corrupt = true,
            "--stabilize-json" => args.stabilize_json = Some(value(&mut it)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// Runs the E11 per-class convergence sweep: `seeds` runs per corruption
/// kind with the generator pinned to that class, collecting time-to-
/// converge statistics. Returns the report and the number of failing
/// runs across all classes.
fn stabilize_sweep(args: &Args, opts: &RunOptions) -> (StabilizeReport, usize) {
    let mut classes = Vec::new();
    let mut failing = 0usize;
    for kind in CorruptionKind::ALL {
        let cfg = ChaosConfig {
            max_procs: args.procs.max(2),
            max_steps: args.steps,
            dup: 0.0,
            corrupt: CorruptMode::Only(kind),
        };
        let mut converged = 0usize;
        let mut corruptions_total = 0u64;
        let mut reconciliations_total = 0u64;
        let mut times: Vec<u64> = Vec::new();
        let mut failing_seeds = Vec::new();
        for seed in 0..args.seeds {
            let scenario = generate(seed, &cfg);
            let outcome = run_scenario(&scenario, opts);
            corruptions_total += outcome.corruptions;
            reconciliations_total += outcome.audit_reconciliations;
            if outcome.failure.is_some() {
                failing_seeds.push(seed);
            } else {
                converged += 1;
                if let Some(us) = outcome.convergence_us {
                    times.push(us);
                }
            }
        }
        failing += failing_seeds.len();
        times.sort_unstable();
        let stat = |v: Option<&u64>| v.map(|&x| x as i64).unwrap_or(-1);
        let mean = if times.is_empty() {
            -1
        } else {
            (times.iter().sum::<u64>() / times.len() as u64) as i64
        };
        classes.push(StabilizeClass {
            kind: kind.name().to_string(),
            runs: args.seeds as usize,
            converged,
            failures: failing_seeds.len(),
            corruptions_total,
            reconciliations_total,
            convergence_us_min: stat(times.first()),
            convergence_us_p50: stat(times.get(times.len() / 2)),
            convergence_us_mean: mean,
            convergence_us_max: stat(times.last()),
            failing_seeds,
        });
    }
    let report = StabilizeReport {
        seeds_per_class: args.seeds,
        procs: args.procs.max(2),
        steps: args.steps,
        classes,
    };
    (report, failing)
}

fn main() {
    let args = parse_args();
    // Panics inside a run are caught and reported as failures; keep the
    // default hook from spraying backtraces over the report.
    std::panic::set_hook(Box::new(|_| {}));

    let opts = RunOptions {
        skip_sync_at_stabilization: if args.inject_bug { Some(0) } else { None },
    };

    if let Some(path) = &args.stabilize_json {
        let (report, failing) = stabilize_sweep(&args, &opts);
        let body = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("chaos: cannot write {path}: {e}");
            std::process::exit(2);
        }
        for c in &report.classes {
            println!(
                "stabilize {:<20} runs={:<4} converged={:<4} p50={}us max={}us failing={:?}",
                c.kind,
                c.runs,
                c.converged,
                c.convergence_us_p50,
                c.convergence_us_max,
                c.failing_seeds
            );
        }
        std::process::exit(if failing > 0 { 1 } else { 0 });
    }

    let cfg = ChaosConfig {
        max_procs: args.procs.max(2),
        max_steps: args.steps,
        dup: 0.0,
        corrupt: if args.corrupt { CorruptMode::Any } else { CorruptMode::Off },
    };
    let seeds: Vec<u64> = match args.seed {
        Some(x) => vec![x],
        None => (0..args.seeds).collect(),
    };

    if let Some(dir) = &args.artifacts {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("chaos: cannot create artifact dir {dir}: {e}");
            std::process::exit(2);
        }
    }

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for seed in seeds {
        let scenario = generate(seed, &cfg);
        let outcome = run_scenario(&scenario, &opts);
        let failed = outcome.failure.is_some();
        let mut minimized: Option<Scenario> = None;
        let mut tested = 0usize;
        if failed {
            failures += 1;
            if args.minimize {
                if let Some(m) = minimize(&scenario, &opts) {
                    tested = m.tested;
                    minimized = Some(m.scenario);
                }
            }
            if let Some(dir) = &args.artifacts {
                let artifact = Artifact::new(&scenario, &outcome, minimized.as_ref());
                let path = format!("{dir}/chaos-seed-{seed}.json");
                if let Err(e) = std::fs::write(&path, artifact.to_json()) {
                    eprintln!("chaos: cannot write {path}: {e}");
                }
            }
        }
        rows.push(Row {
            seed,
            n: scenario.n,
            steps: scenario.steps.len(),
            events: outcome.events,
            recovery_resets: outcome.recovery_resets,
            injected_drops: outcome.injected_drops,
            corruptions: outcome.corruptions,
            reconciliations: outcome.audit_reconciliations,
            convergence_us: outcome.convergence_us.map(|u| u as i64).unwrap_or(-1),
            result: outcome
                .failure
                .as_ref()
                .map(|f| f.kind().to_string())
                .unwrap_or_else(|| "pass".to_string()),
            detail: outcome.failure.as_ref().map(|f| f.details()).unwrap_or_default(),
            minimized_steps: minimized.as_ref().map(|s| s.steps.len() as i64).unwrap_or(-1),
            minimized_json: minimized
                .as_ref()
                .map(|s| {
                    let _ = tested; // recorded in text mode below
                    s.to_json()
                })
                .unwrap_or_default(),
        });
        if !args.json {
            let row = rows.last().expect("just pushed");
            println!(
                "seed {:>4}: {:<16} n={} steps={:>2} events={:>5} resets={} drops={} corrupt={} heal={} conv_us={}",
                row.seed,
                row.result,
                row.n,
                row.steps,
                row.events,
                row.recovery_resets,
                row.injected_drops,
                row.corruptions,
                row.reconciliations,
                row.convergence_us,
            );
            for line in &row.detail {
                println!("    {line}");
            }
            if let Some(m) = &minimized {
                println!("    minimized to {} steps ({} candidate runs):", m.steps.len(), tested);
                for l in m.to_json().lines() {
                    println!("    {l}");
                }
            }
        }
    }

    let report = Report { total: rows.len(), failures, runs: rows };
    if args.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else {
        println!("chaos: {} runs, {} failures", report.total, report.failures);
    }
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
