//! Delta-debugging minimization of failing scenarios.
//!
//! Given a scenario the oracle rejects, shrink it while the failure
//! *signature* (same class, same first checker — [`Failure::signature`])
//! is preserved:
//!
//! 1. **Step removal** — drop contiguous chunks, halving the chunk size
//!    down to single steps (ddmin-style). Scenarios are heterogeneous —
//!    corruption, crashes, partitions, faults and workload interleave —
//!    and removal is kind-agnostic, so a mixed failing script shrinks to
//!    whichever single steps its failure actually needs;
//! 2. **Step simplification** — replace a step with a strictly simpler
//!    equivalent (`crash_during_sync` → plain `crash`);
//! 3. **Fault weakening** — zero each field of every `faults` step;
//! 4. **Group shrinking** — lower `n` while no step references the
//!    removed process.
//!
//! Every candidate is first checked with [`validate`] — an illegal
//! candidate is simply "does not reproduce", never a false positive via
//! an oracle panic. The loop repeats until a fixed point, so the result
//! is 1-minimal with respect to these operations: removing any single
//! remaining step no longer reproduces the failure.

use crate::run::{run_scenario, validate, Failure, RunOptions, RunOutcome};
use vsgm_harness::{Scenario, Step};

/// A minimized reproducer and the evidence it still fails.
#[derive(Debug)]
pub struct Minimized {
    /// The shrunk scenario.
    pub scenario: Scenario,
    /// Outcome of the final run of `scenario` (failure preserved).
    pub outcome: RunOutcome,
    /// Candidate runs spent shrinking.
    pub tested: usize,
}

fn max_proc_referenced(s: &Scenario) -> u64 {
    let mut hi = 1u64;
    for step in &s.steps {
        match step {
            Step::Send { p, .. }
            | Step::Crash { p }
            | Step::Recover { p }
            | Step::CrashDuringSync { p }
            | Step::Corrupt { p, .. } => hi = hi.max(*p),
            Step::Reconfigure { members }
            | Step::StartChange { members }
            | Step::FormView { members } => {
                for &m in members {
                    hi = hi.max(m);
                }
            }
            Step::Partition { groups } => {
                for g in groups {
                    for &m in g {
                        hi = hi.max(m);
                    }
                }
            }
            Step::Heal | Step::Run | Step::RunFor { .. } | Step::Faults { .. } => {}
        }
    }
    hi
}

/// Shrinks `scenario` to a minimal reproducer of its failure.
///
/// Returns `None` if the scenario does not fail under `opts` in the first
/// place. Deterministic: shrinking order and candidate runs are pure
/// functions of the input.
pub fn minimize(scenario: &Scenario, opts: &RunOptions) -> Option<Minimized> {
    let base = run_scenario(scenario, opts);
    let signature = base.failure.as_ref()?.signature();
    let mut tested = 0usize;
    let mut cur = scenario.clone();

    let reproduces = |cand: &Scenario, tested: &mut usize| -> bool {
        if validate(cand).is_err() {
            return false;
        }
        *tested += 1;
        run_scenario(cand, opts)
            .failure
            .as_ref()
            .map(Failure::signature)
            .is_some_and(|s| s == signature)
    };

    loop {
        let mut progressed = false;

        // 1. Remove step chunks, large to small.
        let mut chunk = (cur.steps.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + chunk <= cur.steps.len() {
                let mut cand = cur.clone();
                cand.steps.drain(i..i + chunk);
                if reproduces(&cand, &mut tested) {
                    cur = cand;
                    progressed = true;
                    // Re-test the same position: the next chunk slid in.
                } else {
                    i += 1;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // 2. Simplify steps in place: a timed mid-sync crash that still
        // reproduces as a plain crash reads much better in a reproducer.
        for idx in 0..cur.steps.len() {
            let Some(&Step::CrashDuringSync { p }) = cur.steps.get(idx) else {
                continue;
            };
            let mut cand = cur.clone();
            if let Some(slot) = cand.steps.get_mut(idx) {
                *slot = Step::Crash { p };
            }
            if reproduces(&cand, &mut tested) {
                cur = cand;
                progressed = true;
            }
        }

        // Weaken fault fields one at a time.
        for idx in 0..cur.steps.len() {
            let Some(Step::Faults { drop, dup, reorder_ms, burst }) =
                cur.steps.get(idx).cloned()
            else {
                continue;
            };
            let weaker = [
                Step::Faults { drop: 0.0, dup, reorder_ms, burst },
                Step::Faults { drop, dup: 0.0, reorder_ms, burst },
                Step::Faults { drop, dup, reorder_ms: 0, burst },
                Step::Faults { drop, dup, reorder_ms, burst: 0.0 },
            ];
            for variant in weaker {
                if cur.steps.get(idx) == Some(&variant) {
                    continue; // field already zero
                }
                let mut cand = cur.clone();
                if let Some(slot) = cand.steps.get_mut(idx) {
                    *slot = variant;
                }
                if reproduces(&cand, &mut tested) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Shrink the group below unreferenced processes.
        while cur.n as u64 > max_proc_referenced(&cur).max(2) {
            let mut cand = cur.clone();
            cand.n -= 1;
            if reproduces(&cand, &mut tested) {
                cur = cand;
                progressed = true;
            } else {
                break;
            }
        }

        if !progressed {
            break;
        }
    }

    let outcome = run_scenario(&cur, opts);
    Some(Minimized { scenario: cur, outcome, tested })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_core::CorruptionKind;

    /// Heterogeneous shrinking: a script mixing state corruption, network
    /// faults, a mid-sync crash, recovery and workload — failing through
    /// the deliberately injected sync-suppression bug — must shrink
    /// across step kinds to a 1-minimal reproducer with the same failure
    /// signature. Exercises both judging paths: candidates that still
    /// carry a `corrupt` step run under split-trace convergence judging,
    /// candidates without one run under the classic online oracle.
    #[test]
    fn minimizes_a_mixed_corruption_crash_fault_scenario() {
        let scenario = Scenario {
            n: 3,
            seed: 21,
            steps: vec![
                Step::Faults { drop: 0.1, dup: 0.0, reorder_ms: 3, burst: 0.0 },
                Step::Reconfigure { members: vec![1, 2, 3] },
                Step::Send { p: 1, msg: "a".into() },
                Step::Corrupt { p: 2, kind: CorruptionKind::DupMsgId },
                Step::RunFor { ms: 4 },
                Step::CrashDuringSync { p: 3 },
                Step::Send { p: 2, msg: "b".into() },
                Step::Recover { p: 3 },
                Step::Run,
            ],
        };
        let opts = RunOptions { skip_sync_at_stabilization: Some(0) };
        let base = run_scenario(&scenario, &opts);
        let signature = base.failure.as_ref().expect("injected bug must fire").signature();
        let m = minimize(&scenario, &opts).expect("a failing scenario minimizes");
        assert_eq!(
            m.outcome.failure.as_ref().map(Failure::signature).as_deref(),
            Some(signature.as_str()),
            "shrinking wandered to a different failure"
        );
        assert!(
            m.scenario.steps.len() < scenario.steps.len(),
            "nothing was removed: {:?}",
            m.scenario.steps
        );
        // 1-minimality across step kinds: removing any single surviving
        // step (corruption or otherwise) must stop reproducing.
        for i in 0..m.scenario.steps.len() {
            let mut cand = m.scenario.clone();
            cand.steps.remove(i);
            if validate(&cand).is_err() {
                continue;
            }
            let still = run_scenario(&cand, &opts)
                .failure
                .as_ref()
                .map(Failure::signature)
                .is_some_and(|s| s == signature);
            assert!(!still, "step {i} of the minimized scenario is removable");
        }
    }
}
