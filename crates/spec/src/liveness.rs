//! Property 4.2 — conditional liveness (§4.2).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{AppMsg, Event, ProcessId, View};

/// Checker for the liveness property (Property 4.2):
///
/// > Let `v` be a view with `v.set = S`. If for every `p ∈ S` the action
/// > `MBRSHP.view_p(v)` occurs and is followed by neither `MBRSHP.view_p`
/// > nor `MBRSHP.start_change_p` actions, then at each `p ∈ S`,
/// > `GCS.view_p(v)` eventually occurs; furthermore every message sent
/// > after that is delivered at every `q ∈ S`.
///
/// "Eventually" is judged at the end of the run: the harness runs the
/// simulation to quiescence (every fair task has fired), at which point
/// anything that has not happened never will.
///
/// The premise is monitored too: if the membership does *not* stabilize on
/// `v` (a later membership event reaches a member), the property holds
/// vacuously and [`Checker::finish`] accepts.
#[derive(Debug)]
pub struct LivenessSpec {
    /// The view the membership is expected to stabilize on.
    target: View,
    /// Step at which `MBRSHP.view_p(target)` occurred, per member.
    mbrshp_seen: BTreeMap<ProcessId, u64>,
    /// Whether the stabilization premise broke (vacuous acceptance).
    premise_broken: bool,
    /// Step at which `GCS.view_p(target)` occurred, per member.
    installed: BTreeMap<ProcessId, u64>,
    /// Messages sent by `p` after it installed the target view.
    sends_after: BTreeMap<ProcessId, Vec<AppMsg>>,
    /// Messages delivered to `q` from `p` after `q` installed the target.
    delivered_after: BTreeMap<(ProcessId, ProcessId), Vec<AppMsg>>,
}

impl LivenessSpec {
    /// Creates a checker expecting the membership to stabilize on `target`.
    pub fn new(target: View) -> Self {
        LivenessSpec {
            target,
            mbrshp_seen: BTreeMap::new(),
            premise_broken: false,
            installed: BTreeMap::new(),
            sends_after: BTreeMap::new(),
            delivered_after: BTreeMap::new(),
        }
    }

    /// Whether the stabilization premise held for the whole observed run.
    pub fn premise_held(&self) -> bool {
        !self.premise_broken && self.mbrshp_seen.len() == self.target.len()
    }
}

impl Checker for LivenessSpec {
    fn name(&self) -> &'static str {
        "LIVENESS(4.2)"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::MbrshpView { p, view } => {
                if !self.target.contains(*p) {
                    return Ok(());
                }
                if view == &self.target {
                    self.mbrshp_seen.insert(*p, step);
                } else if self.mbrshp_seen.contains_key(p) {
                    // A later membership view at a member: premise broken.
                    self.premise_broken = true;
                }
                Ok(())
            }
            Event::MbrshpStartChange { p, .. } => {
                if self.target.contains(*p) && self.mbrshp_seen.contains_key(p) {
                    self.premise_broken = true;
                }
                Ok(())
            }
            Event::GcsView { p, view, .. } => {
                if view == &self.target {
                    self.installed.insert(*p, step);
                }
                Ok(())
            }
            Event::Send { p, msg } => {
                if self.installed.contains_key(p) {
                    self.sends_after.entry(*p).or_default().push(msg.clone());
                }
                Ok(())
            }
            Event::Deliver { p: q, q: p, msg } => {
                if self.installed.contains_key(q) {
                    self.delivered_after.entry((*q, *p)).or_default().push(msg.clone());
                }
                Ok(())
            }
            Event::Crash { p } => {
                // A member crashing after stabilization breaks the
                // premise (the membership will reconfigure). A crash
                // *before* the target view reached `p` is history the
                // stabilized suffix already accounts for — essential now
                // that `Sim::add_checker` replays the recorded prefix.
                if self.target.contains(*p) && self.mbrshp_seen.contains_key(p) {
                    self.premise_broken = true;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn finish(&mut self) -> Result<(), Violation> {
        if !self.premise_held() {
            return Ok(()); // vacuously true
        }
        for p in self.target.members() {
            if !self.installed.contains_key(p) {
                return Err(Violation::at_end(
                    "LIVENESS(4.2)",
                    format!(
                        "membership stabilized on {} but {p} never delivered it \
                         to its application",
                        self.target
                    ),
                ));
            }
        }
        for p in self.target.members() {
            let sent = self.sends_after.get(p).cloned().unwrap_or_default();
            for q in self.target.members() {
                let got = self.delivered_after.get(&(*q, *p)).cloned().unwrap_or_default();
                if got != sent {
                    return Err(Violation::at_end(
                        "LIVENESS(4.2)",
                        format!(
                            "{p} sent {} messages in the stable view but {q} \
                             delivered {} of them (expected all, in FIFO order)",
                            sent.len(),
                            got.len()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{ProcSet, StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn target() -> View {
        View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        )
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = LivenessSpec::new(target());
        let mut out: Vec<Violation> =
            trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect();
        if let Err(v) = spec.finish() {
            out.push(v);
        }
        out
    }

    fn stabilize() -> Vec<Event> {
        vec![
            Event::MbrshpView { p: p(1), view: target() },
            Event::MbrshpView { p: p(2), view: target() },
        ]
    }

    fn install_all() -> Vec<Event> {
        vec![
            Event::GcsView { p: p(1), view: target(), transitional: ProcSet::new() },
            Event::GcsView { p: p(2), view: target(), transitional: ProcSet::new() },
        ]
    }

    #[test]
    fn stable_and_installed_accepted() {
        let mut events = stabilize();
        events.extend(install_all());
        assert!(run(events).is_empty());
    }

    #[test]
    fn missing_installation_rejected() {
        let mut events = stabilize();
        events.push(Event::GcsView { p: p(1), view: target(), transitional: ProcSet::new() });
        let violations = run(events);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("never delivered"));
    }

    #[test]
    fn vacuous_when_premise_broken_by_start_change() {
        let mut events = stabilize();
        events.push(Event::MbrshpStartChange {
            p: p(1),
            cid: StartChangeId::new(9),
            set: [p(1)].into_iter().collect(),
        });
        // Nothing installed, but the premise broke ⇒ vacuously accepted.
        assert!(run(events).is_empty());
    }

    #[test]
    fn vacuous_when_membership_never_stabilizes() {
        // Only p1 ever receives the target view.
        let events = vec![Event::MbrshpView { p: p(1), view: target() }];
        assert!(run(events).is_empty());
    }

    #[test]
    fn vacuous_when_member_crashes() {
        let mut events = stabilize();
        events.push(Event::Crash { p: p(2) });
        assert!(run(events).is_empty());
    }

    #[test]
    fn crash_before_stabilization_does_not_vacuate() {
        // §8 history replayed into a late-attached checker: the member
        // crashed (and implicitly recovered) before the target view; the
        // stabilized suffix is still binding.
        let mut events = vec![Event::Crash { p: p(2) }, Event::Recover { p: p(2) }];
        events.extend(stabilize());
        let violations = run(events);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].message.contains("never delivered"));
    }

    #[test]
    fn undelivered_message_in_stable_view_rejected() {
        let mut events = stabilize();
        events.extend(install_all());
        events.push(Event::Send { p: p(1), msg: AppMsg::from("m") });
        events.push(Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("m") });
        // p2 never delivers it.
        let violations = run(events);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("delivered 0"), "{violations:?}");
    }

    #[test]
    fn all_messages_delivered_accepted() {
        let mut events = stabilize();
        events.extend(install_all());
        events.push(Event::Send { p: p(1), msg: AppMsg::from("m") });
        events.push(Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("m") });
        events.push(Event::Deliver { p: p(2), q: p(1), msg: AppMsg::from("m") });
        assert!(run(events).is_empty());
    }

    #[test]
    fn sends_before_installation_not_required() {
        // A message sent before GCS.view_p(v) is outside the property's
        // scope.
        let mut events = stabilize();
        events.push(Event::Send { p: p(1), msg: AppMsg::from("early") });
        events.extend(install_all());
        assert!(run(events).is_empty());
    }
}
