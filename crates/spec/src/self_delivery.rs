//! `SELF:SPEC` — the Self Delivery property (Fig. 7).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Event, ProcessId};

/// Checker for the Self Delivery safety property (Fig. 7): an end-point
/// must not install a new view before delivering to its own application
/// every message that application sent in the current view
/// (`last_dlvrd[p][p] = LastIndexOf(msgs[p][current_view[p]])`).
#[derive(Debug, Default)]
pub struct SelfDeliverySpec {
    /// Messages sent by `p` in its current view.
    sent: BTreeMap<ProcessId, u64>,
    /// Own messages delivered back to `p` in its current view.
    delivered_own: BTreeMap<ProcessId, u64>,
}

impl SelfDeliverySpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        SelfDeliverySpec::default()
    }
}

impl Checker for SelfDeliverySpec {
    fn name(&self) -> &'static str {
        "SELF:SPEC"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        match &entry.event {
            Event::Send { p, .. } => {
                *self.sent.entry(*p).or_insert(0) += 1;
                Ok(())
            }
            Event::Deliver { p, q, .. } if p == q => {
                *self.delivered_own.entry(*p).or_insert(0) += 1;
                Ok(())
            }
            Event::GcsView { p, view, .. } => {
                let sent = self.sent.get(p).copied().unwrap_or(0);
                let dlvrd = self.delivered_own.get(p).copied().unwrap_or(0);
                if sent != dlvrd {
                    return Err(Violation::at_step(
                        "SELF:SPEC",
                        entry.step,
                        format!(
                            "view_{p}({view}): Self Delivery violated, {p} sent {sent} \
                             messages in its current view but self-delivered only {dlvrd}"
                        ),
                    ));
                }
                self.sent.insert(*p, 0);
                self.delivered_own.insert(*p, 0);
                Ok(())
            }
            Event::Recover { p } => {
                // Fresh incarnation: counters restart (§8).
                self.sent.insert(*p, 0);
                self.delivered_own.insert(*p, 0);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{AppMsg, StartChangeId, View, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(epoch: u64) -> View {
        View::new(ViewId::new(epoch, 0), [p(1)], [(p(1), StartChangeId::new(epoch))])
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = SelfDeliverySpec::new();
        trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect()
    }

    #[test]
    fn view_after_self_delivery_accepted() {
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("a") },
            Event::GcsView { p: p(1), view: view(1), transitional: Default::default() },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn view_with_undelivered_own_message_rejected() {
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            Event::GcsView { p: p(1), view: view(1), transitional: Default::default() },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Self Delivery"), "{violations:?}");
    }

    #[test]
    fn counters_reset_on_view() {
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("a") },
            Event::GcsView { p: p(1), view: view(1), transitional: Default::default() },
            Event::Send { p: p(1), msg: AppMsg::from("b") },
            Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("b") },
            Event::GcsView { p: p(1), view: view(2), transitional: Default::default() },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn other_processes_deliveries_do_not_count() {
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            Event::Deliver { p: p(2), q: p(1), msg: AppMsg::from("a") },
            Event::GcsView { p: p(1), view: view(1), transitional: Default::default() },
        ]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn recovery_clears_pending_obligation() {
        // Messages sent before a crash need not be self-delivered by the
        // fresh incarnation (§8 — no stable storage).
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("lost") },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            Event::GcsView { p: p(1), view: view(1), transitional: Default::default() },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
