//! Convergence-to-legal-state judging for the self-stabilization tier.
//!
//! A state-corruption fault (see `vsgm_core::corrupt`) transiently breaks
//! the endpoint's protocol state; per the self-stabilization literature
//! the system is judged not on the deviation window but on whether it
//! **converges**: after detection (`vsgm_core::audit`) and reconciliation
//! (the §8 recovery path) the behaviour must again satisfy every
//! specification. This module makes that judgment executable by splitting
//! a recorded trace in three:
//!
//! ```text
//!   [0, injection)            — pre-fault: every safety spec must hold
//!   [injection, stabilized)   — deviation window: not judged
//!   [stabilized, end)         — suffix: the FULL oracle suite must hold
//! ```
//!
//! The suffix is judged with *fresh* checkers, which would wrongly reject
//! cross-process deliveries in views installed before the split. We
//! therefore replay the prefix to derive one **snapshot** per live
//! process — its current view and reliable-connection declaration as of
//! the split — and prepend the equivalent events ([`snapshot_entries`]),
//! so the suffix checkers start from the legal state the run actually
//! stabilized into rather than from a blank slate.

use crate::{full_checks, standard_checks};
use std::collections::BTreeMap;
use vsgm_ioa::{SimTime, TraceEntry, Violation};
use vsgm_types::{Event, ProcSet, ProcessId, View};

/// Per-process externally visible state as of a trace split point.
#[derive(Debug, Default, Clone)]
struct Snapshot {
    view: Option<View>,
    reliable: Option<ProcSet>,
    crashed: bool,
}

/// Verdict of a split-trace stabilization judgment ([`judge_split`]).
#[derive(Debug)]
pub struct ConvergenceReport {
    /// Safety violations strictly before the corruption was injected —
    /// these predate the fault and are genuine protocol bugs.
    pub pre_violations: Vec<Violation>,
    /// Violations of the full suite on the post-stabilization suffix —
    /// non-empty means the system failed to converge to a legal state.
    pub post_violations: Vec<Violation>,
    /// Synthesized snapshot events prepended to the suffix.
    pub snapshots: usize,
}

impl ConvergenceReport {
    /// Whether the run both behaved legally before the fault and
    /// converged to legal behaviour after stabilization.
    pub fn converged(&self) -> bool {
        self.pre_violations.is_empty() && self.post_violations.is_empty()
    }

    /// All violations, pre-fault first.
    pub fn violations(&self) -> Vec<Violation> {
        self.pre_violations.iter().chain(&self.post_violations).cloned().collect()
    }
}

/// Replays `prefix` and derives the snapshot events a fresh checker set
/// needs to judge the remainder of the trace: for every process, its
/// reliable-set declaration and then its current view (with the trivial
/// transitional set `{p}`), as of the end of the prefix. Snapshots equal
/// to a fresh checker's defaults (initial singleton view, self-only
/// reliable set) are omitted; a process down at the split contributes a
/// `crash` event instead.
pub fn snapshot_entries(prefix: &[TraceEntry]) -> Vec<TraceEntry> {
    let mut snaps: BTreeMap<ProcessId, Snapshot> = BTreeMap::new();
    for entry in prefix {
        match &entry.event {
            Event::GcsView { p, view, .. } => {
                snaps.entry(*p).or_default().view = Some(view.clone());
            }
            Event::Reliable { p, set } => {
                snaps.entry(*p).or_default().reliable = Some(set.clone());
            }
            // §8: a crash wipes the endpoint; recovery restarts it in its
            // initial state, which is exactly a fresh checker's default.
            Event::Crash { p } => {
                snaps.insert(*p, Snapshot { crashed: true, ..Snapshot::default() });
            }
            Event::Recover { p } => {
                snaps.entry(*p).or_default().crashed = false;
            }
            _ => {}
        }
    }
    let (step, time) = prefix.last().map(|e| (e.step, e.time)).unwrap_or((0, SimTime::ZERO));
    let mut out = Vec::new();
    let mut push = |event: Event| out.push(TraceEntry { step, time, event });
    for (p, snap) in snaps {
        if snap.crashed {
            push(Event::Crash { p });
            continue;
        }
        let self_only: ProcSet = [p].into_iter().collect();
        if let Some(set) = snap.reliable {
            if set != self_only {
                push(Event::Reliable { p, set });
            }
        }
        if let Some(view) = snap.view {
            if view != View::initial(p) {
                push(Event::GcsView { p, view, transitional: self_only });
            }
        }
    }
    out
}

/// Judges `entries[split..]` with the full oracle suite
/// ([`full_checks`]), prepending the prefix-derived [`snapshot_entries`]
/// so the fresh checkers start from the state the run stabilized into.
/// Returns the violations and the number of snapshots synthesized.
pub fn judge_suffix(
    entries: &[TraceEntry],
    split: usize,
    final_view: Option<View>,
) -> (Vec<Violation>, usize) {
    let split = split.min(entries.len());
    let prefix = entries.get(..split).unwrap_or(&[]);
    let suffix = entries.get(split..).unwrap_or(&[]);
    let mut replay = snapshot_entries(prefix);
    let snapshots = replay.len();
    replay.extend(suffix.iter().cloned());
    let mut set = full_checks(final_view);
    (set.run(&replay).to_vec(), snapshots)
}

/// The complete three-part judgment: safety specs on the pre-fault
/// prefix `[0, injection)`, nothing on the deviation window, and the full
/// suite (with snapshots) on the suffix `[stabilized, ..)`.
///
/// `injection` is the trace length when the first corruption was
/// injected; `stabilized` is the trace length once the run went quiescent
/// after reconciliation (the convergence point under test). Marks are
/// clamped into range (and `stabilized` to at least `injection`), so the
/// call is total.
pub fn judge_split(
    entries: &[TraceEntry],
    injection: usize,
    stabilized: usize,
    final_view: Option<View>,
) -> ConvergenceReport {
    let injection = injection.min(entries.len());
    let stabilized = stabilized.clamp(injection, entries.len());
    let pre = entries.get(..injection).unwrap_or(&[]);
    let mut safety = standard_checks();
    let pre_violations = safety.run(pre).to_vec();
    let (post_violations, snapshots) = judge_suffix(entries, stabilized, final_view);
    ConvergenceReport { pre_violations, post_violations, snapshots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{AppMsg, StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn view12(epoch: u64) -> View {
        View::new(
            ViewId::new(epoch, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(epoch)), (p(2), StartChangeId::new(epoch))],
        )
    }

    fn trace(events: Vec<Event>) -> Vec<TraceEntry> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceEntry { step: i as u64, time: SimTime::ZERO, event })
            .collect()
    }

    /// Both processes install `view12(1)` and declare each other
    /// reliable; returns the events.
    fn installed_prefix() -> Vec<Event> {
        let v = view12(1);
        let mut evs = Vec::new();
        for i in [1u64, 2] {
            evs.push(Event::MbrshpStartChange {
                p: p(i),
                cid: StartChangeId::new(1),
                set: set(&[1, 2]),
            });
        }
        for i in [1u64, 2] {
            evs.push(Event::MbrshpView { p: p(i), view: v.clone() });
        }
        for i in [1u64, 2] {
            evs.push(Event::Reliable { p: p(i), set: set(&[1, 2]) });
            evs.push(Event::GcsView { p: p(i), view: v.clone(), transitional: set(&[i]) });
        }
        evs
    }

    #[test]
    fn empty_trace_converges() {
        let report = judge_split(&[], 0, 0, None);
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.snapshots, 0);
    }

    #[test]
    fn snapshots_skip_fresh_checker_defaults() {
        // p1 has installed a real view; p2 appears only with defaults.
        let entries = trace(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::GcsView { p: p(1), view: view12(1), transitional: set(&[1]) },
            Event::Reliable { p: p(2), set: set(&[2]) },
        ]);
        let snaps = snapshot_entries(&entries);
        assert_eq!(snaps.len(), 2, "{snaps:?}");
        assert!(matches!(&snaps[0].event, Event::Reliable { p: q, .. } if *q == p(1)));
        assert!(matches!(&snaps[1].event, Event::GcsView { p: q, .. } if *q == p(1)));
    }

    #[test]
    fn crash_wipes_a_snapshot_and_recovery_resets_it() {
        let mut evs = installed_prefix();
        evs.push(Event::Crash { p: p(2) });
        let snaps = snapshot_entries(&trace(evs.clone()));
        // p1's two snapshot events plus p2's crash marker.
        assert_eq!(snaps.len(), 3, "{snaps:?}");
        assert!(matches!(&snaps[2].event, Event::Crash { p: q } if *q == p(2)));
        evs.push(Event::Recover { p: p(2) });
        let snaps = snapshot_entries(&trace(evs));
        // Recovered = initial state = fresh-checker default: no snapshot.
        assert_eq!(snaps.len(), 2, "{snaps:?}");
    }

    #[test]
    fn suffix_judgment_depends_on_the_snapshots() {
        // Suffix: p1 multicasts in view12(1) and both deliver.
        let mut evs = installed_prefix();
        let split = evs.len();
        evs.push(Event::Send { p: p(1), msg: AppMsg::from("x") });
        evs.push(Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("x") });
        evs.push(Event::Deliver { p: p(2), q: p(1), msg: AppMsg::from("x") });
        let entries = trace(evs);
        // Fresh checkers on the bare suffix reject the cross-process
        // delivery (p2 still in its initial singleton view)...
        let bare = crate::judge_trace(entries.get(split..).unwrap_or(&[]), None);
        assert!(!bare.is_empty(), "bare suffix should not stand alone");
        // ...but with the synthesized snapshots the suffix is legal.
        let (violations, snapshots) = judge_suffix(&entries, split, None);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(snapshots, 4, "two events for each of p1, p2");
    }

    #[test]
    fn judge_split_flags_pre_fault_violations() {
        // A self-inclusion violation before the injection mark is a real
        // bug, not a corruption symptom.
        let v1only = View::new(
            ViewId::new(1, 0),
            [p(1)],
            [(p(1), StartChangeId::new(1))],
        );
        let entries = trace(vec![Event::GcsView {
            p: p(2),
            view: v1only,
            transitional: set(&[2]),
        }]);
        let report = judge_split(&entries, 1, 1, None);
        assert!(!report.converged());
        assert!(!report.pre_violations.is_empty());
    }

    #[test]
    fn deviation_window_is_not_judged_but_suffix_is() {
        let mut evs = installed_prefix();
        let injection = evs.len();
        // Deviation window: an out-of-thin-air delivery (corruption
        // symptom) that must NOT fail the judgment...
        evs.push(Event::Deliver { p: p(2), q: p(1), msg: AppMsg::from("forged") });
        let stabilized = evs.len();
        // ...and a legal suffix.
        evs.push(Event::Send { p: p(2), msg: AppMsg::from("ok") });
        evs.push(Event::Deliver { p: p(2), q: p(2), msg: AppMsg::from("ok") });
        evs.push(Event::Deliver { p: p(1), q: p(2), msg: AppMsg::from("ok") });
        let entries = trace(evs);
        let report = judge_split(&entries, injection, stabilized, None);
        assert!(report.converged(), "{report:?}");
        // The same forged delivery inside the judged region fails.
        let report = judge_split(&entries, entries.len(), entries.len(), None);
        assert!(!report.converged());
    }

    #[test]
    fn marks_are_clamped_into_range() {
        let entries = trace(installed_prefix());
        let report = judge_split(&entries, usize::MAX, 0, None);
        assert!(report.converged(), "{report:?}");
    }
}
