//! `WV_RFIFO:SPEC` — within-view reliable FIFO multicast (Fig. 4).

use std::collections::{BTreeMap, BTreeSet};
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{AppMsg, Event, ProcessId, View, ViewId};

/// Checker for the within-view reliable FIFO multicast specification
/// (Fig. 4).
///
/// Replays the centralized spec state:
///
/// * `msgs[p][v]` — the sequence of messages `p`'s application sent in
///   view `v`;
/// * `last_dlvrd[q][p]` — the index of the last message from `q` delivered
///   to `p` in `p`'s current view;
/// * `current_view[p]`.
///
/// and enforces on every event:
///
/// * `deliver_p(q, m)`: `m` is exactly message `last_dlvrd[q][p] + 1` of
///   `msgs[q][current_view[p]]` — i.e. delivery is gap-free, FIFO, and in
///   the view in which the message was sent;
/// * `view_p(v)`: Self Inclusion and Local Monotonicity.
///
/// Crash/recovery (§8): a recovered process restarts as a fresh
/// *incarnation* with initial state, but view-identifier monotonicity is
/// preserved across the crash (the spec keeps the pre-crash
/// `current_view`). Messages a fresh incarnation sends in its initial
/// singleton view are tracked separately from pre-crash ones.
#[derive(Debug, Default)]
pub struct WvRfifoSpec {
    crashed: BTreeSet<ProcessId>,
    /// Incarnation counters; bumped on recovery.
    inc: BTreeMap<ProcessId, u64>,
    /// Largest view id ever delivered to `p` (survives crashes).
    floor: BTreeMap<ProcessId, ViewId>,
    current_view: BTreeMap<ProcessId, View>,
    /// `msgs[(sender, incarnation, view)]`.
    msgs: BTreeMap<(ProcessId, u64, View), Vec<AppMsg>>,
    /// Which incarnation of a sender sent in a given (non-initial) view.
    sender_inc: BTreeMap<(ProcessId, View), u64>,
    /// `last_dlvrd[(sender, receiver)]`.
    last_dlvrd: BTreeMap<(ProcessId, ProcessId), u64>,
}

impl WvRfifoSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        WvRfifoSpec::default()
    }

    fn incarnation(&self, p: ProcessId) -> u64 {
        self.inc.get(&p).copied().unwrap_or(0)
    }

    fn view_of(&self, p: ProcessId) -> View {
        self.current_view.get(&p).cloned().unwrap_or_else(|| View::initial(p))
    }

    fn guard_alive(&self, p: ProcessId, what: &str, step: u64) -> Result<(), Violation> {
        if self.crashed.contains(&p) {
            return Err(Violation::at_step(
                "WV_RFIFO:SPEC",
                step,
                format!("{what} at {p} while crashed"),
            ));
        }
        Ok(())
    }

    /// Number of messages `sender` has sent in `view` (for other checkers'
    /// tests and the harness's metrics).
    pub fn sent_in_view(&self, sender: ProcessId, view: &View) -> usize {
        let inc = if view.is_initial() && view.contains(sender) {
            self.incarnation(sender)
        } else {
            match self.sender_inc.get(&(sender, view.clone())) {
                Some(i) => *i,
                None => return 0,
            }
        };
        self.msgs.get(&(sender, inc, view.clone())).map_or(0, Vec::len)
    }
}

impl Checker for WvRfifoSpec {
    fn name(&self) -> &'static str {
        "WV_RFIFO:SPEC"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::Send { p, msg } => {
                self.guard_alive(*p, "send", step)?;
                let v = self.view_of(*p);
                let i = self.incarnation(*p);
                // Initial singleton views are private to their owner and may
                // be re-entered by a fresh incarnation after recovery; only
                // shared (non-initial) views need the uniqueness tracking.
                if !v.is_initial() {
                    if let Some(prev) = self.sender_inc.insert((*p, v.clone()), i) {
                        if prev != i {
                            return Err(Violation::at_step(
                                "WV_RFIFO:SPEC",
                                step,
                                format!(
                                    "send_{p}: two incarnations of {p} sent in the same view {v}"
                                ),
                            ));
                        }
                    }
                }
                self.msgs.entry((*p, i, v)).or_default().push(msg.clone());
                Ok(())
            }
            Event::Deliver { p: q, q: sender, msg } => {
                self.guard_alive(*q, "deliver", step)?;
                let v = self.view_of(*q);
                let sender_inc = if sender == q {
                    self.incarnation(*q)
                } else {
                    match self.sender_inc.get(&(*sender, v.clone())) {
                        Some(i) => *i,
                        None => {
                            return Err(Violation::at_step(
                                "WV_RFIFO:SPEC",
                                step,
                                format!(
                                    "deliver_{q}({sender}, ..): {sender} sent no messages \
                                     in {q}'s current view {v}"
                                ),
                            ))
                        }
                    }
                };
                let idx = self.last_dlvrd.get(&(*sender, *q)).copied().unwrap_or(0);
                let expected = self
                    .msgs
                    .get(&(*sender, sender_inc, v.clone()))
                    .and_then(|seq| seq.get(idx as usize));
                match expected {
                    Some(m) if m == msg => {
                        self.last_dlvrd.insert((*sender, *q), idx + 1);
                        Ok(())
                    }
                    Some(m) => Err(Violation::at_step(
                        "WV_RFIFO:SPEC",
                        step,
                        format!(
                            "deliver_{q}({sender}, {msg:?}): expected message #{} of view {v} \
                             to be {m:?} (FIFO order violated)",
                            idx + 1
                        ),
                    )),
                    None => Err(Violation::at_step(
                        "WV_RFIFO:SPEC",
                        step,
                        format!(
                            "deliver_{q}({sender}, {msg:?}): {sender} sent only {} messages \
                             in view {v}, cannot deliver #{}",
                            self.msgs
                                .get(&(*sender, sender_inc, v.clone()))
                                .map_or(0, Vec::len),
                            idx + 1
                        ),
                    )),
                }
            }
            Event::GcsView { p, view, .. } => {
                self.guard_alive(*p, "view", step)?;
                if !view.contains(*p) {
                    return Err(Violation::at_step(
                        "WV_RFIFO:SPEC",
                        step,
                        format!("view_{p}: Self Inclusion violated, {p} not in {view}"),
                    ));
                }
                let floor = self.floor.get(p).copied().unwrap_or(ViewId::ZERO);
                if view.id() <= floor {
                    return Err(Violation::at_step(
                        "WV_RFIFO:SPEC",
                        step,
                        format!(
                            "view_{p}: Local Monotonicity violated, {} not greater than {}",
                            view.id(),
                            floor
                        ),
                    ));
                }
                self.current_view.insert(*p, view.clone());
                self.floor.insert(*p, view.id());
                self.last_dlvrd.retain(|(_, receiver), _| receiver != p);
                Ok(())
            }
            Event::Crash { p } => {
                self.crashed.insert(*p);
                Ok(())
            }
            Event::Recover { p } => {
                self.crashed.remove(p);
                *self.inc.entry(*p).or_insert(0) += 1;
                self.current_view.insert(*p, View::initial(*p));
                self.last_dlvrd.retain(|(_, receiver), _| receiver != p);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::StartChangeId;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view12(epoch: u64) -> View {
        View::new(
            ViewId::new(epoch, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(epoch)), (p(2), StartChangeId::new(epoch))],
        )
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = WvRfifoSpec::new();
        trace
            .entries()
            .iter()
            .filter_map(|e| spec.observe(e).err())
            .collect()
    }

    fn m(s: &str) -> AppMsg {
        AppMsg::from(s)
    }

    #[test]
    fn fifo_delivery_within_view_accepted() {
        let v = view12(1);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v, transitional: Default::default() },
            Event::Send { p: p(1), msg: m("a") },
            Event::Send { p: p(1), msg: m("b") },
            Event::Deliver { p: p(2), q: p(1), msg: m("a") },
            Event::Deliver { p: p(2), q: p(1), msg: m("b") },
            Event::Deliver { p: p(1), q: p(1), msg: m("a") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn out_of_order_delivery_rejected() {
        let v = view12(1);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v, transitional: Default::default() },
            Event::Send { p: p(1), msg: m("a") },
            Event::Send { p: p(1), msg: m("b") },
            Event::Deliver { p: p(2), q: p(1), msg: m("b") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("FIFO order"), "{violations:?}");
    }

    #[test]
    fn delivery_of_unsent_message_rejected() {
        let v = view12(1);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v, transitional: Default::default() },
            Event::Deliver { p: p(2), q: p(1), msg: m("ghost") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("sent no messages"), "{violations:?}");
    }

    #[test]
    fn cross_view_delivery_rejected() {
        // p1 sends in view v1; p2 moves to v2 and then tries to deliver ⇒
        // within-view delivery violated.
        let v1 = view12(1);
        let v2 = view12(2);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v1.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v1, transitional: Default::default() },
            Event::Send { p: p(1), msg: m("a") },
            Event::GcsView { p: p(2), view: v2, transitional: Default::default() },
            Event::Deliver { p: p(2), q: p(1), msg: m("a") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("sent no messages"), "{violations:?}");
    }

    #[test]
    fn delivery_counters_reset_on_view_change() {
        let v1 = view12(1);
        let v2 = view12(2);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v1.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v1, transitional: Default::default() },
            Event::Send { p: p(1), msg: m("a") },
            Event::Deliver { p: p(2), q: p(1), msg: m("a") },
            Event::GcsView { p: p(1), view: v2.clone(), transitional: Default::default() },
            Event::GcsView { p: p(2), view: v2, transitional: Default::default() },
            Event::Send { p: p(1), msg: m("x") },
            // Delivery restarts at index 1 in the new view.
            Event::Deliver { p: p(2), q: p(1), msg: m("x") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn self_inclusion_enforced() {
        let v = View::new(ViewId::new(1, 0), [p(2)], [(p(2), StartChangeId::ZERO)]);
        let violations =
            run(vec![Event::GcsView { p: p(1), view: v, transitional: Default::default() }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Self Inclusion"));
    }

    #[test]
    fn local_monotonicity_enforced() {
        let v2 = view12(2);
        let v1 = view12(1);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v2, transitional: Default::default() },
            Event::GcsView { p: p(1), view: v1, transitional: Default::default() },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Local Monotonicity"));
    }

    #[test]
    fn events_at_crashed_process_rejected() {
        let violations = run(vec![
            Event::Crash { p: p(1) },
            Event::Send { p: p(1), msg: m("a") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("while crashed"));
    }

    #[test]
    fn monotonicity_preserved_across_recovery() {
        let v5 = view12(5);
        let v3 = view12(3);
        let violations = run(vec![
            Event::GcsView { p: p(1), view: v5, transitional: Default::default() },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            // §8: the first view after recovery must still exceed the
            // pre-crash view id.
            Event::GcsView { p: p(1), view: v3, transitional: Default::default() },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Local Monotonicity"), "{violations:?}");
    }

    #[test]
    fn fresh_incarnation_can_self_deliver_in_initial_view() {
        // p1 recovers into its initial singleton view and self-delivers a
        // newly sent message: allowed, tracked per incarnation.
        let violations = run(vec![
            Event::Send { p: p(1), msg: m("old") },
            Event::Deliver { p: p(1), q: p(1), msg: m("old") },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            Event::Send { p: p(1), msg: m("new") },
            Event::Deliver { p: p(1), q: p(1), msg: m("new") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn sent_in_view_counts() {
        let v = view12(1);
        let mut trace = Trace::new();
        trace.record(
            SimTime::ZERO,
            Event::GcsView { p: p(1), view: v.clone(), transitional: Default::default() },
        );
        trace.record(SimTime::ZERO, Event::Send { p: p(1), msg: m("a") });
        trace.record(SimTime::ZERO, Event::Send { p: p(1), msg: m("b") });
        let mut spec = WvRfifoSpec::new();
        for e in trace.entries() {
            spec.observe(e).unwrap();
        }
        assert_eq!(spec.sent_in_view(p(1), &v), 2);
        assert_eq!(spec.sent_in_view(p(2), &v), 0);
    }
}
