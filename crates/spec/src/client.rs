//! `CLIENT:SPEC` — the blocking application client (Fig. 12) and the
//! block-handshake discipline of the `GCS` automaton (Fig. 11).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Event, ProcessId};

/// Block-handshake status, shared between a GCS end-point and its client
/// (they agree on it — Invariant 6.11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum BlockStatus {
    #[default]
    Unblocked,
    Requested,
    Blocked,
}

/// Checker for the blocking-client contract:
///
/// * `block_p()` is only issued while `block_status = unblocked`
///   (Fig. 11 precondition);
/// * `block_ok_p()` is only issued while `block_status = requested`
///   (Fig. 12 precondition);
/// * the application does not `send` while blocked (Fig. 12);
/// * a delivered view unblocks.
#[derive(Debug, Default)]
pub struct ClientSpec {
    status: BTreeMap<ProcessId, BlockStatus>,
}

impl ClientSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        ClientSpec::default()
    }

    fn status(&self, p: ProcessId) -> BlockStatus {
        self.status.get(&p).copied().unwrap_or_default()
    }
}

impl Checker for ClientSpec {
    fn name(&self) -> &'static str {
        "CLIENT:SPEC"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::Block { p } => {
                if self.status(*p) != BlockStatus::Unblocked {
                    return Err(Violation::at_step(
                        "CLIENT:SPEC",
                        step,
                        format!(
                            "block_{p}: issued while block_status = {:?}",
                            self.status(*p)
                        ),
                    ));
                }
                self.status.insert(*p, BlockStatus::Requested);
                Ok(())
            }
            Event::BlockOk { p } => {
                if self.status(*p) != BlockStatus::Requested {
                    return Err(Violation::at_step(
                        "CLIENT:SPEC",
                        step,
                        format!(
                            "block_ok_{p}: issued while block_status = {:?}",
                            self.status(*p)
                        ),
                    ));
                }
                self.status.insert(*p, BlockStatus::Blocked);
                Ok(())
            }
            Event::Send { p, .. } => {
                if self.status(*p) == BlockStatus::Blocked {
                    return Err(Violation::at_step(
                        "CLIENT:SPEC",
                        step,
                        format!("send_{p}: application sent while blocked"),
                    ));
                }
                Ok(())
            }
            Event::GcsView { p, .. } => {
                self.status.insert(*p, BlockStatus::Unblocked);
                Ok(())
            }
            Event::Recover { p } => {
                self.status.insert(*p, BlockStatus::Unblocked);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{AppMsg, StartChangeId, View, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = ClientSpec::new();
        trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect()
    }

    fn a_view() -> View {
        View::new(ViewId::new(1, 0), [p(1)], [(p(1), StartChangeId::new(1))])
    }

    #[test]
    fn handshake_accepted() {
        let violations = run(vec![
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            Event::Block { p: p(1) },
            Event::BlockOk { p: p(1) },
            Event::GcsView { p: p(1), view: a_view(), transitional: Default::default() },
            Event::Send { p: p(1), msg: AppMsg::from("b") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn send_while_blocked_rejected() {
        let violations = run(vec![
            Event::Block { p: p(1) },
            Event::BlockOk { p: p(1) },
            Event::Send { p: p(1), msg: AppMsg::from("x") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("while blocked"));
    }

    #[test]
    fn send_while_merely_requested_allowed() {
        // Fig. 12: the client may keep sending until it answers block_ok.
        let violations = run(vec![
            Event::Block { p: p(1) },
            Event::Send { p: p(1), msg: AppMsg::from("x") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn double_block_rejected() {
        let violations = run(vec![Event::Block { p: p(1) }, Event::Block { p: p(1) }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("block_"));
    }

    #[test]
    fn spurious_block_ok_rejected() {
        let violations = run(vec![Event::BlockOk { p: p(1) }]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn view_unblocks() {
        let violations = run(vec![
            Event::Block { p: p(1) },
            Event::BlockOk { p: p(1) },
            Event::GcsView { p: p(1), view: a_view(), transitional: Default::default() },
            Event::Block { p: p(1) }, // a fresh cycle may start
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn recovery_resets_to_unblocked() {
        let violations = run(vec![
            Event::Block { p: p(1) },
            Event::BlockOk { p: p(1) },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            Event::Send { p: p(1), msg: AppMsg::from("x") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
