//! `CO_RFIFO` — connection-oriented reliable FIFO multicast spec (Fig. 3).

use std::collections::{BTreeMap, VecDeque};
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Event, NetMsg, ProcSet, ProcessId};

#[derive(Debug, Clone)]
struct Pending {
    msg: NetMsg,
    /// Whether the receiver was in the sender's `reliable_set` at send time.
    reliable: bool,
    /// Channel epoch at send time; the epoch bumps whenever the receiver
    /// leaves the sender's `reliable_set`, at which point `lose(p, q)`
    /// becomes enabled for everything in the channel.
    epoch: u64,
}

/// Checker for the reliable FIFO multicast service specification (Fig. 3).
///
/// Maintains the spec's `channel[p][q]` queues and `reliable_set[p]`, and
/// verifies that every `deliver_{p,q}(m)` removes the *first* message of
/// the channel — allowing for the internal `lose(p, q)` action, which may
/// silently discard a message only if `q ∉ reliable_set[p]` held at some
/// point while it was in transit. Deliveries of never-sent messages,
/// duplicated deliveries, reorderings, and gaps in reliable streams are
/// violations.
///
/// §8: a crash of `p` empties `reliable_set[p]`, making everything in
/// `p`'s outgoing channels losable; recovery resets it to `{p}`.
#[derive(Debug, Default)]
pub struct CoRfifoSpec {
    reliable: BTreeMap<ProcessId, ProcSet>,
    epoch: BTreeMap<(ProcessId, ProcessId), u64>,
    channel: BTreeMap<(ProcessId, ProcessId), VecDeque<Pending>>,
}

impl CoRfifoSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        CoRfifoSpec::default()
    }

    fn reliable_set(&self, p: ProcessId) -> ProcSet {
        self.reliable.get(&p).cloned().unwrap_or_else(|| [p].into_iter().collect())
    }

    fn epoch(&self, p: ProcessId, q: ProcessId) -> u64 {
        self.epoch.get(&(p, q)).copied().unwrap_or(0)
    }

    fn bump_epochs_for_removed(&mut self, p: ProcessId, old: &ProcSet, new: &ProcSet) {
        for q in old {
            if !new.contains(q) {
                *self.epoch.entry((p, *q)).or_insert(0) += 1;
            }
        }
    }

    /// Number of messages currently in transit from `p` to `q` (for tests
    /// and metrics).
    pub fn in_transit(&self, p: ProcessId, q: ProcessId) -> usize {
        self.channel.get(&(p, q)).map_or(0, VecDeque::len)
    }
}

impl Checker for CoRfifoSpec {
    fn name(&self) -> &'static str {
        "CO_RFIFO"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::Reliable { p, set } => {
                let old = self.reliable_set(*p);
                self.bump_epochs_for_removed(*p, &old, set);
                self.reliable.insert(*p, set.clone());
                Ok(())
            }
            Event::NetSend { p, set, msg } => {
                let rel = self.reliable_set(*p);
                for q in set {
                    let pending = Pending {
                        msg: msg.clone(),
                        reliable: rel.contains(q),
                        epoch: self.epoch(*p, *q),
                    };
                    self.channel.entry((*p, *q)).or_default().push_back(pending);
                }
                Ok(())
            }
            Event::NetDeliver { p, q, msg } => {
                let cur_epoch = self.epoch(*p, *q);
                let chan = self.channel.entry((*p, *q)).or_default();
                // Skip (as lost) any prefix of droppable messages that do
                // not match; the first non-droppable message must match.
                while let Some(front) = chan.front() {
                    if front.msg == *msg {
                        chan.pop_front();
                        return Ok(());
                    }
                    let droppable = !front.reliable || cur_epoch > front.epoch;
                    if droppable {
                        chan.pop_front();
                        continue;
                    }
                    return Err(Violation::at_step(
                        "CO_RFIFO",
                        step,
                        format!(
                            "deliver_{p},{q}: delivered {} but the first undroppable \
                             message in the channel is {} (FIFO/reliability violated)",
                            msg.tag(),
                            front.msg.tag()
                        ),
                    ));
                }
                Err(Violation::at_step(
                    "CO_RFIFO",
                    step,
                    format!(
                        "deliver_{p},{q}: delivered {} which is not in transit \
                         (never sent, duplicated, or already delivered)",
                        msg.tag()
                    ),
                ))
            }
            Event::Crash { p } => {
                let old = self.reliable_set(*p);
                self.bump_epochs_for_removed(*p, &old, &ProcSet::new());
                self.reliable.insert(*p, ProcSet::new());
                Ok(())
            }
            Event::Recover { p } => {
                self.reliable.insert(*p, [*p].into_iter().collect());
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{AppMsg, View};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn app(s: &str) -> NetMsg {
        NetMsg::App(AppMsg::from(s))
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = CoRfifoSpec::new();
        trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect()
    }

    #[test]
    fn fifo_delivery_accepted() {
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("a") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn reorder_on_reliable_channel_rejected() {
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("FIFO"), "{violations:?}");
    }

    #[test]
    fn never_sent_delivery_rejected() {
        let violations =
            run(vec![Event::NetDeliver { p: p(1), q: p(2), msg: app("ghost") }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("not in transit"));
    }

    #[test]
    fn duplicate_delivery_rejected() {
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("a") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("a") },
        ]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn loss_allowed_outside_reliable_set() {
        // q=2 is not in p1's reliable set; "a" may be lost and "b"
        // delivered directly.
        let violations = run(vec![
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn loss_allowed_after_leaving_reliable_set() {
        // Sent while reliable, but the receiver was later dropped from the
        // reliable set ⇒ the suffix becomes losable.
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            Event::Reliable { p: p(1), set: set(&[1]) }, // drop q=2
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn gap_in_continuously_reliable_stream_rejected() {
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            // q stays in the reliable set the whole time: skipping "a" is
            // a violation.
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn crash_makes_outgoing_losable() {
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("a") },
            Event::NetSend { p: p(1), set: set(&[2]), msg: app("b") },
            Event::Crash { p: p(1) },
            Event::NetDeliver { p: p(1), q: p(2), msg: app("b") },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn multicast_enqueues_on_every_destination() {
        let mut spec = CoRfifoSpec::new();
        let mut trace = Trace::new();
        trace.record(SimTime::ZERO, Event::NetSend { p: p(1), set: set(&[2, 3]), msg: app("a") });
        for e in trace.entries() {
            spec.observe(e).unwrap();
        }
        assert_eq!(spec.in_transit(p(1), p(2)), 1);
        assert_eq!(spec.in_transit(p(1), p(3)), 1);
        assert_eq!(spec.in_transit(p(1), p(1)), 0);
    }

    #[test]
    fn view_msgs_also_checked() {
        let v = View::initial(p(1));
        let violations = run(vec![
            Event::Reliable { p: p(1), set: set(&[1, 2]) },
            Event::NetSend { p: p(1), set: set(&[2]), msg: NetMsg::ViewMsg(v.clone()) },
            Event::NetDeliver { p: p(1), q: p(2), msg: NetMsg::ViewMsg(v) },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
