//! `TRANS_SET:SPEC` — transitional sets (Fig. 6, Property 4.1).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Event, ProcSet, ProcessId, View};

/// Checker for the Transitional Set property (Property 4.1):
///
/// > When a process `p` moves from view `v` to view `v'`, the transitional
/// > set it delivers with `v'` is a subset of `v.set ∩ v'.set` which
/// > includes all the processes that move directly from `v` to `v'`
/// > (including `p`), and does not include any member of `v'.set` that
/// > moves to `v'` from any view other than `v`.
///
/// The subset and self-membership clauses are checked at each `view`
/// event; the cross-process clauses need the whole trace (another process
/// may install `v'` later), so they run in [`Checker::finish`].
#[derive(Debug, Default)]
pub struct TransSetSpec {
    current_view: BTreeMap<ProcessId, View>,
    /// Every observed transition: (process, previous view, new view, T).
    transitions: Vec<Transition>,
}

#[derive(Debug, Clone)]
struct Transition {
    p: ProcessId,
    prev: View,
    next: View,
    t_set: ProcSet,
    step: u64,
}

impl TransSetSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        TransSetSpec::default()
    }

    fn view_of(&self, p: ProcessId) -> View {
        self.current_view.get(&p).cloned().unwrap_or_else(|| View::initial(p))
    }
}

impl Checker for TransSetSpec {
    fn name(&self) -> &'static str {
        "TRANS_SET:SPEC"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::GcsView { p, view: next, transitional } => {
                let prev = self.view_of(*p);
                // T ⊆ v.set ∩ v'.set
                for q in transitional {
                    if !prev.contains(*q) || !next.contains(*q) {
                        return Err(Violation::at_step(
                            "TRANS_SET:SPEC",
                            step,
                            format!(
                                "view_{p}: transitional set member {q} not in \
                                 {prev}.set ∩ {next}.set"
                            ),
                        ));
                    }
                }
                // p ∈ T
                if !transitional.contains(p) {
                    return Err(Violation::at_step(
                        "TRANS_SET:SPEC",
                        step,
                        format!("view_{p}: {p} missing from its own transitional set"),
                    ));
                }
                self.transitions.push(Transition {
                    p: *p,
                    prev,
                    next: next.clone(),
                    t_set: transitional.clone(),
                    step,
                });
                self.current_view.insert(*p, next.clone());
                Ok(())
            }
            Event::Recover { p } => {
                self.current_view.insert(*p, View::initial(*p));
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn finish(&mut self) -> Result<(), Violation> {
        // Group transitions by target view (full-triple identity).
        let mut by_next: BTreeMap<&View, Vec<&Transition>> = BTreeMap::new();
        for t in &self.transitions {
            by_next.entry(&t.next).or_default().push(t);
        }
        for (next, group) in by_next {
            for a in &group {
                for b in &group {
                    if a.p == b.p {
                        continue;
                    }
                    // b moved to `next` from b.prev.
                    if a.t_set.contains(&b.p) && b.prev != a.prev {
                        return Err(Violation::at_end(
                            "TRANS_SET:SPEC",
                            format!(
                                "step {}: {}'s transitional set for {next} contains {} \
                                 which moved from {} (not {})",
                                a.step, a.p, b.p, b.prev, a.prev
                            ),
                        ));
                    }
                    if b.prev == a.prev && !a.t_set.contains(&b.p) {
                        return Err(Violation::at_end(
                            "TRANS_SET:SPEC",
                            format!(
                                "step {}: {} moved {} -> {next} together with {} but is \
                                 missing from {}'s transitional set",
                                a.step, b.p, a.prev, a.p, a.p
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn view(epoch: u64, members: &[u64]) -> View {
        View::new(
            ViewId::new(epoch, 0),
            members.iter().map(|&i| p(i)),
            members.iter().map(|&i| (p(i), StartChangeId::new(epoch))),
        )
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = TransSetSpec::new();
        let mut out: Vec<Violation> =
            trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect();
        if let Err(v) = spec.finish() {
            out.push(v);
        }
        out
    }

    fn install(at: u64, v: &View, t: &[u64]) -> Event {
        Event::GcsView { p: p(at), view: v.clone(), transitional: set(t) }
    }

    #[test]
    fn joint_movers_with_full_t_accepted() {
        let v1 = view(1, &[1, 2]);
        let v2 = view(2, &[1, 2]);
        let violations = run(vec![
            install(1, &v1, &[1]),
            install(2, &v1, &[2]),
            install(1, &v2, &[1, 2]),
            install(2, &v2, &[1, 2]),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn t_must_contain_self() {
        let v1 = view(1, &[1, 2]);
        let violations = run(vec![install(1, &v1, &[])]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("missing from its own"));
    }

    #[test]
    fn t_subset_of_intersection() {
        // p3 is in neither p1's previous view (initial singleton) nor...
        let v1 = view(1, &[1, 3]);
        let violations = run(vec![install(1, &v1, &[1, 3])]);
        // p3 ∈ v1.set but p3 ∉ initial(p1).set ⇒ violation.
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("∩"));
    }

    #[test]
    fn member_from_other_view_must_be_excluded() {
        // p1 moves v1 -> v3; p2 moves v2 -> v3. p1 wrongly includes p2.
        let v1 = view(1, &[1, 2]);
        let v2 = view(2, &[1, 2]);
        let v3 = view(3, &[1, 2]);
        let violations = run(vec![
            install(1, &v1, &[1]),
            install(2, &v2, &[2]),
            install(1, &v3, &[1, 2]), // claims p2 moved with it from v1
            install(2, &v3, &[2]),    // but p2 moved from v2
        ]);
        assert!(
            violations.iter().any(|v| v.message.contains("which moved from")),
            "{violations:?}"
        );
    }

    #[test]
    fn joint_mover_must_be_included() {
        let v1 = view(1, &[1, 2]);
        let v2 = view(2, &[1, 2]);
        let violations = run(vec![
            install(1, &v1, &[1]),
            install(2, &v1, &[2]),
            install(1, &v2, &[1]), // both moved v1 -> v2, p2 missing from p1's T
            install(2, &v2, &[1, 2]),
        ]);
        assert!(
            violations.iter().any(|v| v.message.contains("missing from")),
            "{violations:?}"
        );
    }

    #[test]
    fn different_transitional_sets_for_different_prev_views_ok() {
        // From the paper: different transitional sets may be associated
        // with the same view v' at different processes.
        let v1 = view(1, &[1, 2]);
        let v2 = view(2, &[1, 2]);
        let v3 = view(3, &[1, 2]);
        let violations = run(vec![
            install(1, &v1, &[1]),
            install(2, &v2, &[2]),
            install(1, &v3, &[1]),
            install(2, &v3, &[2]),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn recovery_changes_prev_view_to_initial() {
        let v1 = view(1, &[1, 2]);
        let v2 = view(2, &[1, 2]);
        // p1 crashes in v1 and recovers; it then moves initial -> v2, so
        // p2 (moving v1 -> v2) must NOT include p1 in its transitional set.
        let violations = run(vec![
            install(1, &v1, &[1]),
            install(2, &v1, &[2]),
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            install(1, &v2, &[1]),
            install(2, &v2, &[2]),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
