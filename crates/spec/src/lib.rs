//! Executable specification automata for the vsgm stack.
//!
//! Each module transcribes one specification automaton from the paper into
//! a [`vsgm_ioa::Checker`] that replays a global trace and rejects it if
//! any observed external action has no enabled transition in the spec:
//!
//! | Module | Spec | Paper figure |
//! |---|---|---|
//! | [`mbrshp`] | `MBRSHP` membership service safety | Fig. 2 |
//! | [`co_rfifo`] | `CO_RFIFO` reliable FIFO multicast | Fig. 3 |
//! | [`wv_rfifo`] | `WV_RFIFO:SPEC` within-view reliable FIFO | Fig. 4 |
//! | [`vs_rfifo`] | `VS_RFIFO:SPEC` virtual synchrony (agreed cuts) | Fig. 5 |
//! | [`trans_set`] | `TRANS_SET:SPEC` transitional sets | Fig. 6 / Property 4.1 |
//! | [`self_delivery`] | `SELF:SPEC` self delivery | Fig. 7 |
//! | [`client`] | `CLIENT:SPEC` blocking application client | Fig. 12 |
//! | [`liveness`] | Property 4.2 (conditional liveness) | §4.2 |
//!
//! Crash/recovery events (§8) are handled by every checker: while a
//! process is crashed its application-facing actions are violations, and
//! on recovery its per-incarnation state is reset while view-identifier
//! monotonicity is preserved across the crash (the paper's "preserve the
//! pre-crashed values of the `start_change` and `current_view`
//! variables").
//!
//! [`standard_checks`] builds the full safety [`CheckSet`] used by tests
//! and the simulation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod co_rfifo;
pub mod liveness;
pub mod mbrshp;
pub mod self_delivery;
pub mod stabilize;
pub mod trans_set;
pub mod vs_rfifo;
pub mod wv_rfifo;

pub use client::ClientSpec;
pub use co_rfifo::CoRfifoSpec;
pub use liveness::LivenessSpec;
pub use mbrshp::MbrshpSpec;
pub use self_delivery::SelfDeliverySpec;
pub use stabilize::{judge_split, judge_suffix, ConvergenceReport};
pub use trans_set::TransSetSpec;
pub use vs_rfifo::VsRfifoSpec;
pub use wv_rfifo::WvRfifoSpec;

use vsgm_ioa::{CheckSet, TraceEntry, Violation};
use vsgm_types::View;

/// Builds the standard battery of safety checkers: `MBRSHP`, `CO_RFIFO`,
/// `WV_RFIFO:SPEC`, `VS_RFIFO:SPEC`, `TRANS_SET:SPEC`, `SELF:SPEC`, and
/// `CLIENT:SPEC`.
///
/// ```
/// let mut checks = vsgm_spec::standard_checks();
/// checks.run(&[]); // the empty trace satisfies every safety spec
/// checks.assert_clean();
/// ```
pub fn standard_checks() -> CheckSet {
    let mut set = CheckSet::new();
    set.add(MbrshpSpec::new());
    set.add(CoRfifoSpec::new());
    set.add(WvRfifoSpec::new());
    set.add(VsRfifoSpec::new());
    set.add(TransSetSpec::new());
    set.add(SelfDeliverySpec::new());
    set.add(ClientSpec::new());
    set
}

/// Builds the **full** oracle suite: every safety checker from
/// [`standard_checks`], plus — when `final_view` names the view the run
/// stabilizes to — the Property 4.2 conditional-liveness checker.
///
/// This is the single judging entry point shared by the simulation
/// harness (`vsgm-harness`), the fault-injection searcher (`vsgm-chaos`),
/// and the exhaustive interleaving explorer (`vsgm-explore`): all three
/// judge traces with exactly this battery, so a checker added here is
/// automatically enforced everywhere.
pub fn full_checks(final_view: Option<View>) -> CheckSet {
    let mut set = standard_checks();
    if let Some(v) = final_view {
        set.add(LivenessSpec::new(v));
    }
    set
}

/// Judges a complete recorded trace against [`full_checks`] and returns
/// every violation found (empty = the trace satisfies all specs; with a
/// `final_view`, also Property 4.2 for that view).
///
/// ```
/// assert!(vsgm_spec::judge_trace(&[], None).is_empty());
/// ```
pub fn judge_trace(entries: &[TraceEntry], final_view: Option<View>) -> Vec<Violation> {
    let mut set = full_checks(final_view);
    set.run(entries).to_vec()
}
