//! `VS_RFIFO:SPEC` — virtual synchrony via agreed cuts (Fig. 5).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Cut, Event, ProcessId, View};

/// Checker for the Virtual Synchrony property (Fig. 5).
///
/// The spec automaton nondeterministically fixes, per pair of views
/// `(v, v')`, a *cut* — the exact per-sender message counts every process
/// moving from `v` to `v'` must have delivered in `v` at the moment it
/// installs `v'`. The checker reconstructs the cut from the **first**
/// process observed making the transition (simulating the spec's internal
/// `set_cut` just before that `view` event, exactly as the paper's
/// refinement proof does with the `H_cut` history variable) and requires
/// every later process making the same transition to match it.
#[derive(Debug, Default)]
pub struct VsRfifoSpec {
    current_view: BTreeMap<ProcessId, View>,
    /// Messages delivered to `receiver` from `sender` in the receiver's
    /// current view: `last_dlvrd[(sender, receiver)]`.
    last_dlvrd: BTreeMap<(ProcessId, ProcessId), u64>,
    /// `cut[v][v']`, keyed by the (full-triple) views.
    cut: BTreeMap<(View, View), Cut>,
}

impl VsRfifoSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        VsRfifoSpec::default()
    }

    fn view_of(&self, p: ProcessId) -> View {
        self.current_view.get(&p).cloned().unwrap_or_else(|| View::initial(p))
    }

    fn delivered_cut(&self, receiver: ProcessId) -> Cut {
        self.last_dlvrd
            .iter()
            .filter(|((_, r), _)| *r == receiver)
            .map(|((s, _), n)| (*s, *n))
            .collect()
    }

    /// The agreed cut recorded for the transition `v → v'`, if any process
    /// has made it. Exposed for tests and experiment metrics.
    pub fn recorded_cut(&self, v: &View, v_new: &View) -> Option<&Cut> {
        self.cut.get(&(v.clone(), v_new.clone()))
    }
}

impl Checker for VsRfifoSpec {
    fn name(&self) -> &'static str {
        "VS_RFIFO:SPEC"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::Deliver { p: receiver, q: sender, .. } => {
                *self.last_dlvrd.entry((*sender, *receiver)).or_insert(0) += 1;
                Ok(())
            }
            Event::GcsView { p, view: v_new, .. } => {
                let v_old = self.view_of(*p);
                let delivered = self.delivered_cut(*p);
                let key = (v_old.clone(), v_new.clone());
                if let Some(agreed) = self.cut.get(&key) {
                    // Later mover: must match the established cut exactly
                    // (pointwise, absent entries read as 0).
                    let senders: std::collections::BTreeSet<ProcessId> = agreed
                        .iter()
                        .map(|(s, _)| s)
                        .chain(delivered.iter().map(|(s, _)| s))
                        .collect();
                    for s in senders {
                        if delivered.get(s) != agreed.get(s) {
                            return Err(Violation::at_step(
                                "VS_RFIFO:SPEC",
                                step,
                                format!(
                                    "view_{p}: moving {} -> {} with {} messages delivered \
                                     from {s}, but the agreed cut says {} \
                                     (Virtual Synchrony violated)",
                                    v_old,
                                    v_new,
                                    delivered.get(s),
                                    agreed.get(s)
                                ),
                            ));
                        }
                    }
                } else {
                    // First mover: this fixes the cut (spec's set_cut).
                    self.cut.insert(key, delivered);
                }
                self.current_view.insert(*p, v_new.clone());
                self.last_dlvrd.retain(|(_, r), _| r != p);
                Ok(())
            }
            Event::Recover { p } => {
                self.current_view.insert(*p, View::initial(*p));
                self.last_dlvrd.retain(|(_, r), _| r != p);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};
    use vsgm_types::{AppMsg, StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view12(epoch: u64) -> View {
        View::new(
            ViewId::new(epoch, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(epoch)), (p(2), StartChangeId::new(epoch))],
        )
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = VsRfifoSpec::new();
        trace.entries().iter().filter_map(|e| spec.observe(e).err()).collect()
    }

    fn deliver(to: u64, from: u64, s: &str) -> Event {
        Event::Deliver { p: p(to), q: p(from), msg: AppMsg::from(s) }
    }

    fn install(at: u64, v: &View) -> Event {
        Event::GcsView { p: p(at), view: v.clone(), transitional: Default::default() }
    }

    #[test]
    fn same_cut_accepted() {
        let v1 = view12(1);
        let v2 = view12(2);
        let violations = run(vec![
            install(1, &v1),
            install(2, &v1),
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            deliver(1, 1, "a"),
            deliver(2, 1, "a"),
            install(1, &v2),
            install(2, &v2),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn diverging_cut_rejected() {
        let v1 = view12(1);
        let v2 = view12(2);
        let violations = run(vec![
            install(1, &v1),
            install(2, &v1),
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            deliver(1, 1, "a"),
            install(1, &v2), // p1 moves having delivered 1 message from p1
            install(2, &v2), // p2 moves having delivered 0 ⇒ violation
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Virtual Synchrony"), "{violations:?}");
    }

    #[test]
    fn extra_delivery_before_move_rejected() {
        let v1 = view12(1);
        let v2 = view12(2);
        let violations = run(vec![
            install(1, &v1),
            install(2, &v1),
            Event::Send { p: p(2), msg: AppMsg::from("x") },
            install(1, &v2), // cut fixed at 0 messages from p2
            deliver(2, 2, "x"),
            install(2, &v2), // p2 delivered 1 ⇒ violation
        ]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn movers_from_different_old_views_unconstrained() {
        // p1 moves v1 -> v3, p2 moves v2 -> v3: different (old, new) pairs,
        // so their delivery counts need not match.
        let v1 = view12(1);
        let v2 = view12(2);
        let v3 = view12(3);
        let violations = run(vec![
            install(1, &v1),
            install(2, &v2),
            Event::Send { p: p(2), msg: AppMsg::from("x") },
            deliver(2, 2, "x"),
            install(1, &v3),
            install(2, &v3),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn cut_recorded_for_first_mover() {
        let v1 = view12(1);
        let v2 = view12(2);
        let mut spec = VsRfifoSpec::new();
        let mut trace = Trace::new();
        for e in [
            install(1, &v1),
            Event::Send { p: p(1), msg: AppMsg::from("a") },
            deliver(1, 1, "a"),
            install(1, &v2),
        ] {
            trace.record(SimTime::ZERO, e);
        }
        for e in trace.entries() {
            spec.observe(e).unwrap();
        }
        let cut = spec.recorded_cut(&v1, &v2).unwrap();
        assert_eq!(cut.get(p(1)), 1);
    }

    #[test]
    fn recovery_resets_view_to_initial() {
        let v1 = view12(1);
        let v9 = view12(9);
        // After recovery p1's transition is initial(p1) -> v9, which has an
        // independent cut from the (v1 -> v9) transition.
        let violations = run(vec![
            install(1, &v1),
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            install(1, &v9),
            install(2, &v9), // p2 moves initial(p2) -> v9: also fine
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
