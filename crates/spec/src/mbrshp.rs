//! `MBRSHP` — membership service safety specification (Fig. 2).

use std::collections::BTreeMap;
use vsgm_ioa::{Checker, TraceEntry, Violation};
use vsgm_types::{Event, ProcSet, ProcessId, StartChangeId, View, ViewId};

/// Per-process mode of the membership service (Fig. 2, `mode[p]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    ChangeStarted,
}

#[derive(Debug, Clone)]
struct PerProc {
    /// `mbrshp_view[p].id` — only the identifier matters for the
    /// preconditions; preserved across crashes (§8: the membership service
    /// does not crash).
    view_id: ViewId,
    /// `start_change[p]`.
    sc_id: StartChangeId,
    sc_set: ProcSet,
    mode: Mode,
    /// Whether `start_change[p]` still holds its initial value (`cid₀`
    /// with an empty set). The first real `start_change` must only be
    /// *≥*-comparable against `cid₀` per the strict `cid >
    /// start_change[p].id` precondition, so we track initiality to allow
    /// `cid₀` itself never to be reused.
    initial: bool,
}

impl PerProc {
    fn new(p: ProcessId) -> Self {
        let _ = p;
        PerProc {
            view_id: ViewId::ZERO,
            sc_id: StartChangeId::ZERO,
            sc_set: ProcSet::new(),
            mode: Mode::Normal,
            initial: true,
        }
    }
}

/// Checker for the membership service safety specification (Fig. 2).
///
/// Validates, for every process `p`:
///
/// * `start_change_p(cid, set)`: `cid` strictly exceeds the previous
///   start-change id at `p`, and `p ∈ set`.
/// * `view_p(v)`: *Local Monotonicity* (`v.id > mbrshp_view[p].id`),
///   `v.set ⊆ start_change[p].set`, *Self Inclusion* (`p ∈ v.set`),
///   `v.startId(p) = start_change[p].id`, and a `start_change` preceded
///   the view (`mode[p] = change_started`).
///
/// §8: `crash_p` leaves the service state intact; `recover_p` resets
/// `mode[p]` to `normal`, forcing a fresh `start_change` before the next
/// view.
#[derive(Debug, Default)]
pub struct MbrshpSpec {
    procs: BTreeMap<ProcessId, PerProc>,
}

impl MbrshpSpec {
    /// Creates the checker in the spec's initial state.
    pub fn new() -> Self {
        MbrshpSpec::default()
    }

    fn proc(&mut self, p: ProcessId) -> &mut PerProc {
        self.procs.entry(p).or_insert_with(|| PerProc::new(p))
    }
}

impl Checker for MbrshpSpec {
    fn name(&self) -> &'static str {
        "MBRSHP"
    }

    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
        let step = entry.step;
        match &entry.event {
            Event::MbrshpStartChange { p, cid, set } => {
                let st = self.proc(*p);
                if !st.initial && *cid <= st.sc_id {
                    return Err(Violation::at_step(
                        "MBRSHP",
                        step,
                        format!(
                            "start_change_{p}: cid {cid} not greater than previous {}",
                            st.sc_id
                        ),
                    ));
                }
                // (For the first change any cid is acceptable:
                // StartChangeId::ZERO is the type's minimum, so the spec's
                // `cid ≥ cid₀` holds by construction.)
                if !set.contains(p) {
                    return Err(Violation::at_step(
                        "MBRSHP",
                        step,
                        format!("start_change_{p}: p not in suggested set {set:?}"),
                    ));
                }
                st.sc_id = *cid;
                st.sc_set = set.clone();
                st.mode = Mode::ChangeStarted;
                st.initial = false;
                Ok(())
            }
            Event::MbrshpView { p, view } => {
                let st = self.proc(*p);
                check_view_preconditions(*p, view, st, step)?;
                st.view_id = view.id();
                st.mode = Mode::Normal;
                Ok(())
            }
            Event::Recover { p } => {
                // §8: recover_p() sets mbrshp.mode[p] to normal.
                self.proc(*p).mode = Mode::Normal;
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

fn check_view_preconditions(
    p: ProcessId,
    view: &View,
    st: &PerProc,
    step: u64,
) -> Result<(), Violation> {
    if view.id() <= st.view_id {
        return Err(Violation::at_step(
            "MBRSHP",
            step,
            format!(
                "view_{p}: Local Monotonicity violated, {} not greater than {}",
                view.id(),
                st.view_id
            ),
        ));
    }
    if !view.contains(p) {
        return Err(Violation::at_step(
            "MBRSHP",
            step,
            format!("view_{p}: Self Inclusion violated, {p} not in {view}"),
        ));
    }
    if st.mode != Mode::ChangeStarted {
        return Err(Violation::at_step(
            "MBRSHP",
            step,
            format!("view_{p}: no start_change preceded this view (mode=normal)"),
        ));
    }
    if !view.members().iter().all(|m| st.sc_set.contains(m)) {
        return Err(Violation::at_step(
            "MBRSHP",
            step,
            format!(
                "view_{p}: member set {:?} not a subset of suggested set {:?}",
                view.members(),
                st.sc_set
            ),
        ));
    }
    if view.start_id(p) != Some(st.sc_id) {
        return Err(Violation::at_step(
            "MBRSHP",
            step,
            format!(
                "view_{p}: startId(p) = {:?} but last start_change id at p is {}",
                view.start_id(p),
                st.sc_id
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{SimTime, Trace};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn run(events: Vec<Event>) -> Vec<Violation> {
        let mut trace = Trace::new();
        for e in events {
            trace.record(SimTime::ZERO, e);
        }
        let mut spec = MbrshpSpec::new();
        let mut violations = Vec::new();
        for entry in trace.entries() {
            if let Err(v) = spec.observe(entry) {
                violations.push(v);
            }
        }
        violations
    }

    fn view(epoch: u64, members: &[u64], cids: &[u64]) -> View {
        View::new(
            ViewId::new(epoch, 0),
            members.iter().map(|&i| p(i)),
            members
                .iter()
                .zip(cids)
                .map(|(&i, &c)| (p(i), StartChangeId::new(c))),
        )
    }

    #[test]
    fn normal_sequence_accepted() {
        let v = view(1, &[1, 2], &[1, 1]);
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1, 2]) },
            Event::MbrshpStartChange { p: p(2), cid: StartChangeId::new(1), set: set(&[1, 2]) },
            Event::MbrshpView { p: p(1), view: v.clone() },
            Event::MbrshpView { p: p(2), view: v },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn view_without_start_change_rejected() {
        let v = view(1, &[1], &[1]);
        let violations = run(vec![Event::MbrshpView { p: p(1), view: v }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no start_change"), "{violations:?}");
    }

    #[test]
    fn non_monotone_cid_rejected() {
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(5), set: set(&[1]) },
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(5), set: set(&[1]) },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("not greater"));
    }

    #[test]
    fn self_exclusion_in_start_change_rejected() {
        let violations = run(vec![Event::MbrshpStartChange {
            p: p(1),
            cid: StartChangeId::new(1),
            set: set(&[2, 3]),
        }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("p not in suggested set"));
    }

    #[test]
    fn view_id_monotonicity_enforced() {
        let v1 = view(2, &[1], &[1]);
        let v2 = view(1, &[1], &[2]); // smaller epoch
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1]) },
            Event::MbrshpView { p: p(1), view: v1 },
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(2), set: set(&[1]) },
            Event::MbrshpView { p: p(1), view: v2 },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Local Monotonicity"));
    }

    #[test]
    fn view_members_must_be_subset_of_suggested() {
        let v = view(1, &[1, 2], &[1, 0]);
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1]) },
            Event::MbrshpView { p: p(1), view: v },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("subset"));
    }

    #[test]
    fn start_id_must_match_last_start_change() {
        let v = view(1, &[1], &[9]); // startId(p1) = 9 but last cid was 1
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1]) },
            Event::MbrshpView { p: p(1), view: v },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("startId"));
    }

    #[test]
    fn two_views_require_two_start_changes() {
        let v1 = view(1, &[1], &[1]);
        let v2 = view(2, &[1], &[1]);
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1]) },
            Event::MbrshpView { p: p(1), view: v1 },
            Event::MbrshpView { p: p(1), view: v2 }, // mode back to normal ⇒ reject
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no start_change"));
    }

    #[test]
    fn recovery_resets_mode() {
        let v1 = view(1, &[1], &[1]);
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1]) },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
            // mode was reset to normal by recovery ⇒ view without a fresh
            // start_change is rejected.
            Event::MbrshpView { p: p(1), view: v1 },
        ]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no start_change"));
    }

    #[test]
    fn cascading_start_changes_allowed_before_view() {
        // The spec explicitly allows adding processes mid-reconfiguration
        // as long as a new start_change is sent.
        let v = view(1, &[1, 2, 3], &[2, 0, 0]);
        let violations = run(vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::new(1), set: set(&[1, 2]) },
            Event::MbrshpStartChange {
                p: p(1),
                cid: StartChangeId::new(2),
                set: set(&[1, 2, 3]),
            },
            Event::MbrshpView { p: p(1), view: v },
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
