//! Oracle validation: generate *legal* traces directly from the
//! centralized spec automata, confirm the checkers accept them, then
//! apply targeted mutations (reorder, duplicate, drop, forge) and confirm
//! the checkers reject every mutant. A trace checker that accepts
//! corrupted histories would silently void the whole verification story.

use vsgm_ioa::{CheckSet, SimRng, SimTime, Trace, TraceEntry};
use vsgm_spec::{ClientSpec, SelfDeliverySpec, TransSetSpec, VsRfifoSpec, WvRfifoSpec};
use vsgm_types::{AppMsg, Event, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn members(n: u64) -> ProcSet {
    (1..=n).map(p).collect()
}

fn view(epoch: u64, n: u64) -> View {
    View::new(
        ViewId::new(epoch, 0),
        members(n),
        members(n).iter().map(|&m| (m, StartChangeId::new(epoch))),
    )
}

/// Generates a legal application-facing trace straight from the composed
/// spec semantics: views installed jointly, sends multicast, deliveries
/// FIFO and cut-aligned, self-delivery before views.
fn legal_trace(rng: &mut SimRng, rounds: u64) -> Trace {
    let n = 3u64;
    let mut t = Trace::new();
    let mut rec = |ev: Event| {
        t.record(SimTime::ZERO, ev);
    };
    for epoch in 1..=rounds {
        let v = view(epoch, n);
        // Block handshakes (needed from the second change on for CLIENT).
        if epoch > 1 {
            for i in 1..=n {
                rec(Event::Block { p: p(i) });
                rec(Event::BlockOk { p: p(i) });
            }
        }
        let t_set = if epoch == 1 {
            // First view: everyone moves from its own singleton.
            None
        } else {
            Some(members(n))
        };
        for i in 1..=n {
            rec(Event::GcsView {
                p: p(i),
                view: v.clone(),
                transitional: t_set.clone().unwrap_or_else(|| [p(i)].into_iter().collect()),
            });
        }
        // Workload: each member sends a couple of messages; everyone
        // delivers everything in FIFO order before the next round.
        let burst = 1 + rng.range(0, 3);
        let mut msgs = Vec::new();
        for i in 1..=n {
            for k in 0..burst {
                let m = AppMsg::from(format!("e{epoch}.{i}.{k}").as_str());
                rec(Event::Send { p: p(i), msg: m.clone() });
                msgs.push((p(i), m));
            }
        }
        for i in 1..=n {
            for (sender, m) in &msgs {
                rec(Event::Deliver { p: p(i), q: *sender, msg: m.clone() });
            }
        }
    }
    t
}

fn full_checks() -> CheckSet {
    let mut set = CheckSet::new();
    set.add(WvRfifoSpec::new());
    set.add(VsRfifoSpec::new());
    set.add(TransSetSpec::new());
    set.add(SelfDeliverySpec::new());
    set.add(ClientSpec::new());
    set
}

fn violations(trace: &Trace) -> usize {
    let mut checks = full_checks();
    checks.run(trace.entries());
    checks.violations().len()
}

fn reindex(entries: Vec<TraceEntry>) -> Trace {
    let mut t = Trace::new();
    for e in entries {
        t.record(e.time, e.event);
    }
    t
}

#[test]
fn legal_traces_accepted() {
    for seed in 0..30 {
        let mut rng = SimRng::new(seed);
        let rounds = 1 + rng.range(0, 4);
        let t = legal_trace(&mut rng, rounds);
        assert_eq!(violations(&t), 0, "seed {seed}: legal trace rejected");
    }
}

#[test]
fn swapping_two_deliveries_of_same_sender_rejected() {
    for seed in 0..30 {
        let mut rng = SimRng::new(1000 + seed);
        let t = legal_trace(&mut rng, 2);
        // Find two deliveries at the same receiver from the same sender.
        let entries = t.entries().to_vec();
        let pairs: Vec<(usize, usize)> = entries
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                entries.iter().enumerate().skip(i + 1).filter_map(move |(j, b)| {
                    match (&a.event, &b.event) {
                        (
                            Event::Deliver { p: pa, q: qa, msg: ma },
                            Event::Deliver { p: pb, q: qb, .. },
                        ) if pa == pb && qa == qb && {
                            let _ = ma;
                            true
                        } =>
                        {
                            Some((i, j))
                        }
                        _ => None,
                    }
                })
            })
            .collect();
        if pairs.is_empty() {
            continue;
        }
        let (i, j) = pairs[rng.index(pairs.len())];
        let mut mutated = entries.clone();
        mutated.swap(i, j);
        // Identical payloads would make the swap a no-op; skip those.
        if mutated[i].event == entries[i].event {
            continue;
        }
        assert!(
            violations(&reindex(mutated)) > 0,
            "seed {seed}: FIFO-violating swap accepted"
        );
    }
}

#[test]
fn duplicating_a_delivery_rejected() {
    for seed in 0..30 {
        let mut rng = SimRng::new(2000 + seed);
        let t = legal_trace(&mut rng, 2);
        let entries = t.entries().to_vec();
        let dels: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.event, Event::Deliver { .. }))
            .map(|(i, _)| i)
            .collect();
        if dels.is_empty() {
            continue;
        }
        let i = dels[rng.index(dels.len())];
        let mut mutated = entries.clone();
        mutated.insert(i + 1, entries[i].clone());
        assert!(violations(&reindex(mutated)) > 0, "seed {seed}: duplicate accepted");
    }
}

#[test]
fn dropping_a_delivery_breaks_virtual_synchrony() {
    // Remove one member's delivery of one message while it still installs
    // the next view: VS (identical cuts) must flag it.
    for seed in 0..30 {
        let mut rng = SimRng::new(3000 + seed);
        let t = legal_trace(&mut rng, 3);
        let entries = t.entries().to_vec();
        // Pick a delivery that precedes another GcsView for its process.
        let candidate = entries.iter().enumerate().find(|(i, e)| {
            matches!(&e.event, Event::Deliver { p, .. }
                if entries[i + 1..].iter().any(|later| matches!(&later.event,
                    Event::GcsView { p: q, .. } if q == p)))
        });
        let Some((i, _)) = candidate else { continue };
        let mut mutated = entries.clone();
        mutated.remove(i);
        assert!(
            violations(&reindex(mutated)) > 0,
            "seed {seed}: dropped delivery accepted"
        );
    }
}

#[test]
fn forged_delivery_rejected() {
    for seed in 0..30 {
        let mut rng = SimRng::new(4000 + seed);
        let t = legal_trace(&mut rng, 2);
        let mut entries = t.entries().to_vec();
        let i = rng.index(entries.len());
        entries.insert(
            i,
            TraceEntry {
                step: 0,
                time: SimTime::ZERO,
                event: Event::Deliver { p: p(1), q: p(2), msg: AppMsg::from("forged!") },
            },
        );
        assert!(violations(&reindex(entries)) > 0, "seed {seed}: forged delivery accepted");
    }
}

#[test]
fn skipping_self_delivery_rejected() {
    // Remove every self-delivery of one process in one epoch: SELF must
    // flag the next view.
    let mut rng = SimRng::new(5);
    let t = legal_trace(&mut rng, 2);
    let entries: Vec<TraceEntry> = t
        .entries()
        .iter()
        .filter(|e| {
            !matches!(&e.event, Event::Deliver { p: a, q: b, .. } if a == b && *a == p(1))
        })
        .cloned()
        .collect();
    assert!(violations(&reindex(entries)) > 0, "missing self-delivery accepted");
}

#[test]
fn view_regression_rejected() {
    let mut rng = SimRng::new(6);
    let t = legal_trace(&mut rng, 3);
    // Append an old view again at p1.
    let mut entries = t.entries().to_vec();
    entries.push(TraceEntry {
        step: 0,
        time: SimTime::ZERO,
        event: Event::GcsView {
            p: p(1),
            view: view(1, 3),
            transitional: [p(1)].into_iter().collect(),
        },
    });
    assert!(violations(&reindex(entries)) > 0, "view regression accepted");
}

#[test]
fn checker_reports_name_the_failing_spec() {
    let mut rng = SimRng::new(7);
    let t = legal_trace(&mut rng, 2);
    let mut entries = t.entries().to_vec();
    // Forge a send while blocked: only CLIENT should trip.
    let block_ok_at = entries
        .iter()
        .position(|e| matches!(e.event, Event::BlockOk { .. }))
        .expect("handshake present");
    entries.insert(
        block_ok_at + 1,
        TraceEntry {
            step: 0,
            time: SimTime::ZERO,
            event: Event::Send { p: p(1), msg: AppMsg::from("while blocked") },
        },
    );
    let mut checks = CheckSet::new();
    checks.add(ClientSpec::new());
    checks.run(reindex(entries).entries());
    assert_eq!(checks.violations().len(), 1);
    assert_eq!(checks.violations()[0].checker, "CLIENT:SPEC");
}
