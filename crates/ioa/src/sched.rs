//! Fair scheduling among enabled tasks.

use crate::rng::SimRng;
use std::collections::HashMap;
use std::hash::Hash;

/// A randomized scheduler with starvation avoidance.
///
/// The paper's executions are *fair*: every task that stays enabled
/// eventually fires (§2). A uniformly random scheduler is fair with
/// probability 1 but can starve a task for arbitrarily long in any finite
/// run, which perturbs experiments. `FairScheduler` tracks how long each
/// task has been passed over while enabled and force-picks any task whose
/// age exceeds [`FairScheduler::with_age_limit`]; below the limit it picks
/// uniformly at random. This yields bounded fairness: in every window of
/// `age_limit` scheduling decisions, a continuously enabled task fires at
/// least once.
///
/// ```
/// use vsgm_ioa::{FairScheduler, SimRng};
/// let mut sched = FairScheduler::with_age_limit(4);
/// let mut rng = SimRng::new(1);
/// let idx = sched.pick(&["a", "b"], &mut rng).unwrap();
/// assert!(idx < 2);
/// ```
#[derive(Debug, Clone)]
pub struct FairScheduler<K: Eq + Hash + Clone> {
    ages: HashMap<K, u64>,
    age_limit: u64,
}

impl<K: Eq + Hash + Clone> Default for FairScheduler<K> {
    fn default() -> Self {
        FairScheduler::with_age_limit(64)
    }
}

impl<K: Eq + Hash + Clone> FairScheduler<K> {
    /// Creates a scheduler that force-picks any task passed over `limit`
    /// times in a row while enabled.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_age_limit(limit: u64) -> Self {
        assert!(limit > 0, "age limit must be positive");
        FairScheduler { ages: HashMap::new(), age_limit: limit }
    }

    /// Picks the index of one of `candidates` (the currently enabled
    /// tasks). Returns `None` if no task is enabled.
    ///
    /// Ages of tasks not currently enabled are reset: fairness only
    /// protects *continuously* enabled tasks, exactly as the paper's
    /// fairness condition does.
    pub fn pick(&mut self, candidates: &[K], rng: &mut SimRng) -> Option<usize> {
        if candidates.is_empty() {
            self.ages.clear();
            return None;
        }
        // Drop bookkeeping for tasks that ceased to be enabled.
        self.ages.retain(|k, _| candidates.contains(k));

        // Find the most-starved candidate, ties broken by candidate order.
        let (starved_idx, starved_age) = candidates
            .iter()
            .enumerate()
            .map(|(i, k)| (i, self.ages.get(k).copied().unwrap_or(0)))
            .max_by_key(|&(i, age)| (age, std::cmp::Reverse(i)))
            .expect("candidates nonempty");

        let chosen = if starved_age >= self.age_limit {
            starved_idx
        } else {
            rng.index(candidates.len())
        };

        for (i, k) in candidates.iter().enumerate() {
            if i == chosen {
                self.ages.remove(k);
            } else {
                *self.ages.entry(k.clone()).or_insert(0) += 1;
            }
        }
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_candidates_yield_none() {
        let mut s: FairScheduler<u32> = FairScheduler::default();
        let mut rng = SimRng::new(0);
        assert_eq!(s.pick(&[], &mut rng), None);
    }

    #[test]
    fn single_candidate_always_picked() {
        let mut s = FairScheduler::with_age_limit(4);
        let mut rng = SimRng::new(0);
        for _ in 0..10 {
            assert_eq!(s.pick(&["only"], &mut rng), Some(0));
        }
    }

    #[test]
    fn bounded_starvation() {
        let mut s = FairScheduler::with_age_limit(8);
        let mut rng = SimRng::new(42);
        // Track the longest gap between consecutive picks of task 1.
        let mut last_pick_of_b: i64 = 0;
        let mut max_gap = 0i64;
        for step in 1..=1000i64 {
            let idx = s.pick(&["a", "b"], &mut rng).unwrap();
            if idx == 1 {
                max_gap = max_gap.max(step - last_pick_of_b);
                last_pick_of_b = step;
            }
        }
        max_gap = max_gap.max(1000 - last_pick_of_b);
        assert!(max_gap <= 9, "task starved for {max_gap} rounds");
    }

    #[test]
    fn ages_reset_when_disabled() {
        let mut s = FairScheduler::with_age_limit(3);
        let mut rng = SimRng::new(7);
        // Age up task "b" almost to the limit by repeatedly offering both
        // but observing only what pick returns; then disable it.
        for _ in 0..2 {
            s.pick(&["a", "b"], &mut rng);
        }
        // "b" disabled: its age bookkeeping is discarded.
        s.pick(&["a"], &mut rng);
        assert!(!s.ages.contains_key("b"));
    }

    #[test]
    #[should_panic(expected = "age limit must be positive")]
    fn zero_limit_rejected() {
        let _ = FairScheduler::<u32>::with_age_limit(0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = FairScheduler::with_age_limit(5);
            let mut rng = SimRng::new(seed);
            (0..50).map(|_| s.pick(&[1, 2, 3], &mut rng).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
