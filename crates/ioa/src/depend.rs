//! Dependency (commutativity) metadata for scheduled transitions, and the
//! sleep sets built on it — the kernel of DPOR-style partial-order
//! reduction (`vsgm-explore`).
//!
//! Two transitions are **independent** when, from every state where both
//! are enabled, (a) firing one leaves the other enabled and (b) firing
//! them in either order reaches the same state. Under that contract, two
//! interleavings that differ only by swapping adjacent independent
//! transitions are equivalent (they are linearizations of the same
//! Mazurkiewicz trace), so an explorer that checks one of them may soundly
//! skip the other.
//!
//! [`Dependence`] is the interface a transition type implements to declare
//! a *conservative over-approximation* of dependence: declaring two
//! transitions dependent when they actually commute only costs pruning
//! power, while declaring them independent when they do not commute is
//! unsound. [`SleepSet`] implements the classic sleep-set algorithm of
//! Godefroid's thesis over that relation: a set of transitions whose
//! exploration from the current state is provably redundant because an
//! equivalent interleaving was (or will be) explored from a sibling
//! branch.

/// A conservative dependence relation over a transition alphabet.
///
/// Implementations must be symmetric (`a.dependent(b) == b.dependent(a)`)
/// and may only return `false` when the two transitions genuinely commute
/// from every common state *and* neither can disable the other. When in
/// doubt, return `true`: over-approximating dependence is always sound.
pub trait Dependence {
    /// Whether `self` and `other` may fail to commute (or may enable /
    /// disable one another).
    fn dependent(&self, other: &Self) -> bool;
}

/// A sleep set: transitions that need not be explored from the current
/// state because an equivalent schedule is covered by a sibling branch.
///
/// Usage, per DFS node:
///
/// 1. Skip every enabled transition contained in the sleep set.
/// 2. After exploring transition `t`, [`SleepSet::insert`] `t` so later
///    siblings do not re-explore interleavings that merely postpone `t`.
/// 3. For the child state reached by firing `t`, start from
///    [`SleepSet::inherit`]\(`t`\): the entries independent of `t` stay
///    asleep (their redundancy argument survives `t`), the rest wake up.
#[derive(Debug, Clone, Default)]
pub struct SleepSet<T> {
    asleep: Vec<T>,
}

impl<T: Dependence + Clone + PartialEq> SleepSet<T> {
    /// The empty sleep set (used at the DFS root).
    pub fn new() -> Self {
        SleepSet { asleep: Vec::new() }
    }

    /// Whether `t` is asleep (exploring it here is redundant).
    pub fn contains(&self, t: &T) -> bool {
        self.asleep.iter().any(|s| s == t)
    }

    /// Puts `t` to sleep for the *current* state's remaining branches.
    pub fn insert(&mut self, t: T) {
        if !self.contains(&t) {
            self.asleep.push(t);
        }
    }

    /// The sleep set for the child state reached by firing `fired`: keeps
    /// exactly the entries independent of `fired`.
    pub fn inherit(&self, fired: &T) -> Self {
        SleepSet {
            asleep: self.asleep.iter().filter(|s| !s.dependent(fired)).cloned().collect(),
        }
    }

    /// Number of sleeping transitions.
    pub fn len(&self) -> usize {
        self.asleep.len()
    }

    /// Whether nothing is asleep.
    pub fn is_empty(&self) -> bool {
        self.asleep.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy alphabet: transitions on a named channel; two transitions are
    /// dependent iff they touch the same channel.
    #[derive(Debug, Clone, PartialEq)]
    struct OnChannel(u8);

    impl Dependence for OnChannel {
        fn dependent(&self, other: &Self) -> bool {
            self.0 == other.0
        }
    }

    #[test]
    fn insert_and_contains() {
        let mut s = SleepSet::new();
        assert!(s.is_empty());
        s.insert(OnChannel(1));
        s.insert(OnChannel(1)); // idempotent
        s.insert(OnChannel(2));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&OnChannel(1)));
        assert!(!s.contains(&OnChannel(3)));
    }

    #[test]
    fn inherit_keeps_independent_drops_dependent() {
        let mut s = SleepSet::new();
        s.insert(OnChannel(1));
        s.insert(OnChannel(2));
        let child = s.inherit(&OnChannel(2));
        // Channel 1 commutes with the fired transition: still asleep.
        assert!(child.contains(&OnChannel(1)));
        // Channel 2 is dependent on it: woken up in the child.
        assert!(!child.contains(&OnChannel(2)));
        assert_eq!(child.len(), 1);
    }

    #[test]
    fn inherit_from_empty_is_empty() {
        let s: SleepSet<OnChannel> = SleepSet::new();
        assert!(s.inherit(&OnChannel(7)).is_empty());
    }
}
