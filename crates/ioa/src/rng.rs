//! Seeded, reproducible randomness for simulations.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A deterministic random source for schedules, latencies, and faults.
///
/// Every nondeterministic choice a simulation makes flows through one
/// `SimRng`, so a `(scenario, seed)` pair fully determines the execution —
/// failed property-test cases replay exactly.
///
/// ```
/// use vsgm_ioa::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0, 100), b.range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator (e.g. one per component) so
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let child_seed = self
            .inner
            .gen::<u64>()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label);
        SimRng::new(child_seed)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Picks a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.inner)
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let xs: Vec<u64> = (0..20).map(|_| a.range(0, 1000)).collect();
        let ys: Vec<u64> = (0..20).map(|_| b.range(0, 1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let xs: Vec<u64> = (0..20).map(|_| a.range(0, u64::MAX)).collect();
        let ys: Vec<u64> = (0..20).map(|_| b.range(0, u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn forked_children_are_deterministic() {
        let mut root1 = SimRng::new(9);
        let mut root2 = SimRng::new(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.range(0, 100), c2.range(0, 100));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::new(4);
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));
        assert_eq!(r.choose::<u32>(&[]), None);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range(5, 5);
    }
}
