//! Trace checkers: executable counterparts of the paper's specification
//! automata.
//!
//! A [`Checker`] replays a global trace against a centralized spec
//! automaton (Figs. 2–7). For each observed external action it verifies
//! that a corresponding spec transition is enabled and applies its effect;
//! if no transition is enabled the trace is **not** a trace of the spec and
//! a [`Violation`] is reported. This turns the paper's refinement proofs
//! into a model-based testing oracle.

use crate::trace::TraceEntry;
use std::fmt;

/// A safety (or end-of-run liveness) violation found by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the checker (spec automaton) that rejected the trace.
    pub checker: String,
    /// Step at which the violation occurred (`None` for end-of-run checks).
    pub step: Option<u64>,
    /// Human-readable description: which precondition failed and why.
    pub message: String,
}

impl Violation {
    /// Creates a violation tied to a specific trace step.
    pub fn at_step(checker: &str, step: u64, message: impl Into<String>) -> Self {
        Violation { checker: checker.to_string(), step: Some(step), message: message.into() }
    }

    /// Creates an end-of-run violation (used by liveness checks).
    pub fn at_end(checker: &str, message: impl Into<String>) -> Self {
        Violation { checker: checker.to_string(), step: None, message: message.into() }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(s) => write!(f, "[{}] step {}: {}", self.checker, s, self.message),
            None => write!(f, "[{}] end of run: {}", self.checker, self.message),
        }
    }
}

impl std::error::Error for Violation {}

/// A spec automaton replayed over a trace.
///
/// Implementations keep the spec's state; [`Checker::observe`] attempts the
/// spec transition matching the event and errors if it is not enabled.
/// [`Checker::finish`] runs once at the end of the trace, for properties
/// that can only be judged on the complete run (transitional-set
/// consistency, liveness under stabilization).
pub trait Checker {
    /// Stable name used in violation reports, e.g. `"WV_RFIFO:SPEC"`.
    fn name(&self) -> &'static str;

    /// Observes one trace entry.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] if no spec transition is enabled for the
    /// event in the checker's current state.
    fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation>;

    /// Judges end-of-trace conditions.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] if a whole-run property fails.
    fn finish(&mut self) -> Result<(), Violation> {
        Ok(())
    }
}

/// Runs a set of checkers over a trace, collecting every violation.
#[derive(Default)]
pub struct CheckSet {
    checkers: Vec<Box<dyn Checker>>,
    violations: Vec<Violation>,
}

impl CheckSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CheckSet::default()
    }

    /// Adds a checker.
    pub fn add(&mut self, checker: impl Checker + 'static) -> &mut Self {
        self.checkers.push(Box::new(checker));
        self
    }

    /// Adds a checker mid-run, first replaying the already-recorded
    /// `entries` into it (violations found during replay are retained).
    /// This makes attach time irrelevant: the checker judges the whole
    /// trace as if it had been present from the start.
    pub fn add_with_history(
        &mut self,
        mut checker: impl Checker + 'static,
        entries: &[TraceEntry],
    ) -> &mut Self {
        for e in entries {
            if let Err(v) = checker.observe(e) {
                self.violations.push(v);
            }
        }
        self.checkers.push(Box::new(checker));
        self
    }

    /// Feeds one entry to every checker, retaining violations.
    pub fn observe(&mut self, entry: &TraceEntry) {
        for c in &mut self.checkers {
            if let Err(v) = c.observe(entry) {
                self.violations.push(v);
            }
        }
    }

    /// Runs the end-of-trace checks.
    pub fn finish(&mut self) {
        for c in &mut self.checkers {
            if let Err(v) = c.finish() {
                self.violations.push(v);
            }
        }
    }

    /// Replays an entire trace (observe every entry, then finish) and
    /// returns all violations found.
    pub fn run(&mut self, entries: &[TraceEntry]) -> &[Violation] {
        for e in entries {
            self.observe(e);
        }
        self.finish();
        self.violations()
    }

    /// Violations accumulated so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no checker has rejected the trace.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable report if any violation was found. Intended
    /// for tests.
    ///
    /// # Panics
    ///
    /// Panics if violations were recorded.
    #[track_caller]
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let report: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
            panic!("spec violations:\n{}", report.join("\n"));
        }
    }
}

impl fmt::Debug for CheckSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckSet")
            .field("checkers", &self.checkers.len())
            .field("violations", &self.violations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use vsgm_types::{AppMsg, Event, ProcessId};

    /// Toy checker: rejects any trace with more than `limit` sends.
    struct MaxSends {
        limit: usize,
        seen: usize,
    }

    impl Checker for MaxSends {
        fn name(&self) -> &'static str {
            "MAX_SENDS"
        }
        fn observe(&mut self, entry: &TraceEntry) -> Result<(), Violation> {
            if matches!(entry.event, Event::Send { .. }) {
                self.seen += 1;
                if self.seen > self.limit {
                    return Err(Violation::at_step(self.name(), entry.step, "too many sends"));
                }
            }
            Ok(())
        }
        fn finish(&mut self) -> Result<(), Violation> {
            if self.seen == 0 {
                return Err(Violation::at_end(self.name(), "no sends at all"));
            }
            Ok(())
        }
    }

    fn send_entry(step: u64) -> TraceEntry {
        TraceEntry {
            step,
            time: SimTime::ZERO,
            event: Event::Send { p: ProcessId::new(1), msg: AppMsg::from("x") },
        }
    }

    #[test]
    fn clean_run() {
        let mut set = CheckSet::new();
        set.add(MaxSends { limit: 2, seen: 0 });
        set.run(&[send_entry(0), send_entry(1)]);
        assert!(set.is_clean());
        set.assert_clean();
    }

    #[test]
    fn violation_is_reported_with_step() {
        let mut set = CheckSet::new();
        set.add(MaxSends { limit: 1, seen: 0 });
        let violations = set.run(&[send_entry(0), send_entry(1)]).to_vec();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].step, Some(1));
        assert!(violations[0].to_string().contains("MAX_SENDS"));
    }

    #[test]
    fn finish_violation_has_no_step() {
        let mut set = CheckSet::new();
        set.add(MaxSends { limit: 1, seen: 0 });
        set.run(&[]);
        assert_eq!(set.violations()[0].step, None);
        assert!(set.violations()[0].to_string().contains("end of run"));
    }

    #[test]
    #[should_panic(expected = "spec violations")]
    fn assert_clean_panics_on_violation() {
        let mut set = CheckSet::new();
        set.add(MaxSends { limit: 0, seen: 0 });
        set.run(&[send_entry(0)]);
        set.assert_clean();
    }

    #[test]
    fn multiple_checkers_all_observe() {
        let mut set = CheckSet::new();
        set.add(MaxSends { limit: 0, seen: 0 });
        set.add(MaxSends { limit: 10, seen: 0 });
        set.run(&[send_entry(0)]);
        // First checker trips, second stays clean.
        assert_eq!(set.violations().len(), 1);
    }
}
