//! Execution kit for I/O-automaton-style components (§2 of the paper).
//!
//! The paper models every component — end-points, the membership service,
//! the `CO_RFIFO` substrate — as an I/O automaton: a state machine whose
//! locally controlled actions fire when their preconditions hold, under a
//! fairness condition over tasks. This crate provides the machinery shared
//! by the executable transcriptions of those automata:
//!
//! * [`time::SimTime`] — discrete simulated time.
//! * [`rng::SimRng`] — seeded, reproducible randomness for schedule and
//!   fault exploration.
//! * [`automaton::Automaton`] — the enabled/fire interface every algorithm
//!   automaton in this workspace implements, plus a quiescence driver.
//! * [`trace::Trace`] — a recorded global execution trace of external
//!   actions, with projections and JSON export.
//! * [`check::Checker`] — the interface spec automata implement to validate
//!   traces (the executable counterpart of the paper's trace-inclusion
//!   proofs), and [`check::CheckSet`] to run many at once.
//! * [`sched::FairScheduler`] — weighted random choice among enabled tasks
//!   with starvation avoidance, approximating the paper's low-level
//!   fairness assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod check;
pub mod depend;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;

pub use automaton::Automaton;
pub use check::{CheckSet, Checker, Violation};
pub use depend::{Dependence, SleepSet};
pub use rng::SimRng;
pub use sched::FairScheduler;
pub use time::SimTime;
pub use trace::{Trace, TraceEntry};
