//! Recorded execution traces of external actions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use vsgm_types::{Event, ProcessId};

/// One step of an execution trace: an external action, the step counter at
/// which it occurred, and the simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Global step counter (total order over all events in the run).
    pub step: u64,
    /// Simulated time at which the action occurred.
    pub time: SimTime,
    /// The external action.
    pub event: Event,
}

/// A global execution trace: the totally ordered sequence of external
/// actions a run produced (§2, "a trace is a subsequence of an execution
/// consisting solely of the automaton's external actions").
///
/// ```
/// use vsgm_ioa::{Trace, SimTime};
/// use vsgm_types::{Event, ProcessId, AppMsg};
///
/// let mut t = Trace::new();
/// t.record(SimTime::ZERO, Event::Send { p: ProcessId::new(1), msg: AppMsg::from("m") });
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.entries()[0].step, 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event at the given simulated time, assigning the next
    /// step number, and returns the entry's step.
    pub fn record(&mut self, time: SimTime, event: Event) -> u64 {
        let step = self.entries.len() as u64;
        self.entries.push(TraceEntry { step, time, event });
        step
    }

    /// All entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Projection onto the actions of a single process (the per-process
    /// subsequence used by local properties such as Local Monotonicity).
    pub fn at_process(&self, p: ProcessId) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter().filter(move |e| e.event.process() == p)
    }

    /// Projection onto the application-facing interface (what remains
    /// visible after the §5 composition hides internal actions).
    pub fn application_facing(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter().filter(|e| e.event.is_application_facing())
    }

    /// Counts events per [`Event::kind`] name.
    pub fn kind_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.event.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Serializes the trace as JSON lines (one entry per line), suitable
    /// for archiving failing runs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&serde_json::to_string(e).expect("trace entries are serializable"));
            out.push('\n');
        }
        out
    }

    /// Parses a trace back from [`Trace::to_json_lines`] output.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if any line fails to parse.
    pub fn from_json_lines(s: &str) -> Result<Trace, serde_json::Error> {
        let mut entries = Vec::new();
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            entries.push(serde_json::from_str(line)?);
        }
        Ok(Trace { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{AppMsg, View};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, Event::Send { p: p(1), msg: AppMsg::from("a") });
        t.record(
            SimTime::from_micros(3),
            Event::Deliver { p: p(2), q: p(1), msg: AppMsg::from("a") },
        );
        t.record(SimTime::from_micros(5), Event::Live { p: p(1), set: Default::default() });
        t
    }

    #[test]
    fn record_assigns_sequential_steps() {
        let t = sample_trace();
        let steps: Vec<u64> = t.entries().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn process_projection() {
        let t = sample_trace();
        let at1: Vec<_> = t.at_process(p(1)).collect();
        assert_eq!(at1.len(), 2); // Send + Live
        let at2: Vec<_> = t.at_process(p(2)).collect();
        assert_eq!(at2.len(), 1); // Deliver occurs at the receiver
    }

    #[test]
    fn application_projection_hides_net_events() {
        let t = sample_trace();
        let app: Vec<_> = t.application_facing().collect();
        assert_eq!(app.len(), 2);
    }

    #[test]
    fn kind_counts_tally() {
        let t = sample_trace();
        let counts = t.kind_counts();
        assert_eq!(counts["send"], 1);
        assert_eq!(counts["deliver"], 1);
        assert_eq!(counts["co_rfifo.live"], 1);
    }

    #[test]
    fn json_lines_roundtrip() {
        let mut t = sample_trace();
        t.record(
            SimTime::from_micros(9),
            Event::GcsView { p: p(1), view: View::initial(p(1)), transitional: Default::default() },
        );
        let s = t.to_json_lines();
        let back = Trace::from_json_lines(&s).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.entries()[3].event, t.entries()[3].event);
    }

    #[test]
    fn from_json_lines_skips_blank_lines() {
        let t = sample_trace();
        let padded = format!("\n{}\n\n", t.to_json_lines());
        assert_eq!(Trace::from_json_lines(&padded).unwrap().len(), 3);
    }

    #[test]
    fn from_json_lines_rejects_garbage() {
        assert!(Trace::from_json_lines("not json").is_err());
    }
}
