//! Discrete simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in abstract microseconds.
///
/// The asynchronous model of the paper has no real-time bounds; simulated
/// time exists only so the discrete-event network can order message
/// arrivals and the experiments can report latencies in a common unit.
///
/// ```
/// use vsgm_ioa::SimTime;
/// let t = SimTime::ZERO + SimTime::from_micros(5);
/// assert_eq!(t.as_micros(), 5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since the start of the run.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 14);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_micros(), 6);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(2_500).as_millis(), 2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_micros(5_000).to_string(), "5.000ms");
        assert_eq!(SimTime::from_micros(5_000_000).to_string(), "5.000s");
    }
}
