//! The enabled/fire interface implemented by algorithm automata.

use crate::rng::SimRng;
use std::fmt;

/// An I/O automaton's locally controlled behavior, in precondition/effect
/// style (§2).
///
/// Implementations expose the set of locally controlled actions whose
/// preconditions currently hold ([`Automaton::enabled_actions`]) and
/// execute one atomically ([`Automaton::fire`]), returning the externally
/// visible effects. Input actions are ordinary methods on the concrete
/// types (inputs are always enabled, so they need no precondition
/// machinery).
///
/// Two drivers are provided: [`drain`] fires actions in the deterministic
/// order `enabled_actions` lists them (the production mode), and
/// [`drain_random`] picks uniformly at random (schedule exploration for
/// model-based tests). Both run until quiescence.
pub trait Automaton {
    /// A locally controlled action, possibly parameterized.
    type Action: Clone + fmt::Debug;
    /// An externally visible effect of firing an action.
    type Effect;

    /// Locally controlled actions enabled in the current state, in a
    /// deterministic canonical order.
    fn enabled_actions(&self) -> Vec<Self::Action>;

    /// Fires one action. Implementations may assume (and should
    /// `debug_assert!`) that `action` is currently enabled.
    fn fire(&mut self, action: &Self::Action) -> Vec<Self::Effect>;

    /// Whether no locally controlled action is enabled.
    fn is_quiescent(&self) -> bool {
        self.enabled_actions().is_empty()
    }
}

/// Fires enabled actions in canonical order until quiescence (or
/// `max_steps`), forwarding each `(action, effects)` pair to `sink`.
///
/// Returns the number of actions fired.
///
/// # Panics
///
/// Panics if `max_steps` is exceeded — quiescence failing to arrive in a
/// bounded automaton indicates a livelock bug, and hiding it would mask
/// liveness violations.
pub fn drain<A: Automaton>(
    a: &mut A,
    max_steps: usize,
    mut sink: impl FnMut(&A::Action, Vec<A::Effect>),
) -> usize {
    let mut fired = 0;
    loop {
        let actions = a.enabled_actions();
        let Some(action) = actions.first().cloned() else { return fired };
        let effects = a.fire(&action);
        sink(&action, effects);
        fired += 1;
        assert!(fired <= max_steps, "automaton did not quiesce within {max_steps} steps");
    }
}

/// Like [`drain`] but picks a uniformly random enabled action each step,
/// exploring alternative schedules. Deterministic for a given `rng` seed.
///
/// # Panics
///
/// Panics if `max_steps` is exceeded.
pub fn drain_random<A: Automaton>(
    a: &mut A,
    rng: &mut SimRng,
    max_steps: usize,
    mut sink: impl FnMut(&A::Action, Vec<A::Effect>),
) -> usize {
    let mut fired = 0;
    loop {
        let actions = a.enabled_actions();
        if actions.is_empty() {
            return fired;
        }
        let action = actions[rng.index(actions.len())].clone();
        let effects = a.fire(&action);
        sink(&action, effects);
        fired += 1;
        assert!(fired <= max_steps, "automaton did not quiesce within {max_steps} steps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy automaton: counts down `n` with two action kinds.
    struct Countdown {
        n: u32,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Act {
        Dec,
        Zero,
    }

    impl Automaton for Countdown {
        type Action = Act;
        type Effect = u32;

        fn enabled_actions(&self) -> Vec<Act> {
            match self.n {
                0 => vec![],
                1 => vec![Act::Zero],
                _ => vec![Act::Dec, Act::Zero],
            }
        }

        fn fire(&mut self, action: &Act) -> Vec<u32> {
            match action {
                Act::Dec => {
                    self.n -= 1;
                    vec![self.n]
                }
                Act::Zero => {
                    let old = self.n;
                    self.n = 0;
                    vec![old]
                }
            }
        }
    }

    #[test]
    fn drain_reaches_quiescence_in_order() {
        let mut a = Countdown { n: 3 };
        let mut log = Vec::new();
        let fired = drain(&mut a, 100, |act, eff| log.push((act.clone(), eff)));
        // Canonical order always picks Dec first: 3→2→1, then Zero.
        assert_eq!(fired, 3);
        assert!(a.is_quiescent());
        assert_eq!(log.last().unwrap().0, Act::Zero);
    }

    #[test]
    fn drain_random_is_seed_deterministic() {
        let run = |seed| {
            let mut a = Countdown { n: 5 };
            let mut rng = SimRng::new(seed);
            let mut log = Vec::new();
            drain_random(&mut a, &mut rng, 100, |act, _| log.push(act.clone()));
            log
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn drain_random_explores_different_schedules() {
        let lens: std::collections::BTreeSet<usize> = (0..20)
            .map(|seed| {
                let mut a = Countdown { n: 5 };
                let mut rng = SimRng::new(seed);
                drain_random(&mut a, &mut rng, 100, |_, _| {})
            })
            .collect();
        // Some seeds jump straight to Zero, others decrement first.
        assert!(lens.len() > 1, "expected schedule diversity, got {lens:?}");
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn drain_detects_livelock() {
        struct Forever;
        impl Automaton for Forever {
            type Action = ();
            type Effect = ();
            fn enabled_actions(&self) -> Vec<()> {
                vec![()]
            }
            fn fire(&mut self, _: &()) -> Vec<()> {
                vec![]
            }
        }
        drain(&mut Forever, 10, |_, _| {});
    }
}
