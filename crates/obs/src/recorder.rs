//! The recording interface threaded through the protocol layers.

use crate::event::{ObsEvent, ObsRecord};
use crate::journal::Journal;
use crate::registry::{names, Registry};
use vsgm_ioa::SimTime;
use vsgm_types::{ProcessId, StartChangeId};

/// Sink for protocol observations.
///
/// Every method has a no-op default body, so the disabled path (the
/// [`NoopRecorder`]) costs a virtual call that immediately returns — no
/// allocation, no formatting, no branching in the instrumented layers.
/// Instrumented code takes `&mut dyn Recorder` and calls unconditionally.
pub trait Recorder {
    /// Advances the recorder's notion of simulated time; subsequent
    /// events are stamped with `now`. Called by the simulation driver —
    /// the protocol automata themselves are time-free.
    fn advance_time(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Records a protocol event at `pid`, grouped into the view-change
    /// span `cid` when applicable.
    fn event(&mut self, pid: ProcessId, cid: Option<StartChangeId>, event: ObsEvent) {
        let _ = (pid, cid, event);
    }

    /// Adds `delta` to the counter `name`.
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value`.
    fn gauge(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records `value` into the histogram `name`.
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Accounts one point-to-point send of `bytes` wire bytes of a
    /// message with `tag`.
    fn traffic(&mut self, tag: &'static str, bytes: u64) {
        let _ = (tag, bytes);
    }
}

/// The disabled recorder: every hook inherits the empty default body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A bare [`Registry`] is a metrics-only recorder: events bump their
/// counters, but no journal is kept and time is ignored.
impl Recorder for Registry {
    fn event(&mut self, _pid: ProcessId, _cid: Option<StartChangeId>, event: ObsEvent) {
        self.incr(event.counter_name(), 1);
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.incr(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: u64) {
        self.set_gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        Registry::observe(self, name, value);
    }

    fn traffic(&mut self, tag: &'static str, bytes: u64) {
        self.record_traffic(tag, bytes);
    }
}

/// The enabled recorder: appends every event to a [`Journal`], mirrors
/// events and metrics into a [`Registry`], and derives span metrics
/// (sync-round latency) as spans close.
#[derive(Debug, Clone, Default)]
pub struct ObsRecorder {
    journal: Journal,
    registry: Registry,
    now: SimTime,
    step: u64,
    open_spans: std::collections::BTreeMap<(ProcessId, StartChangeId), SimTime>,
}

impl ObsRecorder {
    /// Creates an empty recorder at time zero.
    pub fn new() -> Self {
        ObsRecorder::default()
    }

    /// The recorded journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (for host-side gauges).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The recorder's current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl Recorder for ObsRecorder {
    fn advance_time(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn event(&mut self, pid: ProcessId, cid: Option<StartChangeId>, event: ObsEvent) {
        let step = self.step;
        self.step += 1;
        self.journal.push(ObsRecord { pid, step, time: self.now, cid, event });
        self.registry.incr(event.counter_name(), 1);
        if let Some(c) = cid {
            // Exhaustive over the observability vocabulary: each variant
            // either opens (or extends) the view-change span keyed by its
            // cid, or closes it. A new variant must decide its role here.
            match event {
                ObsEvent::ViewInstalled => {
                    // Close the span: derive the sync-round latency. The
                    // open time falls back to the install time itself for
                    // spans whose opening was never observed (e.g. a
                    // recorder attached mid-run).
                    let opened = self.open_spans.remove(&(pid, c)).unwrap_or(self.now);
                    self.registry.observe(
                        names::SYNC_ROUND_LATENCY_US,
                        self.now.saturating_sub(opened).as_micros(),
                    );
                }
                ObsEvent::StartChangeRecv
                | ObsEvent::SyncSent
                | ObsEvent::SyncRecv
                | ObsEvent::CutAgreed
                | ObsEvent::BlockRequested
                | ObsEvent::BlockOk
                | ObsEvent::ForwardSent
                | ObsEvent::MsgSent
                | ObsEvent::MsgDelivered
                | ObsEvent::RecoveryReset
                | ObsEvent::BatchFlushed
                | ObsEvent::InvariantViolated
                | ObsEvent::CorruptionInjected
                | ObsEvent::AuditFailed
                | ObsEvent::AuditReconciled => {
                    self.open_spans.entry((pid, c)).or_insert(self.now);
                }
            }
        }
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.registry.incr(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: u64) {
        self.registry.set_gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.registry.observe(name, value);
    }

    fn traffic(&mut self, tag: &'static str, bytes: u64) {
        self.registry.record_traffic(tag, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let mut r = NoopRecorder;
        r.advance_time(SimTime::from_micros(5));
        r.event(p(1), None, ObsEvent::MsgSent);
        r.counter("x", 1);
        r.traffic("app_msg", 10);
    }

    #[test]
    fn obs_recorder_stamps_time_and_steps() {
        let mut r = ObsRecorder::new();
        r.advance_time(SimTime::from_micros(3));
        r.event(p(1), None, ObsEvent::MsgSent);
        r.advance_time(SimTime::from_micros(9));
        r.event(p(2), None, ObsEvent::MsgDelivered);
        let recs = r.journal().records();
        assert_eq!(recs[0].step, 0);
        assert_eq!(recs[1].step, 1);
        assert_eq!(recs[0].time, SimTime::from_micros(3));
        assert_eq!(recs[1].time, SimTime::from_micros(9));
        assert_eq!(r.registry().counter(ObsEvent::MsgSent.counter_name()), 1);
    }

    #[test]
    fn time_never_moves_backwards() {
        let mut r = ObsRecorder::new();
        r.advance_time(SimTime::from_micros(10));
        r.advance_time(SimTime::from_micros(4));
        assert_eq!(r.now(), SimTime::from_micros(10));
    }

    #[test]
    fn invariant_violation_is_journalled_and_counted() {
        let mut r = ObsRecorder::new();
        let cid = Some(StartChangeId::new(7));
        r.event(p(1), cid, ObsEvent::InvariantViolated);
        assert_eq!(r.journal().count(ObsEvent::InvariantViolated), 1);
        assert_eq!(
            r.registry().counter(ObsEvent::InvariantViolated.counter_name()),
            1
        );
        // A violation observed during a change opens the span (so the
        // journal shows which round went wrong) without closing it.
        let h = r.registry().histogram(names::SYNC_ROUND_LATENCY_US);
        assert!(h.is_none_or(|h| h.count() == 0));
    }

    #[test]
    fn span_close_derives_sync_round_latency() {
        let mut r = ObsRecorder::new();
        let cid = Some(StartChangeId::new(1));
        r.advance_time(SimTime::from_micros(100));
        r.event(p(1), cid, ObsEvent::StartChangeRecv);
        r.event(p(1), cid, ObsEvent::SyncSent);
        r.advance_time(SimTime::from_micros(250));
        r.event(p(1), cid, ObsEvent::ViewInstalled);
        let h = r.registry().histogram(names::SYNC_ROUND_LATENCY_US).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 150);
        let spans = r.journal().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].latency(), Some(SimTime::from_micros(150)));
    }
}
