//! The protocol event vocabulary and journal records.

use serde::{Serialize, Value};
use std::fmt;
use vsgm_ioa::SimTime;
use vsgm_types::{ProcessId, StartChangeId};

/// One protocol-level observation, deliberately compact (a plain `Copy`
/// discriminant): the interesting payload — which process, which
/// view-change span — lives in the enclosing [`ObsRecord`].
///
/// The vocabulary mirrors the paper's automata: the membership interface
/// (Fig. 2), the virtual-synchrony round (Figs. 5–7), the blocking
/// handshake, forwarding (§5.2.2), and crash/recovery (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsEvent {
    /// `MBRSHP.start_change` received by an end-point: a view-change span
    /// opens (the record's `cid` is the span key).
    StartChangeRecv,
    /// The end-point multicast its synchronization message for the
    /// current span.
    SyncSent,
    /// A peer's synchronization message was processed.
    SyncRecv,
    /// The end-point completed its cut (all syncs gathered): view
    /// delivery became enabled.
    CutAgreed,
    /// The GCS view was installed and delivered to the application: the
    /// span closes.
    ViewInstalled,
    /// The GCS asked the application to stop sending (`block`).
    BlockRequested,
    /// The application acknowledged the block request (`block_ok`).
    BlockOk,
    /// A forwarded copy of an application message was sent (§5.2.2).
    ForwardSent,
    /// An application message was multicast on the wire.
    MsgSent,
    /// An application message was delivered to the application.
    MsgDelivered,
    /// Crash recovery reset the end-point's volatile state (§8).
    RecoveryReset,
    /// A pending application-message batch was flushed to the wire (the
    /// flush cause and size are recorded as counters/histograms).
    BatchFlushed,
    /// A specification or proof invariant was observed violated.
    InvariantViolated,
    /// A state-corruption fault was injected into a live end-point (the
    /// self-stabilization chaos tier).
    CorruptionInjected,
    /// The tick-cadence `StateAudit` found the local state illegal.
    AuditFailed,
    /// The end-point reconciled: audit failure routed through the §8
    /// reset, volatile state wiped.
    AuditReconciled,
}

impl ObsEvent {
    /// Every event kind, in declaration order (for table exporters).
    pub const ALL: [ObsEvent; 16] = [
        ObsEvent::StartChangeRecv,
        ObsEvent::SyncSent,
        ObsEvent::SyncRecv,
        ObsEvent::CutAgreed,
        ObsEvent::ViewInstalled,
        ObsEvent::BlockRequested,
        ObsEvent::BlockOk,
        ObsEvent::ForwardSent,
        ObsEvent::MsgSent,
        ObsEvent::MsgDelivered,
        ObsEvent::RecoveryReset,
        ObsEvent::BatchFlushed,
        ObsEvent::InvariantViolated,
        ObsEvent::CorruptionInjected,
        ObsEvent::AuditFailed,
        ObsEvent::AuditReconciled,
    ];

    /// Stable snake_case name (used in JSON exports).
    pub const fn name(self) -> &'static str {
        match self {
            ObsEvent::StartChangeRecv => "start_change_recv",
            ObsEvent::SyncSent => "sync_sent",
            ObsEvent::SyncRecv => "sync_recv",
            ObsEvent::CutAgreed => "cut_agreed",
            ObsEvent::ViewInstalled => "view_installed",
            ObsEvent::BlockRequested => "block_requested",
            ObsEvent::BlockOk => "block_ok",
            ObsEvent::ForwardSent => "forward_sent",
            ObsEvent::MsgSent => "msg_sent",
            ObsEvent::MsgDelivered => "msg_delivered",
            ObsEvent::RecoveryReset => "recovery_reset",
            ObsEvent::BatchFlushed => "batch_flushed",
            ObsEvent::InvariantViolated => "invariant_violated",
            ObsEvent::CorruptionInjected => "corruption_injected",
            ObsEvent::AuditFailed => "audit_failed",
            ObsEvent::AuditReconciled => "audit_reconciled",
        }
    }

    /// Name of the registry counter bumped once per occurrence.
    pub const fn counter_name(self) -> &'static str {
        match self {
            ObsEvent::StartChangeRecv => "obs.start_change_recv",
            ObsEvent::SyncSent => "obs.sync_sent",
            ObsEvent::SyncRecv => "obs.sync_recv",
            ObsEvent::CutAgreed => "obs.cut_agreed",
            ObsEvent::ViewInstalled => "obs.view_installed",
            ObsEvent::BlockRequested => "obs.block_requested",
            ObsEvent::BlockOk => "obs.block_ok",
            ObsEvent::ForwardSent => "obs.forward_sent",
            ObsEvent::MsgSent => "obs.msg_sent",
            ObsEvent::MsgDelivered => "obs.msg_delivered",
            ObsEvent::RecoveryReset => "obs.recovery_reset",
            ObsEvent::BatchFlushed => "obs.batch_flushed",
            ObsEvent::InvariantViolated => "obs.invariant_violated",
            ObsEvent::CorruptionInjected => "obs.corruption_injected",
            ObsEvent::AuditFailed => "obs.audit_failed",
            ObsEvent::AuditReconciled => "obs.audit_reconciled",
        }
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry: an [`ObsEvent`] stamped with the process it occurred
/// at, a journal-local logical step, the simulated time, and — when the
/// event belongs to a view change — the *local* start-change id grouping
/// it into that span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsRecord {
    /// Process the event occurred at.
    pub pid: ProcessId,
    /// Monotone logical step assigned by the recorder.
    pub step: u64,
    /// Simulated time of the event.
    pub time: SimTime,
    /// Local start-change id (the span key), when the event belongs to a
    /// view-change span. `StartChangeId` is only locally unique (§3.1),
    /// so spans are keyed by `(pid, cid)`.
    pub cid: Option<StartChangeId>,
    /// The event kind.
    pub event: ObsEvent,
}

impl Serialize for ObsRecord {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("pid".to_string(), Value::U64(self.pid.raw())),
            ("step".to_string(), Value::U64(self.step)),
            ("time_us".to_string(), Value::U64(self.time.as_micros())),
            ("event".to_string(), Value::Str(self.event.name().to_string())),
        ];
        if let Some(cid) = self.cid {
            pairs.push(("cid".to_string(), Value::U64(cid.raw())));
        }
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = ObsEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ObsEvent::ALL.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn record_serializes_with_optional_cid() {
        let r = ObsRecord {
            pid: ProcessId::new(3),
            step: 7,
            time: SimTime::from_micros(42),
            cid: Some(StartChangeId::new(5)),
            event: ObsEvent::SyncSent,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"event\":\"sync_sent\""), "{json}");
        assert!(json.contains("\"cid\":5"), "{json}");
        let bare = ObsRecord { cid: None, ..r };
        assert!(!serde_json::to_string(&bare).unwrap().contains("cid"));
    }
}
