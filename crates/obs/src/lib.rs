//! **vsgm-obs** — unified protocol observability.
//!
//! A zero-external-dependency instrumentation layer for the whole stack:
//!
//! * [`ObsEvent`] / [`ObsRecord`] — a compact structured *event journal*
//!   of protocol-level actions (start_change receipt, sync send/receive,
//!   cut agreement, view installs, blocking handshake, forwarding,
//!   message send/delivery, crash recovery, invariant violations), each
//!   stamped with process id, logical step, simulated time, and — for
//!   view-change events — the *local start-change id* that groups events
//!   of one reconfiguration into a span.
//! * [`Journal`] / [`ViewChangeSpan`] — span extraction keyed by
//!   `(process, start-change id)`: `StartChangeId`s are only locally
//!   unique (§3.1 of the paper), which is exactly why they make perfect
//!   local span keys. Sync-round latency is the `start_change →
//!   view install` distance of a completed span.
//! * [`Registry`] — counters, gauges, and fixed-bucket `u64`
//!   [`Histogram`]s keyed by `&'static str` names, plus per-tag traffic
//!   totals mirroring the network layer.
//! * [`Recorder`] — the hook trait threaded through `vsgm-core`,
//!   `vsgm-membership`, `vsgm-net`, and `vsgm-harness`. Every method
//!   defaults to a no-op, so running with the [`NoopRecorder`] costs
//!   nothing beyond an inlinable virtual call; the [`ObsRecorder`]
//!   journals, counts, and derives span metrics.
//! * [`Snapshot`] — JSON (`serde_json`) and human-readable table
//!   exporters, including derived metrics: per-view-change sync-round
//!   latency, messages per view change by tag, and delivery latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod journal;
mod recorder;
mod registry;
mod snapshot;

pub use event::{ObsEvent, ObsRecord};
pub use journal::{Journal, ViewChangeSpan};
pub use recorder::{NoopRecorder, ObsRecorder, Recorder};
pub use registry::{names, Histogram, Registry, TagTraffic, HISTOGRAM_BUCKETS};
pub use snapshot::{HistSummary, Snapshot};
