//! Exporters: a JSON metrics snapshot and a human-readable table.

use crate::journal::ViewChangeSpan;
use crate::recorder::ObsRecorder;
use crate::registry::{names, Histogram};
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Five-number summary of a histogram, as exported.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Coarse median (power-of-two bucket bound).
    pub p50: u64,
    /// Coarse 99th percentile (power-of-two bucket bound).
    pub p99: u64,
}

impl HistSummary {
    fn from_histogram(h: &Histogram) -> Option<HistSummary> {
        Some(HistSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min()?,
            max: h.max()?,
            mean: h.mean()?,
            p50: h.quantile(0.5)?,
            p99: h.quantile(0.99)?,
        })
    }
}

impl Serialize for HistSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::U64(self.count)),
            ("sum".into(), Value::U64(self.sum)),
            ("min".into(), Value::U64(self.min)),
            ("max".into(), Value::U64(self.max)),
            ("mean".into(), Value::F64(self.mean)),
            ("p50".into(), Value::U64(self.p50)),
            ("p99".into(), Value::U64(self.p99)),
        ])
    }
}

/// A point-in-time export of everything an [`ObsRecorder`] holds:
/// counters, gauges, histogram summaries, per-tag traffic, and the
/// derived view-change span metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter rows `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauge rows `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histogram rows `(name, summary)`.
    pub histograms: Vec<(String, HistSummary)>,
    /// Traffic rows `(tag, count, bytes)`.
    pub traffic: Vec<(String, u64, u64)>,
    /// Every view-change span extracted from the journal.
    pub spans: Vec<ViewChangeSpan>,
    /// Spans that closed with a view install.
    pub view_changes_completed: u64,
    /// Mean point-to-point messages per completed view change, by tag
    /// (`None` when no view change completed).
    pub msgs_per_view_change: Vec<(String, f64)>,
    /// Total journal records exported.
    pub journal_len: u64,
}

impl Snapshot {
    /// Captures a snapshot of `rec`.
    pub fn capture(rec: &ObsRecorder) -> Snapshot {
        let reg = rec.registry();
        let spans = rec.journal().spans();
        let completed = spans.iter().filter(|s| s.complete()).count() as u64;
        let msgs_per_view_change = if completed == 0 {
            Vec::new()
        } else {
            reg.traffic_rows()
                .map(|(tag, t)| (tag.to_string(), t.count as f64 / completed as f64))
                .collect()
        };
        Snapshot {
            counters: reg.counter_rows().map(|(n, v)| (n.to_string(), v)).collect(),
            gauges: reg.gauge_rows().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: reg
                .histogram_rows()
                .filter_map(|(n, h)| HistSummary::from_histogram(h).map(|s| (n.to_string(), s)))
                .collect(),
            traffic: reg.traffic_rows().map(|(t, v)| (t.to_string(), v.count, v.bytes)).collect(),
            spans,
            view_changes_completed: completed,
            msgs_per_view_change,
            journal_len: rec.journal().len() as u64,
        }
    }

    /// The sync-round latency summary, if any view change completed.
    pub fn sync_round_latency(&self) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == names::SYNC_ROUND_LATENCY_US)
            .map(|(_, s)| s)
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot is serializable")
    }

    /// Renders a human-readable table report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== observability snapshot ==");
        let _ = writeln!(
            out,
            "journal: {} records, {} spans ({} completed view changes)",
            self.journal_len,
            self.spans.len(),
            self.view_changes_completed
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n-- counters --");
            for (n, v) in &self.counters {
                let _ = writeln!(out, "{n:<34} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n-- gauges --");
            for (n, v) in &self.gauges {
                let _ = writeln!(out, "{n:<34} {v:>12}");
            }
        }
        if !self.traffic.is_empty() {
            let _ = writeln!(out, "\n-- traffic --");
            let _ = writeln!(out, "{:<20} {:>10} {:>12}", "tag", "msgs", "bytes");
            for (t, c, b) in &self.traffic {
                let _ = writeln!(out, "{t:<20} {c:>10} {b:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\n-- histograms --");
            let _ = writeln!(
                out,
                "{:<30} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p99", "max"
            );
            for (n, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<30} {:>8} {:>10.1} {:>10} {:>10} {:>10}",
                    n, h.count, h.mean, h.p50, h.p99, h.max
                );
            }
        }
        if !self.msgs_per_view_change.is_empty() {
            let _ = writeln!(out, "\n-- messages per view change --");
            for (t, v) in &self.msgs_per_view_change {
                let _ = writeln!(out, "{t:<20} {v:>10.2}");
            }
        }
        out
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        let obj = |pairs: Vec<(String, Value)>| Value::Object(pairs);
        let counters =
            obj(self.counters.iter().map(|(n, v)| (n.clone(), Value::U64(*v))).collect());
        let gauges = obj(self.gauges.iter().map(|(n, v)| (n.clone(), Value::U64(*v))).collect());
        let histograms =
            obj(self.histograms.iter().map(|(n, h)| (n.clone(), h.to_value())).collect());
        let traffic = obj(self
            .traffic
            .iter()
            .map(|(t, c, b)| {
                (
                    t.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(*c)),
                        ("bytes".into(), Value::U64(*b)),
                    ]),
                )
            })
            .collect());
        let spans = Value::Array(
            self.spans
                .iter()
                .map(|s| {
                    let mut pairs = vec![
                        ("pid".into(), Value::U64(s.pid.raw())),
                        ("cid".into(), Value::U64(s.cid.raw())),
                        ("start_step".into(), Value::U64(s.start_step)),
                        ("start_time_us".into(), Value::U64(s.start_time.as_micros())),
                        ("syncs_sent".into(), Value::U64(s.syncs_sent)),
                        ("syncs_recv".into(), Value::U64(s.syncs_recv)),
                        ("cuts_agreed".into(), Value::U64(s.cuts_agreed)),
                        ("blocks".into(), Value::U64(s.blocks)),
                        ("complete".into(), Value::Bool(s.complete())),
                    ];
                    if let Some(lat) = s.latency() {
                        pairs.push(("latency_us".into(), Value::U64(lat.as_micros())));
                    }
                    Value::Object(pairs)
                })
                .collect(),
        );
        let mpvc = obj(self
            .msgs_per_view_change
            .iter()
            .map(|(t, v)| (t.clone(), Value::F64(*v)))
            .collect());
        Value::Object(vec![
            ("journal_len".into(), Value::U64(self.journal_len)),
            ("view_changes_completed".into(), Value::U64(self.view_changes_completed)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("traffic".into(), traffic),
            ("spans".into(), spans),
            ("msgs_per_view_change".into(), mpvc),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::recorder::Recorder;
    use vsgm_ioa::SimTime;
    use vsgm_types::{ProcessId, StartChangeId};

    fn sample_recorder() -> ObsRecorder {
        let mut r = ObsRecorder::new();
        let p1 = ProcessId::new(1);
        let cid = Some(StartChangeId::new(1));
        r.advance_time(SimTime::from_micros(10));
        r.event(p1, cid, ObsEvent::StartChangeRecv);
        r.event(p1, cid, ObsEvent::SyncSent);
        r.traffic("sync_msg", 64);
        r.traffic("sync_msg", 64);
        r.advance_time(SimTime::from_micros(90));
        r.event(p1, cid, ObsEvent::ViewInstalled);
        r.gauge("group.size", 3);
        r
    }

    #[test]
    fn snapshot_captures_all_sections() {
        let snap = Snapshot::capture(&sample_recorder());
        assert_eq!(snap.view_changes_completed, 1);
        assert_eq!(snap.journal_len, 3);
        assert_eq!(snap.gauges, vec![("group.size".to_string(), 3)]);
        assert_eq!(snap.traffic, vec![("sync_msg".to_string(), 2, 128)]);
        assert_eq!(snap.msgs_per_view_change, vec![("sync_msg".to_string(), 2.0)]);
        let lat = snap.sync_round_latency().unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 80);
    }

    #[test]
    fn json_export_parses_back() {
        let snap = Snapshot::capture(&sample_recorder());
        let json = snap.to_json_pretty();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("view_changes_completed"), Some(&Value::U64(1)));
        assert!(v.get("spans").and_then(Value::as_array).is_some_and(|s| s.len() == 1));
        let span = &v.get("spans").unwrap().as_array().unwrap()[0];
        assert_eq!(span.get("latency_us"), Some(&Value::U64(80)));
    }

    #[test]
    fn table_mentions_every_section() {
        let table = Snapshot::capture(&sample_recorder()).render_table();
        for needle in ["counters", "gauges", "traffic", "histograms", "messages per view change"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn empty_recorder_snapshots_cleanly() {
        let snap = Snapshot::capture(&ObsRecorder::new());
        assert_eq!(snap.view_changes_completed, 0);
        assert!(snap.msgs_per_view_change.is_empty());
        assert!(snap.sync_round_latency().is_none());
        assert!(!snap.to_json_pretty().is_empty());
        assert!(snap.render_table().contains("0 records"));
    }
}
