//! The structured event journal and view-change span extraction.

use crate::event::{ObsEvent, ObsRecord};
use serde::Serialize;
use std::collections::BTreeMap;
use vsgm_ioa::SimTime;
use vsgm_types::{ProcessId, StartChangeId};

/// One view-change span at one end-point: opened by the first event
/// carrying a local start-change id, closed by `ViewInstalled`.
///
/// `StartChangeId`s are only *locally* unique (§3.1), so the span key is
/// the pair `(pid, cid)`. Cascaded start_changes open one span per cid;
/// only the last one typically closes with an install — the earlier spans
/// stay incomplete, which is itself a useful observable (obsolete view
/// proposals the algorithm skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeSpan {
    /// End-point the span belongs to.
    pub pid: ProcessId,
    /// The local start-change id keying the span.
    pub cid: StartChangeId,
    /// Journal step of the opening event.
    pub start_step: u64,
    /// Simulated time of the opening event.
    pub start_time: SimTime,
    /// Journal step of the `ViewInstalled` close, if the span completed.
    pub installed_step: Option<u64>,
    /// Simulated time of the `ViewInstalled` close, if the span completed.
    pub installed_time: Option<SimTime>,
    /// Synchronization messages this end-point sent within the span.
    pub syncs_sent: u64,
    /// Peer synchronization messages processed within the span.
    pub syncs_recv: u64,
    /// Cut agreements reached within the span.
    pub cuts_agreed: u64,
    /// Block requests issued within the span.
    pub blocks: u64,
}

impl ViewChangeSpan {
    /// Whether the span closed with a view install.
    pub fn complete(&self) -> bool {
        self.installed_time.is_some()
    }

    /// The sync-round latency `start_change → view install` (`None` while
    /// the span is open).
    pub fn latency(&self) -> Option<SimTime> {
        self.installed_time.map(|t| t.saturating_sub(self.start_time))
    }
}

/// An append-only journal of [`ObsRecord`]s with span-level queries.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    records: Vec<ObsRecord>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends a record (recorders stamp steps monotonically).
    pub fn push(&mut self, record: ObsRecord) {
        self.records.push(record);
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[ObsRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total occurrences of `event`.
    pub fn count(&self, event: ObsEvent) -> u64 {
        self.records.iter().filter(|r| r.event == event).count() as u64
    }

    /// Occurrences of `event` at `pid`.
    pub fn count_at(&self, pid: ProcessId, event: ObsEvent) -> u64 {
        self.records.iter().filter(|r| r.pid == pid && r.event == event).count() as u64
    }

    /// Extracts every view-change span, in order of first appearance.
    ///
    /// Grouping rule: any record carrying `cid = Some(c)` belongs to the
    /// span `(pid, c)`; the first such record opens the span and
    /// `ViewInstalled` closes it. Events after the close (a re-used cid
    /// cannot occur — cids are locally monotone) are counted into the
    /// closed span, which keeps the extraction total.
    pub fn spans(&self) -> Vec<ViewChangeSpan> {
        let mut order: Vec<(ProcessId, StartChangeId)> = Vec::new();
        let mut map: BTreeMap<(ProcessId, StartChangeId), ViewChangeSpan> = BTreeMap::new();
        for r in &self.records {
            let Some(cid) = r.cid else { continue };
            let key = (r.pid, cid);
            let span = map.entry(key).or_insert_with(|| {
                order.push(key);
                ViewChangeSpan {
                    pid: r.pid,
                    cid,
                    start_step: r.step,
                    start_time: r.time,
                    installed_step: None,
                    installed_time: None,
                    syncs_sent: 0,
                    syncs_recv: 0,
                    cuts_agreed: 0,
                    blocks: 0,
                }
            });
            match r.event {
                ObsEvent::SyncSent => span.syncs_sent += 1,
                ObsEvent::SyncRecv => span.syncs_recv += 1,
                ObsEvent::CutAgreed => span.cuts_agreed += 1,
                ObsEvent::BlockRequested => span.blocks += 1,
                ObsEvent::ViewInstalled if span.installed_time.is_none() => {
                    span.installed_step = Some(r.step);
                    span.installed_time = Some(r.time);
                }
                _ => {}
            }
        }
        order.into_iter().map(|k| map.remove(&k).expect("keyed by order")).collect()
    }

    /// The span `(pid, cid)`, if any event referenced it.
    pub fn span(&self, pid: ProcessId, cid: StartChangeId) -> Option<ViewChangeSpan> {
        self.spans().into_iter().find(|s| s.pid == pid && s.cid == cid)
    }

    /// Latencies of every *completed* span, in µs, in span order.
    pub fn completed_span_latencies_us(&self) -> Vec<u64> {
        self.spans()
            .iter()
            .filter_map(|s| s.latency())
            .map(|t| t.as_micros())
            .collect()
    }

    /// Serializes the journal as JSON lines (one record per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(&r.to_value()).expect("records are serializable"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn rec(pid: u64, step: u64, us: u64, cid: Option<u64>, event: ObsEvent) -> ObsRecord {
        ObsRecord {
            pid: p(pid),
            step,
            time: SimTime::from_micros(us),
            cid: cid.map(StartChangeId::new),
            event,
        }
    }

    #[test]
    fn spans_open_close_and_count() {
        let mut j = Journal::new();
        j.push(rec(1, 0, 10, Some(1), ObsEvent::StartChangeRecv));
        j.push(rec(1, 1, 11, Some(1), ObsEvent::BlockRequested));
        j.push(rec(1, 2, 12, Some(1), ObsEvent::SyncSent));
        j.push(rec(1, 3, 20, Some(1), ObsEvent::SyncRecv));
        j.push(rec(1, 4, 21, Some(1), ObsEvent::CutAgreed));
        j.push(rec(1, 5, 21, Some(1), ObsEvent::ViewInstalled));
        j.push(rec(1, 6, 30, None, ObsEvent::MsgDelivered));
        let spans = j.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.complete());
        assert_eq!(s.latency(), Some(SimTime::from_micros(11)));
        assert_eq!(s.syncs_sent, 1);
        assert_eq!(s.syncs_recv, 1);
        assert_eq!(s.cuts_agreed, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(j.completed_span_latencies_us(), vec![11]);
    }

    #[test]
    fn cascaded_start_changes_leave_incomplete_spans() {
        let mut j = Journal::new();
        j.push(rec(1, 0, 0, Some(1), ObsEvent::StartChangeRecv));
        j.push(rec(1, 1, 5, Some(2), ObsEvent::StartChangeRecv));
        j.push(rec(1, 2, 9, Some(2), ObsEvent::ViewInstalled));
        let spans = j.spans();
        assert_eq!(spans.len(), 2);
        assert!(!spans[0].complete() && spans[0].latency().is_none());
        assert!(spans[1].complete());
        assert_eq!(j.completed_span_latencies_us(), vec![4]);
    }

    #[test]
    fn spans_are_keyed_per_process() {
        let mut j = Journal::new();
        j.push(rec(1, 0, 0, Some(1), ObsEvent::StartChangeRecv));
        j.push(rec(2, 1, 0, Some(1), ObsEvent::StartChangeRecv));
        j.push(rec(1, 2, 7, Some(1), ObsEvent::ViewInstalled));
        let spans = j.spans();
        assert_eq!(spans.len(), 2);
        assert!(j.span(p(1), StartChangeId::new(1)).unwrap().complete());
        assert!(!j.span(p(2), StartChangeId::new(1)).unwrap().complete());
        assert_eq!(j.count(ObsEvent::StartChangeRecv), 2);
        assert_eq!(j.count_at(p(1), ObsEvent::StartChangeRecv), 1);
    }

    #[test]
    fn json_lines_roundtrip_shape() {
        let mut j = Journal::new();
        j.push(rec(1, 0, 3, Some(4), ObsEvent::SyncSent));
        let lines = j.to_json_lines();
        assert_eq!(lines.lines().count(), 1);
        let v: serde::Value = serde_json::from_str(lines.trim()).unwrap();
        assert_eq!(v.get("event"), Some(&serde::Value::Str("sync_sent".into())));
    }
}
