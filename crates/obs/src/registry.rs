//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! per-tag traffic accounting, all keyed by `&'static str` names so the
//! hot path never allocates.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket `i < 32` holds values whose
/// power-of-two magnitude is `i` (i.e. `floor(log2(v)) == i - 1` with 0 in
/// bucket 0); the last bucket is the overflow.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-bucket `u64` histogram with power-of-two bucket bounds.
///
/// Values land in bucket `⌈log2(v+1)⌉` clamped to the overflow bucket, so
/// the upper bound of bucket `i` is `2^i − 1`. Alongside the buckets the
/// histogram tracks exact count / sum / min / max.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow).
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        // bucket_index is clamped to HISTOGRAM_BUCKETS - 1, so the slot
        // always exists; get_mut keeps the accessor visibly panic-free.
        if let Some(slot) = self.buckets.get_mut(Self::bucket_index(v)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bucket bound below which at least `q` (in `[0,1]`) of the
    /// observations fall (`None` when empty). A coarse quantile: exact to
    /// the power-of-two bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Some(Self::bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates the non-empty buckets as `(inclusive upper bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (Self::bucket_bound(i), *c))
    }
}

/// Per-tag traffic totals (mirrors the network layer's accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagTraffic {
    /// Point-to-point sends of messages with this tag.
    pub count: u64,
    /// Total wire bytes of messages with this tag.
    pub bytes: u64,
}

/// Central metrics store. All keys are `&'static str`, so recording is a
/// map lookup plus an integer update — no allocation, no formatting.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    traffic: BTreeMap<&'static str, TagTraffic>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name`.
    pub fn incr(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name` (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Accounts one point-to-point send of `bytes` wire bytes with `tag`.
    pub fn record_traffic(&mut self, tag: &'static str, bytes: u64) {
        let t = self.traffic.entry(tag).or_default();
        t.count += 1;
        t.bytes += bytes;
    }

    /// Traffic totals for `tag`.
    pub fn traffic(&self, tag: &str) -> TagTraffic {
        self.traffic.get(tag).copied().unwrap_or_default()
    }

    /// Iterates `(tag, totals)` traffic rows in tag order.
    pub fn traffic_rows(&self) -> impl Iterator<Item = (&'static str, TagTraffic)> + '_ {
        self.traffic.iter().map(|(t, v)| (*t, *v))
    }

    /// Iterates `(name, value)` counter rows in name order.
    pub fn counter_rows(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (*n, *v))
    }

    /// Iterates `(name, value)` gauge rows in name order.
    pub fn gauge_rows(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(n, v)| (*n, *v))
    }

    /// Iterates `(name, histogram)` rows in name order.
    pub fn histogram_rows(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (*n, h))
    }
}

/// Well-known metric names shared by the instrumented layers, so views
/// over the registry (e.g. `EndpointStats`, `NetStats`) and exporters
/// agree on keys.
pub mod names {
    /// GCS views installed (end-point layer).
    pub const EP_VIEWS_INSTALLED: &str = "endpoint.views_installed";
    /// Application messages multicast (end-point layer).
    pub const EP_MSGS_SENT: &str = "endpoint.msgs_sent";
    /// Application messages delivered (end-point layer).
    pub const EP_MSGS_DELIVERED: &str = "endpoint.msgs_delivered";
    /// Synchronization messages sent (end-point layer).
    pub const EP_SYNCS_SENT: &str = "endpoint.syncs_sent";
    /// Forwarded copies sent (end-point layer, §5.2.2).
    pub const EP_FORWARDS_SENT: &str = "endpoint.forwards_sent";
    /// Block requests issued (end-point layer).
    pub const EP_BLOCKS: &str = "endpoint.blocks";
    /// Application-message batch flushes (one per wire frame carrying
    /// original `app_msg` traffic, batched or not).
    pub const EP_BATCH_FLUSHES: &str = "endpoint.batch_flushes";
    /// Batch flushes triggered by the message-count limit.
    pub const EP_BATCH_FLUSH_COUNT: &str = "endpoint.batch_flush_count";
    /// Batch flushes triggered by the byte budget.
    pub const EP_BATCH_FLUSH_BYTES: &str = "endpoint.batch_flush_bytes";
    /// Batch flushes triggered by linger-deadline expiry.
    pub const EP_BATCH_FLUSH_LINGER: &str = "endpoint.batch_flush_linger";
    /// Batch flushes forced by an in-progress view change (the pre-cut
    /// flush that keeps Fig. 10 cut computation exact).
    pub const EP_BATCH_FLUSH_VIEW_CHANGE: &str = "endpoint.batch_flush_view_change";
    /// Histogram of messages per flushed batch.
    pub const EP_BATCH_SIZE: &str = "endpoint.batch_size";
    /// Messages dropped by the network (loss outside reliable sets).
    pub const NET_DROPPED: &str = "net.dropped";
    /// Messages delivered by the network.
    pub const NET_DELIVERED: &str = "net.delivered";
    /// Histogram of per-message network transit time, in microseconds.
    pub const NET_DELIVERY_LATENCY_US: &str = "net.delivery_latency_us";
    /// Buffered socket flushes issued by per-connection writer threads.
    pub const NET_FLUSHES: &str = "net.flushes";
    /// Frames carried by those flushes (coalescing numerator).
    pub const NET_FRAMES_FLUSHED: &str = "net.frames_flushed";
    /// Largest number of frames coalesced into a single flush (gauge).
    pub const NET_COALESCE_MAX: &str = "net.coalesce_max";
    /// High-water mark of per-connection write-queue depth (gauge).
    pub const NET_QUEUE_DEPTH_MAX: &str = "net.queue_depth_max";
    /// Enqueues that found the per-connection write queue at or above its
    /// backpressure watermark (senders are throttling).
    pub const NET_BACKPRESSURE: &str = "net.backpressure_hits";
    /// Frames accepted into per-connection write queues (data +
    /// heartbeats); with `NET_FRAMES_FLUSHED` and `NET_FRAMES_DROPPED`
    /// this obeys `enqueued == flushed + dropped` at quiescence.
    pub const NET_FRAMES_ENQUEUED: &str = "net.frames_enqueued";
    /// Frames discarded without reaching the wire (torn-down
    /// connections' queue remnants and in-flight coalesce buffers).
    pub const NET_FRAMES_DROPPED: &str = "net.frames_dropped";
    /// Inbound frames rejected for a length prefix over `max_frame_len`.
    pub const NET_OVERSIZE_REJECTED: &str = "net.oversize_rejected";
    /// Connections evicted for stalling mid-handshake or mid-frame past
    /// the read idle timeout.
    pub const NET_IDLE_EVICTIONS: &str = "net.idle_evictions";
    /// Connections currently owned by the event-loop threads (gauge).
    pub const NET_CONNS_OPEN: &str = "net.conns_open";
    /// Event-loop threads serving all of the transport's sockets (gauge).
    pub const NET_LOOP_THREADS: &str = "net.loop_threads";
    /// Histogram of start_change → view-install span latency, µs.
    pub const SYNC_ROUND_LATENCY_US: &str = "span.sync_round_latency_us";
    /// Membership rounds entered by servers.
    pub const MBRSHP_ROUNDS: &str = "mbrshp.rounds_entered";
    /// Peer proposals processed by membership servers.
    pub const MBRSHP_PROPOSALS: &str = "mbrshp.proposals_recv";
    /// Views formed (per client notification) by membership servers.
    pub const MBRSHP_VIEWS_FORMED: &str = "mbrshp.views_formed";
    /// `start_change` notifications issued by membership servers.
    pub const MBRSHP_START_CHANGES: &str = "mbrshp.start_changes_sent";
    /// Tick-cadence `StateAudit` failures detected (self-stabilization
    /// tier).
    pub const EP_AUDIT_FAILURES: &str = "endpoint.audit_failures";
    /// §8 self-resets taken after an audit failure.
    pub const EP_AUDIT_RECONCILES: &str = "endpoint.audit_reconciliations";
    /// State-corruption faults injected by the chaos harness.
    pub const CHAOS_CORRUPTIONS: &str = "chaos.corruption_injected";
    /// Group instances currently hosted by a multi-group server (gauge).
    pub const SERVER_GROUPS_HOSTED: &str = "server.groups_hosted";
    /// Shard workers the server routes groups across (gauge).
    pub const SERVER_SHARDS: &str = "server.shards";
    /// Enveloped frames routed to a hosted group instance.
    pub const SERVER_FRAMES_ROUTED: &str = "server.frames_routed";
    /// Frames dropped because their group id resolved to no instance.
    pub const SERVER_FRAMES_UNROUTABLE: &str = "server.frames_unroutable";
    /// Directory create requests that created a fresh group.
    pub const SERVER_DIR_CREATES: &str = "server.directory_creates";
    /// Directory create/join requests resolved onto an existing group
    /// (including losers of a concurrent create race).
    pub const SERVER_DIR_JOINS: &str = "server.directory_joins";
    /// Directory lookups answered (hit or miss).
    pub const SERVER_DIR_LOOKUPS: &str = "server.directory_lookups";
    /// Directory leave requests processed.
    pub const SERVER_DIR_LEAVES: &str = "server.directory_leaves";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.incr("a", 2);
        r.incr("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.set_gauge("g", 7);
        r.set_gauge("g", 9);
        assert_eq!(r.gauge("g"), Some(9));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10.
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (3, 2));
        assert_eq!(buckets[3], (1023, 1));
        assert_eq!(buckets[4], (u64::MAX, 1));
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((32..=127).contains(&q50), "{q50}");
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn traffic_rows_accumulate() {
        let mut r = Registry::new();
        r.record_traffic("sync_msg", 100);
        r.record_traffic("sync_msg", 50);
        r.record_traffic("app_msg", 8);
        assert_eq!(r.traffic("sync_msg"), TagTraffic { count: 2, bytes: 150 });
        let rows: Vec<_> = r.traffic_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "app_msg");
    }
}
