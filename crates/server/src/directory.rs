//! The group directory: name → [`GroupId`] resolution with atomic
//! create-or-join, plus the tiny text protocol clients speak to it over
//! frames enveloped to [`GroupId::DIRECTORY`].
//!
//! # The create race
//!
//! Two clients concurrently `create foo` must converge on **one**
//! instance: the winner creates it, the loser's create resolves to a
//! join of the winner's group — never a duplicate shard entry. The
//! whole decision is one critical section over the directory lock
//! ([`Directory::create_or_join`]): a lookup-then-insert across two
//! lock acquisitions would reintroduce the TOCTOU window where both
//! callers miss and both insert. The regression is pinned in this
//! module's tests and exercised over real concurrent threads in
//! `tests/multigroup_chaos.rs`.
//!
//! # Wire protocol (control plane)
//!
//! Requests are UTF-8 [`vsgm_types::AppMsg`] payloads:
//! `create <name>` | `join <name>` | `lookup <name>` | `leave <name>`.
//! Responses: `ok <verb> <name> <gid>` or `err <reason> <name>`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vsgm_types::GroupId;

/// Outcome of [`Directory::create_or_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirOutcome {
    /// The name was fresh; the caller owns creating the instance.
    Created(GroupId),
    /// The name existed (or a racing creator won); join this group.
    Joined(GroupId),
}

impl DirOutcome {
    /// The group id either way.
    pub fn gid(self) -> GroupId {
        match self {
            DirOutcome::Created(g) | DirOutcome::Joined(g) => g,
        }
    }
}

/// A parsed directory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirRequest {
    /// `create <name>` — create-or-join by name.
    Create(String),
    /// `join <name>` — join an existing group.
    Join(String),
    /// `lookup <name>` — resolve a name without joining.
    Lookup(String),
    /// `leave <name>` — leave a group.
    Leave(String),
}

impl DirRequest {
    /// Parses a request line. Names are single whitespace-free tokens.
    pub fn parse(line: &str) -> Option<DirRequest> {
        let mut words = line.split_ascii_whitespace();
        let verb = words.next()?;
        let name = words.next()?;
        if words.next().is_some() || name.is_empty() {
            return None;
        }
        let name = name.to_string();
        match verb {
            "create" => Some(DirRequest::Create(name)),
            "join" => Some(DirRequest::Join(name)),
            "lookup" => Some(DirRequest::Lookup(name)),
            "leave" => Some(DirRequest::Leave(name)),
            _ => None,
        }
    }
}

struct DirInner {
    by_name: BTreeMap<String, GroupId>,
    /// Next fresh group id; starts at 1 (0 is [`GroupId::DIRECTORY`]).
    next_gid: u64,
}

/// The name service. All state lives behind one lock; see the module
/// docs for why create-or-join must be a single critical section.
pub struct Directory {
    // vsgm-lock-tier(6): leaf — held only for map reads/inserts inside
    // this module, never across a channel send, I/O, or another lock.
    inner: parking_lot::Mutex<DirInner>,
    creates: AtomicU64,
    joins: AtomicU64,
    lookups: AtomicU64,
    leaves: AtomicU64,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

impl Directory {
    /// An empty directory; group ids are handed out from 1.
    pub fn new() -> Directory {
        Directory {
            inner: parking_lot::Mutex::new(DirInner { by_name: BTreeMap::new(), next_gid: 1 }),
            creates: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
        }
    }

    /// Atomically resolves `name` to a group, creating it if absent.
    /// Exactly one of any set of concurrent callers for the same fresh
    /// name observes [`DirOutcome::Created`]; every other caller
    /// observes [`DirOutcome::Joined`] with the same id. The check and
    /// the insert share one lock acquisition — the TOCTOU race fix this
    /// PR pins.
    pub fn create_or_join(&self, name: &str) -> DirOutcome {
        let mut inner = self.inner.lock();
        if let Some(gid) = inner.by_name.get(name) {
            self.joins.fetch_add(1, Ordering::Relaxed);
            return DirOutcome::Joined(*gid);
        }
        let gid = GroupId::new(inner.next_gid);
        inner.next_gid += 1;
        inner.by_name.insert(name.to_string(), gid);
        self.creates.fetch_add(1, Ordering::Relaxed);
        DirOutcome::Created(gid)
    }

    /// Resolves `name` without creating or joining.
    pub fn lookup(&self, name: &str) -> Option<GroupId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().by_name.get(name).copied()
    }

    /// Records a leave and resolves the name (membership itself is the
    /// group instance's concern; names stay resolvable so late frames
    /// still route).
    pub fn leave(&self, name: &str) -> Option<GroupId> {
        self.leaves.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().by_name.get(name).copied()
    }

    /// Number of registered groups.
    pub fn len(&self) -> usize {
        self.inner.lock().by_name.len()
    }

    /// Whether no groups are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot: `(creates, joins, lookups, leaves)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.creates.load(Ordering::Relaxed),
            self.joins.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
            self.leaves.load(Ordering::Relaxed),
        )
    }

    /// Mirrors directory counters into an observability recorder.
    pub fn export_obs(&self, rec: &mut dyn vsgm_obs::Recorder) {
        use vsgm_obs::names;
        let (creates, joins, lookups, leaves) = self.counters();
        rec.counter(names::SERVER_DIR_CREATES, creates);
        rec.counter(names::SERVER_DIR_JOINS, joins);
        rec.counter(names::SERVER_DIR_LOOKUPS, lookups);
        rec.counter(names::SERVER_DIR_LEAVES, leaves);
    }
}

/// Formats a success response: `ok <verb> <name> <gid>`.
pub fn ok_response(verb: &str, name: &str, gid: GroupId) -> String {
    format!("ok {verb} {name} {}", gid.raw())
}

/// Formats an error response: `err <reason> <name>`.
pub fn err_response(reason: &str, name: &str) -> String {
    format!("err {reason} {name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn create_then_join_then_lookup() {
        let d = Directory::new();
        let DirOutcome::Created(g1) = d.create_or_join("alpha") else {
            panic!("first create must create")
        };
        assert_eq!(g1, GroupId::new(1));
        assert_eq!(d.create_or_join("alpha"), DirOutcome::Joined(g1));
        assert_eq!(d.lookup("alpha"), Some(g1));
        assert_eq!(d.lookup("beta"), None);
        let DirOutcome::Created(g2) = d.create_or_join("beta") else {
            panic!("fresh name must create")
        };
        assert!(g2 > g1, "ids are fresh and increasing");
        assert_eq!(d.len(), 2);
        let (creates, joins, lookups, _) = d.counters();
        assert_eq!((creates, joins), (2, 1));
        assert_eq!(lookups, 2);
    }

    /// Pinned regression for the concurrent-create race: many threads
    /// race `create` on the same name; exactly one must observe
    /// `Created` and every loser must join the winner's id. With the
    /// old lookup-then-insert across two lock acquisitions, several
    /// threads could miss the lookup and each insert a fresh id —
    /// duplicate shard entries for one name.
    #[test]
    fn concurrent_create_converges_on_one_instance() {
        for round in 0..50 {
            let d = Arc::new(Directory::new());
            let threads = 8;
            let barrier = Arc::new(std::sync::Barrier::new(threads));
            let outcomes: Vec<DirOutcome> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let d = Arc::clone(&d);
                        let barrier = Arc::clone(&barrier);
                        s.spawn(move || {
                            barrier.wait();
                            d.create_or_join("contested")
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panic")).collect()
            });
            let created: Vec<GroupId> = outcomes
                .iter()
                .filter_map(|o| match o {
                    DirOutcome::Created(g) => Some(*g),
                    DirOutcome::Joined(_) => None,
                })
                .collect();
            assert_eq!(created.len(), 1, "round {round}: exactly one winner, got {outcomes:?}");
            let winner = created.first().copied().expect("one winner");
            for o in &outcomes {
                assert_eq!(o.gid(), winner, "round {round}: loser joined a different instance");
            }
            assert_eq!(d.len(), 1, "round {round}: duplicate directory entries");
            let (creates, joins, _, _) = d.counters();
            assert_eq!((creates, joins), (1, threads as u64 - 1));
        }
    }

    #[test]
    fn request_parsing_is_strict() {
        assert_eq!(DirRequest::parse("create foo"), Some(DirRequest::Create("foo".into())));
        assert_eq!(DirRequest::parse("join a-b"), Some(DirRequest::Join("a-b".into())));
        assert_eq!(DirRequest::parse("lookup x"), Some(DirRequest::Lookup("x".into())));
        assert_eq!(DirRequest::parse("leave x"), Some(DirRequest::Leave("x".into())));
        assert_eq!(DirRequest::parse("  join \t spaced  "), Some(DirRequest::Join("spaced".into())));
        assert_eq!(DirRequest::parse("create"), None, "missing name");
        assert_eq!(DirRequest::parse("create a b"), None, "trailing token");
        assert_eq!(DirRequest::parse("destroy x"), None, "unknown verb");
        assert_eq!(DirRequest::parse(""), None);
    }

    #[test]
    fn response_forms() {
        assert_eq!(ok_response("create", "foo", GroupId::new(3)), "ok create foo 3");
        assert_eq!(err_response("unknown-group", "bar"), "err unknown-group bar");
    }
}
