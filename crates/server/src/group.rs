//! One hosted group instance: the paper's full single-group protocol
//! stack (views, cuts, FIFO buffers, batch stage, audit cadence) owned
//! by exactly one shard worker.
//!
//! A `GroupInstance` wraps a deterministic [`Sim`] over `capacity`
//! pre-provisioned end-points. Clients join and leave a *subset* of
//! those end-points; each membership change is one paper reconfiguration
//! (`start_change` + view formation). Commands arrive as [`GroupCmd`]
//! values through the owning shard's channel, so per-group execution is
//! totally ordered and byte-for-byte reproducible: a group driven
//! through a shared server produces the identical trace to the same
//! command sequence applied to an isolated instance — the property the
//! multi-group differential suite pins.
//!
//! Determinism discipline (analyzer rule D1 pins this file): only
//! ordered containers, no ambient clocks, no ambient randomness — every
//! random draw comes from the seeded `Sim` itself.

use std::collections::BTreeMap;
use vsgm_core::{Config, CorruptionKind};
use vsgm_harness::{Sim, SimOptions};
use vsgm_ioa::{SimTime, Violation};
use vsgm_net::{FaultPlan, FaultStats};
use vsgm_types::{AppMsg, Event, GroupId, NetMsg, ProcSet, ProcessId, View};

/// Derives the per-group simulation seed from a server-wide base seed.
/// Isolated reference runs must use the same derivation to reproduce a
/// hosted group's trace exactly.
pub fn group_seed(base: u64, gid: GroupId) -> u64 {
    base ^ gid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A command applied to one group instance. Every mutation of group
/// state flows through this enum — through one shard channel — so each
/// group observes a total command order.
#[derive(Debug, Clone)]
pub enum GroupCmd {
    /// A client joins as member `p` (must be within the instance's
    /// capacity); triggers one reconfiguration if newly joined.
    Join(ProcessId),
    /// Member `p` leaves; triggers one reconfiguration while members
    /// remain (an empty group goes dormant instead).
    Leave(ProcessId),
    /// Member `from` multicasts `msg` within the group.
    Send {
        /// The multicasting member.
        from: ProcessId,
        /// The payload.
        msg: AppMsg,
    },
    /// Advances the group's simulated clock by `ms` milliseconds.
    RunForMs(u64),
    /// Runs the group to quiescence.
    Run,
    /// Crashes member `p` (§8 fault).
    Crash(ProcessId),
    /// Recovers member `p` (§8 recovery).
    Recover(ProcessId),
    /// Partitions the group's network into the given components.
    Partition(Vec<Vec<ProcessId>>),
    /// Heals all partitions.
    Heal,
    /// Injects a state corruption at member `p` (self-stabilization
    /// tier).
    Corrupt {
        /// The corrupted member.
        p: ProcessId,
        /// The corruption class.
        kind: CorruptionKind,
    },
    /// Installs a message-fault plan on the group's network.
    Faults(FaultPlan),
}

/// A snapshot of one group's externally observable health, cheap enough
/// to gather across thousands of groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReport {
    /// The group's identity.
    pub gid: GroupId,
    /// Currently joined members.
    pub members: ProcSet,
    /// Trace length so far (events recorded).
    pub trace_len: usize,
    /// Application messages delivered so far.
    pub delivered: u64,
    /// Views installed so far (GCS `view` events).
    pub views_installed: u64,
    /// Message faults injected into this group's network.
    pub fault_injections: u64,
    /// State corruptions injected into this group.
    pub corruptions: u64,
}

/// An output frame a hosted group owes one of its clients: a delivery
/// or an installed view, addressed to member `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupOutput {
    /// The member (== client process) the frame is for.
    pub to: ProcessId,
    /// The frame: `Fwd` for deliveries, `ViewMsg` for installed views.
    pub msg: NetMsg,
}

/// One group's full protocol instance. See the module docs.
pub struct GroupInstance {
    gid: GroupId,
    sim: Sim,
    capacity: u64,
    members: ProcSet,
    corruptions: u64,
    /// Trace index up to which outputs were already drained.
    out_cursor: usize,
    /// Per-member latest installed view observed while draining (stamps
    /// outgoing `Fwd` frames).
    last_view: BTreeMap<ProcessId, View>,
    /// Per-(receiver, origin) running delivery index for `Fwd` frames.
    fwd_index: BTreeMap<(ProcessId, ProcessId), u64>,
}

impl GroupInstance {
    /// Creates a dormant instance with `capacity` pre-provisioned
    /// end-points and no members. `seed` should come from
    /// [`group_seed`] so isolated reruns can reproduce it.
    pub fn new(gid: GroupId, capacity: u64, seed: u64) -> GroupInstance {
        let opts = SimOptions { seed, ..SimOptions::default() };
        let sim = Sim::new_paper(capacity.max(1) as usize, Config::default(), opts);
        GroupInstance {
            gid,
            sim,
            capacity: capacity.max(1),
            members: ProcSet::new(),
            corruptions: 0,
            out_cursor: 0,
            last_view: BTreeMap::new(),
            fwd_index: BTreeMap::new(),
        }
    }

    /// The group's identity.
    pub fn gid(&self) -> GroupId {
        self.gid
    }

    /// Currently joined members.
    pub fn members(&self) -> &ProcSet {
        &self.members
    }

    /// Whether `p` names one of the pre-provisioned end-points.
    pub fn in_capacity(&self, p: ProcessId) -> bool {
        (1..=self.capacity).contains(&p.raw())
    }

    /// Applies one command. Commands referencing processes outside the
    /// instance's capacity (or non-members, where membership is
    /// required) are ignored rather than corrupting group state.
    pub fn apply(&mut self, cmd: GroupCmd) {
        match cmd {
            GroupCmd::Join(p) => {
                if self.in_capacity(p) && self.members.insert(p) {
                    let members = self.members.clone();
                    self.sim.reconfigure(&members);
                }
            }
            GroupCmd::Leave(p) => {
                if self.members.remove(&p) && !self.members.is_empty() {
                    let members = self.members.clone();
                    self.sim.reconfigure(&members);
                }
            }
            GroupCmd::Send { from, msg } => {
                if self.members.contains(&from) {
                    self.sim.send(from, msg);
                }
            }
            GroupCmd::RunForMs(ms) => self.sim.run_for(SimTime::from_millis(ms)),
            GroupCmd::Run => self.sim.run_to_quiescence(),
            GroupCmd::Crash(p) => {
                if self.in_capacity(p) {
                    self.sim.crash(p);
                }
            }
            GroupCmd::Recover(p) => {
                if self.in_capacity(p) {
                    self.sim.recover(p);
                }
            }
            GroupCmd::Partition(components) => self.sim.partition(&components),
            GroupCmd::Heal => self.sim.heal(),
            GroupCmd::Corrupt { p, kind } => {
                if self.in_capacity(p) {
                    self.corruptions += 1;
                    self.sim.corrupt(p, kind);
                }
            }
            GroupCmd::Faults(plan) => self.sim.set_fault_plan(plan),
        }
    }

    /// Runs the instance to quiescence (daemon mode runs this after
    /// every command so outputs are promptly drainable).
    pub fn run_to_quiescence(&mut self) {
        self.sim.run_to_quiescence();
    }

    /// Drains application-facing events recorded since the previous
    /// drain into wire frames owed to clients: `Deliver` becomes a
    /// [`NetMsg::Fwd`] (origin, receiver's latest installed view,
    /// running per-channel index), `GcsView` becomes a
    /// [`NetMsg::ViewMsg`].
    pub fn drain_outputs(&mut self) -> Vec<GroupOutput> {
        let entries = self.sim.trace().entries();
        let mut out = Vec::new();
        for entry in entries.iter().skip(self.out_cursor) {
            match &entry.event {
                Event::GcsView { p, view, .. } => {
                    self.last_view.insert(*p, view.clone());
                    out.push(GroupOutput { to: *p, msg: NetMsg::ViewMsg(view.clone()) });
                }
                Event::Deliver { p, q, msg } => {
                    let view = self
                        .last_view
                        .get(p)
                        .cloned()
                        .unwrap_or_else(|| View::initial(*p));
                    let index = self.fwd_index.entry((*p, *q)).or_insert(0);
                    *index += 1;
                    out.push(GroupOutput {
                        to: *p,
                        msg: NetMsg::Fwd(vsgm_types::FwdPayload {
                            origin: *q,
                            view,
                            index: *index,
                            msg: msg.clone(),
                        }),
                    });
                }
                _ => {}
            }
        }
        self.out_cursor = entries.len();
        out
    }

    /// The group's full trace as JSON lines (the differential suite's
    /// byte-comparison surface).
    pub fn trace_json(&self) -> String {
        self.sim.trace().to_json_lines()
    }

    /// Cheap health snapshot.
    pub fn report(&self) -> GroupReport {
        let counts = self.sim.trace().kind_counts();
        GroupReport {
            gid: self.gid,
            members: self.members.clone(),
            trace_len: self.sim.trace().len(),
            delivered: counts.get("deliver").copied().unwrap_or(0) as u64,
            views_installed: counts.get("view").copied().unwrap_or(0) as u64,
            fault_injections: self.fault_stats().injected_drops
                + self.fault_stats().injected_dups,
            corruptions: self.corruptions,
        }
    }

    /// Message-fault accounting for this group's private network.
    pub fn fault_stats(&self) -> FaultStats {
        self.sim.fault_stats()
    }

    /// Finalizes the spec checkers and returns every violation. The
    /// instance remains usable (checkers keep running online).
    pub fn finish(&mut self) -> Vec<Violation> {
        self.sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn joined(g: &mut GroupInstance, ids: &[u64]) {
        for i in ids {
            g.apply(GroupCmd::Join(p(*i)));
        }
    }

    #[test]
    fn join_send_deliver_roundtrip() {
        let mut g = GroupInstance::new(GroupId::new(1), 3, 7);
        joined(&mut g, &[1, 2, 3]);
        g.apply(GroupCmd::Send { from: p(1), msg: AppMsg::from("hello") });
        g.apply(GroupCmd::Run);
        let r = g.report();
        assert_eq!(r.members, [p(1), p(2), p(3)].into_iter().collect::<ProcSet>());
        // p2 and p3 each deliver the message (self-delivery is not part
        // of the paper's deliver action).
        assert!(r.delivered >= 2, "{r:?}");
        assert!(r.views_installed >= 3, "{r:?}");
        assert!(g.finish().is_empty(), "spec checkers clean");
    }

    #[test]
    fn same_seed_same_commands_same_trace() {
        let run = || {
            let mut g = GroupInstance::new(GroupId::new(4), 3, group_seed(99, GroupId::new(4)));
            joined(&mut g, &[1, 2, 3]);
            g.apply(GroupCmd::Send { from: p(2), msg: AppMsg::from("m1") });
            g.apply(GroupCmd::RunForMs(5));
            g.apply(GroupCmd::Leave(p(3)));
            g.apply(GroupCmd::Send { from: p(1), msg: AppMsg::from("m2") });
            g.apply(GroupCmd::Run);
            g.trace_json()
        };
        assert_eq!(run(), run(), "byte-identical reruns");
    }

    #[test]
    fn out_of_capacity_and_non_member_commands_are_ignored() {
        let mut g = GroupInstance::new(GroupId::new(2), 2, 3);
        joined(&mut g, &[1, 2]);
        let before = g.trace_json();
        g.apply(GroupCmd::Join(p(9))); // beyond capacity
        g.apply(GroupCmd::Send { from: p(9), msg: AppMsg::from("x") });
        g.apply(GroupCmd::Send { from: p(2), msg: AppMsg::from("") }); // member: fine
        g.apply(GroupCmd::Crash(p(40)));
        assert!(g.members().len() == 2);
        // Only the legal member send changed the trace.
        assert!(g.trace_json().len() >= before.len());
    }

    #[test]
    fn drain_outputs_translates_deliveries_and_views() {
        let mut g = GroupInstance::new(GroupId::new(3), 2, 11);
        joined(&mut g, &[1, 2]);
        g.apply(GroupCmd::Send { from: p(1), msg: AppMsg::from("payload") });
        g.apply(GroupCmd::Run);
        let out = g.drain_outputs();
        assert!(
            out.iter().any(|o| matches!(&o.msg, NetMsg::ViewMsg(v) if v.contains(p(1)))),
            "view frames drained: {out:?}"
        );
        let fwd: Vec<_> = out
            .iter()
            .filter_map(|o| match &o.msg {
                NetMsg::Fwd(f) if o.to == p(2) => Some(f),
                _ => None,
            })
            .collect();
        assert!(
            fwd.iter().any(|f| f.origin == p(1) && f.msg == AppMsg::from("payload")),
            "delivery drained as Fwd: {out:?}"
        );
        // A second drain with no new events is empty.
        assert!(g.drain_outputs().is_empty());
    }

    #[test]
    fn empty_group_goes_dormant_not_panicking() {
        let mut g = GroupInstance::new(GroupId::new(5), 2, 1);
        joined(&mut g, &[1, 2]);
        g.apply(GroupCmd::Leave(p(1)));
        g.apply(GroupCmd::Leave(p(2)));
        g.apply(GroupCmd::Send { from: p(1), msg: AppMsg::from("ghost") });
        g.apply(GroupCmd::Run);
        assert!(g.members().is_empty());
        assert!(g.finish().is_empty());
    }
}
