//! The shard pool: group-id → worker routing with no cross-shard locks
//! on the hot path.
//!
//! Each shard is one worker thread owning a `BTreeMap<GroupId,
//! GroupInstance>` it alone touches — group state needs no lock at all,
//! because ownership is partitioned, not shared. Routing is pure
//! arithmetic (`gid.raw() % shards`), so dispatching a command takes
//! only the lock-free channel send to the owning shard; groups on
//! different shards never contend, and groups on the same shard
//! serialize through their channel in arrival order (the total per-group
//! command order the differential suite relies on).
//!
//! Determinism discipline (analyzer rule D1 pins this file): ordered
//! containers only, no ambient clocks or randomness. Wall-clock pacing
//! and sockets live in `server.rs`; per-group virtual time lives inside
//! each instance's simulation.

use crate::group::{GroupCmd, GroupInstance, GroupOutput, GroupReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vsgm_ioa::Violation;
use vsgm_types::{GroupId, NetMsg, ProcessId};

/// A command routed to the shard owning one group.
enum ShardCmd {
    /// Instantiate a group (idempotent: re-creating an existing gid is
    /// ignored — the directory already guarantees one winner).
    Create {
        gid: GroupId,
        capacity: u64,
        seed: u64,
    },
    /// Apply a [`GroupCmd`] to a hosted group.
    Apply { gid: GroupId, cmd: GroupCmd },
    /// Snapshot one group's report.
    Report { gid: GroupId, reply: Sender<Option<GroupReport>> },
    /// Snapshot every group this shard hosts.
    ReportAll { reply: Sender<Vec<GroupReport>> },
    /// Finalize one group's checkers and return its violations.
    Finish { gid: GroupId, reply: Sender<Option<Vec<Violation>>> },
    /// One group's trace as JSON lines.
    TraceJson { gid: GroupId, reply: Sender<Option<String>> },
    /// Drain and exit.
    Shutdown,
}

/// Counters shared by all shard workers; mirrored into `server.*`
/// metrics by the daemon.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Commands routed to a hosted group.
    pub frames_routed: AtomicU64,
    /// Commands whose gid resolved to no hosted group.
    pub frames_unroutable: AtomicU64,
    /// Group instances currently hosted across all shards.
    pub groups_hosted: AtomicU64,
}

/// The fixed pool of shard workers. See the module docs.
pub struct ShardPool {
    senders: Vec<Sender<ShardCmd>>,
    // vsgm-lock-tier(6): leaf — taken only by shutdown/Drop to drain the
    // join handles; never held while sending on a shard channel.
    handles: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
    counters: Arc<ShardCounters>,
}

/// How eagerly workers advance hosted groups.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads; also the shard count for `gid % shards` routing.
    pub shards: usize,
    /// Daemon mode: after every applied command, run the group to
    /// quiescence and forward drained outputs to `outputs`. Schedule-
    /// driven harnesses (the differential suite) turn this off and
    /// advance groups with explicit [`GroupCmd::Run`] commands instead.
    pub auto_run: bool,
    /// Where drained `(gid, member, frame)` outputs go in daemon mode.
    pub outputs: Option<Sender<(GroupId, ProcessId, NetMsg)>>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 4, auto_run: false, outputs: None }
    }
}

impl ShardPool {
    /// Spawns the worker threads.
    pub fn spawn(cfg: ShardConfig) -> ShardPool {
        let shards = cfg.shards.max(1);
        let counters = Arc::new(ShardCounters::default());
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = unbounded();
            let counters = Arc::clone(&counters);
            let auto_run = cfg.auto_run;
            let outputs = cfg.outputs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("vsgm-shard-{i}"))
                .spawn(move || shard_main(&rx, &counters, auto_run, outputs.as_ref()))
                // vsgm-allow(P1): thread-spawn failure is OS resource
                // exhaustion at server startup — nothing to unwind to
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        ShardPool { senders, handles: parking_lot::Mutex::new(handles), counters }
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard owning `gid` — pure arithmetic, no locks.
    pub fn shard_of(&self, gid: GroupId) -> usize {
        (gid.raw() % self.senders.len().max(1) as u64) as usize
    }

    /// Shared routing/hosting counters.
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    fn send_to(&self, gid: GroupId, cmd: ShardCmd) {
        let shard = self.shard_of(gid);
        if let Some(tx) = self.senders.get(shard) {
            // A send only fails after shutdown; commands raced past the
            // end of the pool's life are dropped by design.
            let _ = tx.send(cmd);
        }
    }

    /// Instantiates a group on its owning shard (idempotent per gid).
    pub fn create_group(&self, gid: GroupId, capacity: u64, seed: u64) {
        self.send_to(gid, ShardCmd::Create { gid, capacity, seed });
    }

    /// Routes one command to `gid`'s instance.
    pub fn apply(&self, gid: GroupId, cmd: GroupCmd) {
        self.send_to(gid, ShardCmd::Apply { gid, cmd });
    }

    /// Blocking snapshot of one group (`None` if unhosted).
    pub fn report(&self, gid: GroupId) -> Option<GroupReport> {
        let (reply, rx) = unbounded();
        self.send_to(gid, ShardCmd::Report { gid, reply });
        rx.recv().ok().flatten()
    }

    /// Blocking snapshot of every hosted group, ordered by gid.
    pub fn report_all(&self) -> Vec<GroupReport> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (reply, rx) = unbounded();
            if tx.send(ShardCmd::ReportAll { reply }).is_ok() {
                replies.push(rx);
            }
        }
        let mut all: Vec<GroupReport> =
            replies.into_iter().filter_map(|rx| rx.recv().ok()).flatten().collect();
        all.sort_by_key(|r| r.gid);
        all
    }

    /// Blocking checker finalization for one group (`None` if unhosted).
    pub fn finish(&self, gid: GroupId) -> Option<Vec<Violation>> {
        let (reply, rx) = unbounded();
        self.send_to(gid, ShardCmd::Finish { gid, reply });
        rx.recv().ok().flatten()
    }

    /// Blocking trace snapshot for one group (`None` if unhosted).
    pub fn trace_json(&self, gid: GroupId) -> Option<String> {
        let (reply, rx) = unbounded();
        self.send_to(gid, ShardCmd::TraceJson { gid, reply });
        rx.recv().ok().flatten()
    }

    /// Stops every worker after it drains its queue, and joins them.
    /// Idempotent; later commands are dropped.
    pub fn shutdown(&self) {
        for tx in &self.senders {
            let _ = tx.send(ShardCmd::Shutdown);
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn forward_outputs(
    gid: GroupId,
    outputs: Option<&Sender<(GroupId, ProcessId, NetMsg)>>,
    drained: Vec<GroupOutput>,
) {
    if let Some(tx) = outputs {
        for out in drained {
            let _ = tx.send((gid, out.to, out.msg));
        }
    }
}

fn shard_main(
    rx: &Receiver<ShardCmd>,
    counters: &ShardCounters,
    auto_run: bool,
    outputs: Option<&Sender<(GroupId, ProcessId, NetMsg)>>,
) {
    let mut groups: BTreeMap<GroupId, GroupInstance> = BTreeMap::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Create { gid, capacity, seed } => {
                if let std::collections::btree_map::Entry::Vacant(slot) = groups.entry(gid) {
                    slot.insert(GroupInstance::new(gid, capacity, seed));
                    counters.groups_hosted.fetch_add(1, Ordering::Relaxed);
                }
            }
            ShardCmd::Apply { gid, cmd } => match groups.get_mut(&gid) {
                Some(g) => {
                    counters.frames_routed.fetch_add(1, Ordering::Relaxed);
                    g.apply(cmd);
                    if auto_run {
                        g.run_to_quiescence();
                        forward_outputs(gid, outputs, g.drain_outputs());
                    }
                }
                None => {
                    counters.frames_unroutable.fetch_add(1, Ordering::Relaxed);
                }
            },
            ShardCmd::Report { gid, reply } => {
                let _ = reply.send(groups.get(&gid).map(GroupInstance::report));
            }
            ShardCmd::ReportAll { reply } => {
                let _ = reply.send(groups.values().map(GroupInstance::report).collect());
            }
            ShardCmd::Finish { gid, reply } => {
                let _ = reply.send(groups.get_mut(&gid).map(GroupInstance::finish));
            }
            ShardCmd::TraceJson { gid, reply } => {
                let _ = reply.send(groups.get(&gid).map(GroupInstance::trace_json));
            }
            ShardCmd::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_seed;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn routing_is_pure_modulo() {
        let pool = ShardPool::spawn(ShardConfig { shards: 4, ..ShardConfig::default() });
        assert_eq!(pool.shard_of(GroupId::new(1)), 1);
        assert_eq!(pool.shard_of(GroupId::new(4)), 0);
        assert_eq!(pool.shard_of(GroupId::new(7)), 3);
        assert_eq!(pool.shards(), 4);
    }

    #[test]
    fn commands_serialize_per_group_and_groups_stay_independent() {
        let pool = ShardPool::spawn(ShardConfig { shards: 2, ..ShardConfig::default() });
        let (g1, g2) = (GroupId::new(1), GroupId::new(2));
        pool.create_group(g1, 3, group_seed(5, g1));
        pool.create_group(g2, 3, group_seed(5, g2));
        for gid in [g1, g2] {
            for m in 1..=3 {
                pool.apply(gid, GroupCmd::Join(p(m)));
            }
        }
        pool.apply(g1, GroupCmd::Send { from: p(1), msg: AppMsg::from("one") });
        pool.apply(g2, GroupCmd::Send { from: p(2), msg: AppMsg::from("two") });
        pool.apply(g1, GroupCmd::Run);
        pool.apply(g2, GroupCmd::Run);
        let r1 = pool.report(g1).expect("g1 hosted");
        let r2 = pool.report(g2).expect("g2 hosted");
        assert!(r1.delivered >= 2 && r2.delivered >= 2, "{r1:?} {r2:?}");
        assert_eq!(pool.finish(g1), Some(vec![]));
        assert_eq!(pool.finish(g2), Some(vec![]));
        let all = pool.report_all();
        assert_eq!(all.iter().map(|r| r.gid).collect::<Vec<_>>(), vec![g1, g2]);
        assert_eq!(pool.counters().groups_hosted.load(Ordering::Relaxed), 2);
        assert!(pool.counters().frames_routed.load(Ordering::Relaxed) >= 10);
    }

    #[test]
    fn unroutable_commands_count_instead_of_crashing() {
        let pool = ShardPool::spawn(ShardConfig::default());
        pool.apply(GroupId::new(77), GroupCmd::Run);
        assert_eq!(pool.report(GroupId::new(77)), None);
        assert!(pool.counters().frames_unroutable.load(Ordering::Relaxed) >= 1);
        assert_eq!(pool.trace_json(GroupId::new(77)), None);
        assert_eq!(pool.finish(GroupId::new(77)), None);
    }

    #[test]
    fn create_is_idempotent_per_gid() {
        let pool = ShardPool::spawn(ShardConfig::default());
        let gid = GroupId::new(9);
        pool.create_group(gid, 2, 1);
        pool.apply(gid, GroupCmd::Join(p(1)));
        pool.apply(gid, GroupCmd::Join(p(2)));
        // A racing duplicate create must not reset the instance.
        pool.create_group(gid, 2, 999);
        let r = pool.report(gid).expect("hosted");
        assert_eq!(r.members.len(), 2, "duplicate create reset the group: {r:?}");
        assert_eq!(pool.counters().groups_hosted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn hosted_group_trace_matches_isolated_instance() {
        let gid = GroupId::new(6);
        let seed = group_seed(42, gid);
        let pool = ShardPool::spawn(ShardConfig { shards: 3, ..ShardConfig::default() });
        pool.create_group(gid, 3, seed);
        let cmds = |apply: &mut dyn FnMut(GroupCmd)| {
            for m in 1..=3 {
                apply(GroupCmd::Join(p(m)));
            }
            apply(GroupCmd::Send { from: p(1), msg: AppMsg::from("a") });
            apply(GroupCmd::RunForMs(3));
            apply(GroupCmd::Send { from: p(3), msg: AppMsg::from("b") });
            apply(GroupCmd::Run);
        };
        cmds(&mut |c| pool.apply(gid, c));
        let hosted = pool.trace_json(gid).expect("hosted trace");
        let mut isolated = GroupInstance::new(gid, 3, seed);
        cmds(&mut |c| isolated.apply(c));
        assert_eq!(hosted, isolated.trace_json(), "hosted == isolated, byte for byte");
    }
}
