//! The `vsgm-server` daemon entry point.
//!
//! ```text
//! vsgm-server [--addr 127.0.0.1:7400] [--pid 0] [--shards 4] [--capacity 16] [--seed N]
//! ```
//!
//! Binds the multi-group server and serves until interrupted, printing
//! a `server.*` counter snapshot every few seconds. Clients speak the
//! directory protocol on group 0 (`create/join/lookup/leave <name>`)
//! and group traffic on the ids the directory hands out — see the
//! README quick-start.

use std::time::Duration;
use vsgm_server::{GroupServer, ServerConfig};
use vsgm_types::ProcessId;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let addr: String = parse_flag(&args, "--addr", "127.0.0.1:7400".to_string());
    let pid: u64 = parse_flag(&args, "--pid", 0);
    let cfg = ServerConfig {
        shards: parse_flag(&args, "--shards", 4),
        group_capacity: parse_flag(&args, "--capacity", 16),
        seed: parse_flag(&args, "--seed", 0xD0_5E11),
        ..ServerConfig::default()
    };
    let shards = cfg.shards;
    let server = GroupServer::bind(ProcessId::new(pid), &addr, cfg)?;
    println!("vsgm-server p{pid} on {} ({} shards)", server.local_addr(), shards);
    loop {
        std::thread::sleep(Duration::from_secs(5));
        let s = server.stats();
        println!(
            "groups={} routed={} unroutable={} dir(create/join/lookup/leave)={}/{}/{}/{}",
            s.groups_hosted,
            s.frames_routed,
            s.frames_unroutable,
            s.dir_creates,
            s.dir_joins,
            s.dir_lookups,
            s.dir_leaves
        );
    }
}
