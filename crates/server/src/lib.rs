//! **vsgm-server** — the multi-group server of the paper's client-server
//! architecture (§3): many independent group instances, each running the
//! full virtually-synchronous protocol (views, cuts, FIFO buffers, batch
//! stage, audit cadence), multiplexed over one event-loop TCP transport.
//!
//! Layering (DESIGN.md §17):
//!
//! * [`group`] — one hosted [`GroupInstance`]: a deterministic
//!   single-group simulation driven by a totally ordered [`GroupCmd`]
//!   stream; byte-identical to an isolated run of the same commands.
//! * [`shard`] — [`ShardPool`]: `gid → shard` arithmetic routing onto
//!   worker threads that each *own* their groups outright, so the hot
//!   path takes no cross-shard locks.
//! * [`directory`] — [`Directory`]: name → group resolution with atomic
//!   create-or-join (the concurrent-create race fix).
//! * [`server`] — [`GroupServer`]: the TCP daemon routing v2
//!   group-envelope frames between clients, the directory, and the
//!   shards.
//!
//! ```no_run
//! use vsgm_server::{GroupServer, ServerConfig};
//! use vsgm_types::ProcessId;
//!
//! # fn main() -> std::io::Result<()> {
//! let server = GroupServer::bind(ProcessId::new(0), "127.0.0.1:0", ServerConfig::default())?;
//! println!("serving groups on {}", server.local_addr());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod group;
pub mod server;
pub mod shard;

pub use directory::{DirOutcome, DirRequest, Directory};
pub use group::{group_seed, GroupCmd, GroupInstance, GroupOutput, GroupReport};
pub use server::{GroupServer, ServerConfig, ServerStats};
pub use shard::{ShardConfig, ShardCounters, ShardPool};
