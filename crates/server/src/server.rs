//! The `vsgm-server` daemon: one TCP transport, many groups.
//!
//! The paper's client-server architecture (§3) assumes servers that
//! host group state for many lightweight clients. [`GroupServer`] is
//! that server: it binds one event-loop [`TcpTransport`], routes every
//! inbound frame by its v2 group envelope, and dispatches to the
//! [`ShardPool`] — `gid → shard` arithmetic, one lock-free channel send,
//! no cross-shard locks on the hot path.
//!
//! Frame routing:
//!
//! * envelope to [`GroupId::DIRECTORY`] — control plane. The UTF-8
//!   payload is a [`DirRequest`] (`create/join/lookup/leave <name>`);
//!   the reply goes back to the requesting client on the same reserved
//!   group.
//! * envelope to any other gid — data plane. An `App` payload becomes a
//!   [`GroupCmd::Send`] from the client's process id, which doubles as
//!   its member id within every group it joins.
//! * un-enveloped legacy frames have no group context on a multi-group
//!   server and are counted as unroutable rather than guessed at.
//!
//! Deliveries and view installations flow back to clients as enveloped
//! `Fwd`/`ViewMsg` frames ([`crate::group::GroupInstance::drain_outputs`]).
//! Because inbound connections are identified only by the 8-byte pid
//! handshake, the reverse path needs addresses:
//! [`GroupServer::register_client`].

use crate::directory::{err_response, ok_response, DirOutcome, DirRequest, Directory};
use crate::group::{group_seed, GroupCmd};
use crate::shard::{ShardConfig, ShardPool};
use crossbeam::channel::{unbounded, Receiver};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vsgm_net::{TcpConfig, TcpTransport};
use vsgm_types::{AppMsg, GroupId, NetMsg, ProcessId};

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shard worker threads (`gid % shards` routing).
    pub shards: usize,
    /// End-points pre-provisioned per group — the highest client
    /// process id that can join any group.
    pub group_capacity: u64,
    /// Base seed; each group derives its own via [`group_seed`].
    pub seed: u64,
    /// Transport knobs for the daemon's socket.
    pub tcp: TcpConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { shards: 4, group_capacity: 16, seed: 0xD0_5E11, tcp: TcpConfig::default() }
    }
}

/// Counter snapshot across the daemon's layers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Group instances currently hosted.
    pub groups_hosted: u64,
    /// Shard worker threads.
    pub shards: u64,
    /// Frames routed to a hosted group.
    pub frames_routed: u64,
    /// Frames with no routable group (unknown gid, missing envelope, or
    /// non-App data-plane payloads).
    pub frames_unroutable: u64,
    /// Directory creates / joins / lookups / leaves.
    pub dir_creates: u64,
    /// Directory joins (create-or-join losers included).
    pub dir_joins: u64,
    /// Directory lookups.
    pub dir_lookups: u64,
    /// Directory leaves.
    pub dir_leaves: u64,
}

/// The multi-group daemon. See the module docs.
pub struct GroupServer {
    transport: Arc<TcpTransport>,
    directory: Arc<Directory>,
    pool: Arc<ShardPool>,
    shutdown: Arc<AtomicBool>,
    router: Option<std::thread::JoinHandle<()>>,
    forwarder: Option<std::thread::JoinHandle<()>>,
}

impl GroupServer {
    /// Binds the daemon's transport as process `me` on `addr` and
    /// starts the router, forwarder, and shard workers.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the TCP listener.
    pub fn bind(me: ProcessId, addr: &str, cfg: ServerConfig) -> io::Result<GroupServer> {
        let transport = Arc::new(TcpTransport::bind_with(me, addr, cfg.tcp.clone())?);
        let directory = Arc::new(Directory::new());
        let (out_tx, out_rx) = unbounded();
        let pool = Arc::new(ShardPool::spawn(ShardConfig {
            shards: cfg.shards,
            auto_run: true,
            outputs: Some(out_tx),
        }));
        let shutdown = Arc::new(AtomicBool::new(false));
        let router = {
            let transport = Arc::clone(&transport);
            let directory = Arc::clone(&directory);
            let pool = Arc::clone(&pool);
            let shutdown = Arc::clone(&shutdown);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("vsgm-server-router".into())
                .spawn(move || router_main(&transport, &directory, &pool, &shutdown, &cfg))
                // vsgm-allow(P1): thread-spawn failure is OS resource
                // exhaustion at daemon startup — nothing to unwind to
                .expect("spawn server router")
        };
        let forwarder = {
            let transport = Arc::clone(&transport);
            std::thread::Builder::new()
                .name("vsgm-server-fwd".into())
                .spawn(move || forwarder_main(&transport, &out_rx))
                // vsgm-allow(P1): as above
                .expect("spawn server forwarder")
        };
        Ok(GroupServer {
            transport,
            directory,
            pool,
            shutdown,
            router: Some(router),
            forwarder: Some(forwarder),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.transport.local_addr()
    }

    /// Registers where client `peer` listens, enabling the delivery /
    /// directory-response path back to it.
    pub fn register_client(&self, peer: ProcessId, addr: SocketAddr) {
        self.transport.register_peer(peer, addr);
    }

    /// The name service.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The shard pool (snapshots, conformance checks).
    pub fn shards(&self) -> &ShardPool {
        &self.pool
    }

    /// Counter snapshot across directory and shards.
    pub fn stats(&self) -> ServerStats {
        let c = self.pool.counters();
        let (dir_creates, dir_joins, dir_lookups, dir_leaves) = self.directory.counters();
        ServerStats {
            groups_hosted: c.groups_hosted.load(Ordering::Relaxed),
            shards: self.pool.shards() as u64,
            frames_routed: c.frames_routed.load(Ordering::Relaxed),
            frames_unroutable: c.frames_unroutable.load(Ordering::Relaxed),
            dir_creates,
            dir_joins,
            dir_lookups,
            dir_leaves,
        }
    }

    /// Mirrors the `server.*` counters into an observability recorder
    /// (one-shot export, like `TcpTransport::export_obs`).
    pub fn export_obs(&self, rec: &mut dyn vsgm_obs::Recorder) {
        use vsgm_obs::names;
        let s = self.stats();
        rec.gauge(names::SERVER_GROUPS_HOSTED, s.groups_hosted);
        rec.gauge(names::SERVER_SHARDS, s.shards);
        rec.counter(names::SERVER_FRAMES_ROUTED, s.frames_routed);
        rec.counter(names::SERVER_FRAMES_UNROUTABLE, s.frames_unroutable);
        self.directory.export_obs(rec);
    }
}

impl Drop for GroupServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        // Stopping the shard workers closes the output channel (they
        // hold its only senders), which lets the forwarder exit.
        self.pool.shutdown();
        if let Some(h) = self.forwarder.take() {
            let _ = h.join();
        }
    }
}

fn router_main(
    transport: &TcpTransport,
    directory: &Directory,
    pool: &ShardPool,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let Some((peer, group, msg)) = transport.recv_routed_timeout(Duration::from_millis(25))
        else {
            continue;
        };
        match group {
            Some(GroupId::DIRECTORY) => {
                if let NetMsg::App(req) = msg {
                    let reply = handle_directory(directory, pool, cfg, peer, req.as_bytes());
                    let to = [peer].into_iter().collect();
                    let _ = transport.send_to_group(
                        GroupId::DIRECTORY,
                        &to,
                        &NetMsg::App(AppMsg::from(reply.as_str())),
                    );
                }
            }
            Some(gid) => match msg {
                NetMsg::App(payload) => {
                    pool.apply(gid, GroupCmd::Send { from: peer, msg: payload });
                }
                _ => {
                    // Data-plane frames other than App are not part of
                    // the client protocol.
                    pool.counters().frames_unroutable.fetch_add(1, Ordering::Relaxed);
                }
            },
            None => {
                // Legacy single-group frame: no group context here.
                pool.counters().frames_unroutable.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn handle_directory(
    directory: &Directory,
    pool: &ShardPool,
    cfg: &ServerConfig,
    peer: ProcessId,
    raw: &[u8],
) -> String {
    let Ok(line) = std::str::from_utf8(raw) else {
        return err_response("bad-request", "?");
    };
    let Some(req) = DirRequest::parse(line) else {
        return err_response("bad-request", line.trim());
    };
    match req {
        DirRequest::Create(name) => {
            // Atomic create-or-join: exactly one concurrent creator
            // instantiates the group; every other caller joins it.
            let outcome = directory.create_or_join(&name);
            let gid = outcome.gid();
            if let DirOutcome::Created(gid) = outcome {
                pool.create_group(gid, cfg.group_capacity, group_seed(cfg.seed, gid));
            }
            pool.apply(gid, GroupCmd::Join(peer));
            let verb = match outcome {
                DirOutcome::Created(_) => "create",
                DirOutcome::Joined(_) => "join",
            };
            ok_response(verb, &name, gid)
        }
        DirRequest::Join(name) => match directory.lookup(&name) {
            Some(gid) => {
                pool.apply(gid, GroupCmd::Join(peer));
                ok_response("join", &name, gid)
            }
            None => err_response("unknown-group", &name),
        },
        DirRequest::Lookup(name) => match directory.lookup(&name) {
            Some(gid) => ok_response("lookup", &name, gid),
            None => err_response("unknown-group", &name),
        },
        DirRequest::Leave(name) => match directory.leave(&name) {
            Some(gid) => {
                pool.apply(gid, GroupCmd::Leave(peer));
                ok_response("leave", &name, gid)
            }
            None => err_response("unknown-group", &name),
        },
    }
}

fn forwarder_main(
    transport: &TcpTransport,
    outputs: &Receiver<(GroupId, ProcessId, NetMsg)>,
) {
    // Exits when every shard worker (the only senders) has shut down.
    while let Ok((gid, to, msg)) = outputs.recv() {
        let to = [to].into_iter().collect();
        let _ = transport.send_to_group(gid, &to, &msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use vsgm_net::Transport;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    struct Client {
        t: TcpTransport,
        server: ProcessId,
        /// Frames received while waiting for something else; kept so a
        /// later await can still observe them (two awaits in sequence
        /// must not drop each other's frames).
        pending: std::cell::RefCell<Vec<(ProcessId, Option<GroupId>, NetMsg)>>,
    }

    impl Client {
        fn connect(me: u64, server: &GroupServer) -> Client {
            let t = TcpTransport::bind(p(me), "127.0.0.1:0")
                .expect("bind client");
            t.register_peer(p(0), server.local_addr());
            server.register_client(p(me), t.local_addr());
            Client { t, server: p(0), pending: std::cell::RefCell::new(Vec::new()) }
        }

        /// Waits until a frame satisfying `want` arrives: first scans the
        /// pending buffer, then polls the socket, parking non-matching
        /// frames in the buffer for later awaits.
        fn await_frame(
            &self,
            what: &str,
            mut want: impl FnMut(&(ProcessId, Option<GroupId>, NetMsg)) -> bool,
        ) -> (ProcessId, Option<GroupId>, NetMsg) {
            {
                let mut pending = self.pending.borrow_mut();
                if let Some(i) = pending.iter().position(&mut want) {
                    return pending.remove(i);
                }
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match self.t.recv_routed_timeout(Duration::from_millis(100)) {
                    Some(frame) if want(&frame) => return frame,
                    Some(other) => self.pending.borrow_mut().push(other),
                    None => assert!(Instant::now() < deadline, "{what} never arrived"),
                }
            }
        }

        fn request(&self, line: &str) -> String {
            let to = [self.server].into_iter().collect();
            self.t
                .send_to_group(GroupId::DIRECTORY, &to, &NetMsg::App(AppMsg::from(line)))
                .expect("send directory request");
            let frame = self.await_frame("directory reply", |(_, g, m)| {
                matches!((g, m), (Some(GroupId::DIRECTORY), NetMsg::App(_)))
            });
            match frame {
                (_, _, NetMsg::App(reply)) => {
                    String::from_utf8_lossy(reply.as_bytes()).into_owned()
                }
                other => panic!("matched non-App frame {other:?}"),
            }
        }

        fn send(&self, gid: GroupId, payload: &str) {
            let to = [self.server].into_iter().collect();
            self.t
                .send_to_group(gid, &to, &NetMsg::App(AppMsg::from(payload)))
                .expect("send group frame");
        }

        fn await_delivery(&self, gid: GroupId, from: ProcessId, payload: &str) {
            self.await_frame(&format!("delivery of {payload:?} in {gid}"), |(_, g, m)| {
                matches!(m, NetMsg::Fwd(f)
                    if *g == Some(gid) && f.origin == from && f.msg == AppMsg::from(payload))
            });
        }
    }

    #[test]
    fn end_to_end_create_join_send_deliver() {
        let server =
            GroupServer::bind(p(0), "127.0.0.1:0", ServerConfig::default()).expect("bind server");
        let alice = Client::connect(1, &server);
        let bob = Client::connect(2, &server);
        let reply = alice.request("create room");
        assert_eq!(reply, "ok create room 1");
        let reply = bob.request("create room");
        assert_eq!(reply, "ok join room 1", "second creator joins the same instance");
        let gid = GroupId::new(1);
        alice.send(gid, "hello-bob");
        bob.await_delivery(gid, p(1), "hello-bob");
        bob.send(gid, "hello-alice");
        alice.await_delivery(gid, p(2), "hello-alice");
        let stats = server.stats();
        assert_eq!(stats.groups_hosted, 1);
        assert!(stats.frames_routed >= 4, "{stats:?}");
        assert_eq!(stats.dir_creates, 1);
        assert_eq!(stats.dir_joins, 1);
        // The hosted group's spec checkers are green.
        assert_eq!(server.shards().finish(gid), Some(vec![]));
        let mut reg = vsgm_obs::Registry::new();
        server.export_obs(&mut reg);
        assert_eq!(reg.counter(vsgm_obs::names::SERVER_FRAMES_ROUTED), stats.frames_routed);
    }

    #[test]
    fn groups_are_independent_on_one_server() {
        let server =
            GroupServer::bind(p(0), "127.0.0.1:0", ServerConfig::default()).expect("bind server");
        let a = Client::connect(1, &server);
        let b = Client::connect(2, &server);
        assert_eq!(a.request("create red"), "ok create red 1");
        assert_eq!(b.request("create blue"), "ok create blue 2");
        assert_eq!(a.request("join blue"), "ok join blue 2");
        assert_eq!(b.request("join red"), "ok join red 1");
        a.send(GroupId::new(1), "red-msg");
        a.send(GroupId::new(2), "blue-msg");
        b.await_delivery(GroupId::new(1), p(1), "red-msg");
        b.await_delivery(GroupId::new(2), p(1), "blue-msg");
        assert_eq!(server.stats().groups_hosted, 2);
        assert_eq!(server.shards().finish(GroupId::new(1)), Some(vec![]));
        assert_eq!(server.shards().finish(GroupId::new(2)), Some(vec![]));
    }

    #[test]
    fn directory_errors_and_unroutable_frames_are_graceful() {
        let server =
            GroupServer::bind(p(0), "127.0.0.1:0", ServerConfig::default()).expect("bind server");
        let c = Client::connect(1, &server);
        assert_eq!(c.request("join nowhere"), "err unknown-group nowhere");
        assert_eq!(c.request("lookup nowhere"), "err unknown-group nowhere");
        assert_eq!(c.request("gibberish"), "err bad-request gibberish");
        // A frame to an unhosted gid and a legacy un-enveloped frame are
        // counted, not crashed on.
        c.send(GroupId::new(99), "void");
        let to = [p(0)].into_iter().collect();
        c.t.send(&to, &NetMsg::App(AppMsg::from("legacy"))).expect("legacy send");
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().frames_unroutable < 2 {
            assert!(Instant::now() < deadline, "unroutable frames never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().groups_hosted, 0);
    }
}
