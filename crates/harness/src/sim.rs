//! The oracle-driven simulator.

use std::collections::BTreeMap;
use vsgm_core::{BlockingClient, Config, Effect, Endpoint, GroupEndpoint, Input};
use vsgm_ioa::{CheckSet, SimRng, SimTime, Trace, Violation};
use vsgm_membership::MembershipOracle;
use vsgm_net::{FaultPlan, FaultStats, LatencyModel, SimNet};
use vsgm_obs::{names as obs_names, NoopRecorder, ObsEvent, ObsRecorder, Recorder};
use vsgm_types::{AppMsg, Event, NetMsg, ProcSet, ProcessId, View};

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Seed for every random draw (latency jitter, scheduling).
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Whether to run the spec checkers online.
    pub check: bool,
    /// Shuffle the order end-points are polled in each round (more
    /// schedule diversity; still deterministic per seed).
    pub shuffle_polling: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { seed: 0, latency: LatencyModel::lan(), check: true, shuffle_polling: false }
    }
}

/// A deterministic whole-system simulation over endpoints of type `E`.
///
/// Process ids are `p1..pn`. The membership service is the scripted
/// [`MembershipOracle`]; its notifications are delivered to endpoints
/// instantaneously (the client↔server membership channel is outside the
/// model — see [`crate::server_sim::ServerSim`] for the fully
/// message-passing variant). Application clients auto-acknowledge block
/// requests and queue sends while blocked, per `CLIENT:SPEC`.
///
/// ```
/// use vsgm_harness::{Sim, SimOptions};
/// use vsgm_types::AppMsg;
///
/// let mut sim = Sim::new_paper(3, Default::default(), SimOptions::default());
/// sim.reconfigure(&sim.all_procs());
/// sim.send(sim.proc(1), AppMsg::from("hello"));
/// sim.run_to_quiescence();
/// assert!(sim.finish().is_empty()); // every spec checker is clean
/// ```
pub struct Sim<E: GroupEndpoint = Endpoint> {
    opts: SimOptions,
    time: SimTime,
    net: SimNet<NetMsg>,
    eps: BTreeMap<ProcessId, E>,
    clients: BTreeMap<ProcessId, BlockingClient>,
    oracle: MembershipOracle,
    trace: Trace,
    checks: CheckSet,
    proposer_seq: u64,
    sched_rng: SimRng,
    /// Optional observability recorder (off by default; [`Sim::enable_obs`]).
    obs: Option<ObsRecorder>,
    /// No-op sink used when observability is off.
    noop: NoopRecorder,
    /// Bug-injection hook: index of the sync/sync-agg send to swallow
    /// ([`Sim::suppress_sync`]).
    suppress_sync: Option<u64>,
    /// Sync/sync-agg sends seen so far (drives `suppress_sync`).
    sync_seen: u64,
    /// Trace position and time of the **first** state corruption injected
    /// with [`Sim::corrupt`] — where pre-fault safety judging ends.
    corruption_mark: Option<(usize, SimTime)>,
    /// Time of the **latest** corruption — the origin for measuring
    /// convergence time.
    last_corruption: Option<SimTime>,
}

/// Selects the active recorder without borrowing the whole `Sim` (so the
/// network / endpoint maps can be borrowed simultaneously).
fn rec_of<'a>(
    obs: &'a mut Option<ObsRecorder>,
    noop: &'a mut NoopRecorder,
) -> &'a mut dyn Recorder {
    match obs {
        Some(r) => r,
        None => noop,
    }
}

impl Sim<Endpoint> {
    /// Creates a simulation of `n` end-points running the paper's
    /// algorithm with the given end-point configuration.
    pub fn new_paper(n: usize, cfg: Config, opts: SimOptions) -> Self {
        let eps = (1..=n as u64)
            .map(|i| {
                let pid = ProcessId::new(i);
                (pid, Endpoint::new(pid, cfg.clone()))
            })
            .collect();
        Sim::with_endpoints(eps, opts)
    }
}

impl Sim<Endpoint> {
    /// Asserts every numbered invariant of the paper's proofs (§6–§7)
    /// over the current global state (see `vsgm_core::invariants`).
    ///
    /// # Panics
    ///
    /// Panics with the violated invariant's name and details.
    #[track_caller]
    pub fn assert_paper_invariants(&self) {
        // After a deliberate state corruption the invariants are *meant*
        // to be broken until the audit reconciles the damaged end-point;
        // legality of the post-stabilization suffix is judged by
        // `vsgm_spec::stabilize` instead.
        if self.corruption_mark.is_some() {
            return;
        }
        let states = self.eps.values().map(|e| e.state());
        if let Err(e) = vsgm_core::invariants::check_all(states) {
            panic!("paper invariant violated: {e}");
        }
    }

    /// Injects one state-corruption fault into live end-point `p` (the
    /// self-stabilization chaos tier). The damage salt is drawn from the
    /// scheduling RNG, so runs stay deterministic per seed. Records the
    /// trace position and time as the corruption mark (see
    /// [`Sim::corruption_mark`]) and disables
    /// [`Sim::assert_paper_invariants`] from here on. No-op on crashed
    /// end-points (their volatile state is about to vanish anyway).
    pub fn corrupt(&mut self, p: ProcessId, kind: vsgm_core::CorruptionKind) {
        if self.eps[&p].is_crashed() {
            return;
        }
        let salt = self.sched_rng.range(0, 1 << 16);
        self.eps.get_mut(&p).expect("known proc").corrupt(kind, salt);
        let rec = rec_of(&mut self.obs, &mut self.noop);
        rec.counter(obs_names::CHAOS_CORRUPTIONS, 1);
        rec.event(p, None, ObsEvent::CorruptionInjected);
        if self.corruption_mark.is_none() {
            self.corruption_mark = Some((self.trace.entries().len(), self.time));
        }
        self.last_corruption = Some(self.time);
    }

    /// Trace position and simulated time of the first [`Sim::corrupt`]
    /// injection, if any — where the convergence judge's pre-fault prefix
    /// ends.
    pub fn corruption_mark(&self) -> Option<(usize, SimTime)> {
        self.corruption_mark
    }

    /// Simulated time of the latest [`Sim::corrupt`] injection — the
    /// origin for time-to-converge measurements.
    pub fn last_corruption(&self) -> Option<SimTime> {
        self.last_corruption
    }
}

impl Sim<vsgm_baseline::BaselineEndpoint> {
    /// Creates a simulation of `n` end-points running the two-round
    /// pre-agreement baseline.
    pub fn new_baseline(n: usize, opts: SimOptions) -> Self {
        let eps = (1..=n as u64)
            .map(|i| {
                let pid = ProcessId::new(i);
                (pid, vsgm_baseline::BaselineEndpoint::new(pid))
            })
            .collect();
        Sim::with_endpoints(eps, opts)
    }
}

impl<E: GroupEndpoint> Sim<E> {
    /// Builds a simulation from explicit endpoints.
    pub fn with_endpoints(eps: BTreeMap<ProcessId, E>, opts: SimOptions) -> Self {
        let procs: Vec<ProcessId> = eps.keys().copied().collect();
        let mut rng = SimRng::new(opts.seed);
        let sched_rng = rng.fork(1);
        let net = SimNet::new(procs.iter().copied(), opts.latency, rng);
        let clients = procs.iter().map(|p| (*p, BlockingClient::new())).collect();
        let checks = if opts.check { vsgm_spec::full_checks(None) } else { CheckSet::new() };
        Sim {
            opts,
            time: SimTime::ZERO,
            net,
            eps,
            clients,
            oracle: MembershipOracle::new(),
            trace: Trace::new(),
            checks,
            proposer_seq: 0,
            sched_rng,
            obs: None,
            noop: NoopRecorder,
            suppress_sync: None,
            sync_seen: 0,
            corruption_mark: None,
            last_corruption: None,
        }
    }

    /// Turns on protocol observability: from now on every membership
    /// notification, endpoint step and network hop is mirrored into a
    /// [`vsgm_obs`] event journal and metrics registry. Idempotent.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            let mut r = ObsRecorder::new();
            r.advance_time(self.time);
            self.obs = Some(r);
        }
    }

    /// The observability recorder, if [`Sim::enable_obs`] was called.
    pub fn obs(&self) -> Option<&ObsRecorder> {
        self.obs.as_ref()
    }

    /// Removes and returns the recorder (e.g. to snapshot it after a
    /// run); observability is off afterwards.
    pub fn take_obs(&mut self) -> Option<ObsRecorder> {
        self.obs.take()
    }

    /// All process ids.
    pub fn all_procs(&self) -> ProcSet {
        self.eps.keys().copied().collect()
    }

    /// The id of the `i`-th process (1-based).
    pub fn proc(&self, i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The recorded global trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Writes the trace as JSON lines (viewable with the `trace_view`
    /// binary, reloadable with [`Trace::from_json_lines`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.trace.to_json_lines())
    }

    /// The network (traffic stats, connectivity queries).
    pub fn net(&self) -> &SimNet<NetMsg> {
        &self.net
    }

    /// Resets network traffic statistics (between experiment phases).
    pub fn reset_net_stats(&mut self) {
        self.net_mut().reset_stats();
    }

    fn net_mut(&mut self) -> &mut SimNet<NetMsg> {
        &mut self.net
    }

    /// Read access to an endpoint.
    pub fn endpoint(&self, p: ProcessId) -> &E {
        &self.eps[&p]
    }

    fn record(&mut self, event: Event) {
        let step = self.trace.record(self.time, event);
        if self.opts.check {
            let entry = self.trace.entries()[step as usize].clone();
            self.checks.observe(&entry);
        }
    }

    // ----- workload -----

    /// The application at `p` multicasts `msg` (queued if blocked).
    pub fn send(&mut self, p: ProcessId, msg: AppMsg) {
        if self.eps[&p].is_crashed() {
            return;
        }
        let release = self.clients.get_mut(&p).expect("known proc").want_send(msg);
        if let Some(m) = release {
            self.record(Event::Send { p, msg: m.clone() });
            let rec = rec_of(&mut self.obs, &mut self.noop);
            let effects =
                self.eps.get_mut(&p).expect("known proc").handle_rec(Input::AppSend(m), rec);
            self.route(p, effects);
        }
    }

    // ----- membership scripting -----

    /// Issues a `start_change` suggesting `suggested`, to all of
    /// `suggested`.
    pub fn start_change(&mut self, suggested: &ProcSet) {
        self.start_change_for(suggested, suggested);
    }

    /// Issues a `start_change` to `targets` suggesting `suggested`.
    pub fn start_change_for(&mut self, targets: &ProcSet, suggested: &ProcSet) {
        let notices = self.oracle.start_change_for(targets, suggested);
        for n in notices {
            if self.eps[&n.p].is_crashed() {
                continue;
            }
            self.record(Event::MbrshpStartChange { p: n.p, cid: n.cid, set: n.set.clone() });
            let live = self.net.live_set(n.p);
            self.record(Event::Live { p: n.p, set: live });
            let rec = rec_of(&mut self.obs, &mut self.noop);
            let effects = self
                .eps
                .get_mut(&n.p)
                .expect("known proc")
                .handle_rec(Input::StartChange { cid: n.cid, set: n.set }, rec);
            self.route(n.p, effects);
        }
        self.step_all();
    }

    /// Forms and delivers the membership view for `members`.
    pub fn form_view(&mut self, members: &ProcSet) -> View {
        // §8: a member that crashed and recovered (or reconciled after a
        // detected corruption) since the change began has lost its
        // start_change, and the oracle cleared its pending slot. The real
        // service re-engages such a member with a fresh start_change
        // before the view forms; mirror that here rather than letting the
        // oracle reject the now-stale script.
        let missing: ProcSet =
            members.iter().filter(|m| !self.oracle.change_pending(**m)).copied().collect();
        if !missing.is_empty() {
            self.start_change_for(&missing, members);
        }
        self.proposer_seq += 1;
        let view = self.oracle.form_view(members, self.proposer_seq);
        for m in members {
            if self.eps[m].is_crashed() {
                continue;
            }
            self.record(Event::MbrshpView { p: *m, view: view.clone() });
            let live = self.net.live_set(*m);
            self.record(Event::Live { p: *m, set: live });
            let rec = rec_of(&mut self.obs, &mut self.noop);
            let effects = self
                .eps
                .get_mut(m)
                .expect("known proc")
                .handle_rec(Input::MbrshpView(view.clone()), rec);
            self.route(*m, effects);
        }
        self.step_all();
        view
    }

    /// One full reconfiguration: `start_change` + view for `members`.
    pub fn reconfigure(&mut self, members: &ProcSet) -> View {
        self.start_change(members);
        self.form_view(members)
    }

    /// Feeds a raw `start_change` notification to one endpoint, bypassing
    /// the oracle (used by [`crate::server_sim::ServerSim`], whose
    /// membership comes from real servers).
    pub fn feed_start_change(
        &mut self,
        p: ProcessId,
        cid: vsgm_types::StartChangeId,
        set: ProcSet,
    ) {
        if self.eps[&p].is_crashed() {
            return;
        }
        self.record(Event::MbrshpStartChange { p, cid, set: set.clone() });
        let live = self.net.live_set(p);
        self.record(Event::Live { p, set: live });
        let rec = rec_of(&mut self.obs, &mut self.noop);
        let effects = self
            .eps
            .get_mut(&p)
            .expect("known proc")
            .handle_rec(Input::StartChange { cid, set }, rec);
        self.route(p, effects);
    }

    /// Feeds a raw membership view to one endpoint, bypassing the oracle.
    pub fn feed_view(&mut self, p: ProcessId, view: View) {
        if self.eps[&p].is_crashed() {
            return;
        }
        self.record(Event::MbrshpView { p, view: view.clone() });
        let live = self.net.live_set(p);
        self.record(Event::Live { p, set: live });
        let rec = rec_of(&mut self.obs, &mut self.noop);
        let effects =
            self.eps.get_mut(&p).expect("known proc").handle_rec(Input::MbrshpView(view), rec);
        self.route(p, effects);
    }

    // ----- faults -----

    /// Partitions the network into the given components.
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        self.net.partition(groups);
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        let now = self.time;
        self.net.heal(now);
    }

    /// Installs (or replaces) the chaos fault plan on the simulated
    /// network; a [`FaultPlan::none`] plan clears it. Faults are drawn
    /// from a fork of the simulation seed, so runs stay deterministic.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_faults(plan);
    }

    /// What the fault injector has done so far (zeros when no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats()
    }

    /// Crashes `p` (§8): endpoint frozen, outgoing traffic dropped.
    /// No-op if `p` is already down (minimized chaos scenarios may lose
    /// the intervening `Recover` step).
    pub fn crash(&mut self, p: ProcessId) {
        if self.eps[&p].is_crashed() {
            return;
        }
        self.record(Event::Crash { p });
        self.net.crash(p);
        let rec = rec_of(&mut self.obs, &mut self.noop);
        let effects = self.eps.get_mut(&p).expect("known proc").handle_rec(Input::Crash, rec);
        self.route(p, effects);
        self.clients.insert(p, BlockingClient::new());
    }

    /// Crashes `p` in the middle of a sync round: delivers network
    /// arrivals until `p` is mid-reconfiguration (it often already is,
    /// right after a `start_change`), lets a short deterministic prefix
    /// of the sync exchange land, then crashes `p`. Falls back to a plain
    /// crash at quiescence if no reconfiguration ever starts.
    pub fn crash_during_sync(&mut self, p: ProcessId) {
        if self.eps[&p].is_crashed() {
            return;
        }
        for _ in 0..10_000_000u64 {
            if self.eps[&p].reconfiguring() || !self.deliver_next() {
                break;
            }
        }
        if self.eps[&p].reconfiguring() {
            // Vary (deterministically) how much of the sync round p sees
            // before dying — crash-before-sync vs crash-after-partial-sync
            // exercise different recovery paths.
            let extra = self.sched_rng.range(0, 3);
            for _ in 0..extra {
                if !self.deliver_next() {
                    break;
                }
            }
        }
        self.crash(p);
    }

    /// Recovers `p` with a fresh initial state (no stable storage).
    /// No-op if `p` is not down.
    pub fn recover(&mut self, p: ProcessId) {
        if !self.eps[&p].is_crashed() {
            return;
        }
        self.record(Event::Recover { p });
        self.net.recover(p);
        self.oracle.recover(p);
        let rec = rec_of(&mut self.obs, &mut self.noop);
        let effects = self.eps.get_mut(&p).expect("known proc").handle_rec(Input::Recover, rec);
        self.route(p, effects);
    }

    // ----- execution -----

    /// Advances every endpoint's local clock to the current simulated
    /// time. Inert unless an endpoint has a time-dependent stage (the
    /// batching linger deadline); clock advances are not trace events.
    fn tick_all(&mut self) {
        let us = self.time.as_micros();
        let ids: Vec<ProcessId> = self.eps.keys().copied().collect();
        for id in ids {
            let rec = rec_of(&mut self.obs, &mut self.noop);
            let effects =
                self.eps.get_mut(&id).expect("known proc").handle_rec(Input::Tick(us), rec);
            self.route(id, effects);
        }
    }

    /// The earliest pending linger deadline across live endpoints, if any
    /// batch is being held (`None` for endpoints without batching).
    fn next_deadline(&self) -> Option<SimTime> {
        self.eps
            .values()
            .filter(|e| !e.is_crashed())
            .filter_map(GroupEndpoint::next_deadline_us)
            .min()
            .map(SimTime::from_micros)
    }

    /// Fires endpoint actions until every endpoint is quiescent (no time
    /// passes; network arrivals are not consumed).
    pub fn step_all(&mut self) {
        for _ in 0..1_000_000 {
            let mut progress = false;
            let mut ids: Vec<ProcessId> = self.eps.keys().copied().collect();
            if self.opts.shuffle_polling {
                self.sched_rng.shuffle(&mut ids);
            }
            for id in ids {
                let rec = rec_of(&mut self.obs, &mut self.noop);
                let effects = self.eps.get_mut(&id).expect("known proc").poll_rec(rec);
                if !effects.is_empty() {
                    progress = true;
                    self.route(id, effects);
                }
            }
            if !progress {
                return;
            }
        }
        panic!("simulation livelock in step_all");
    }

    /// Delivers the next batch of network arrivals (advancing simulated
    /// time) and lets endpoints react. Returns false when nothing is in
    /// flight on a live channel.
    pub fn deliver_next(&mut self) -> bool {
        let Some(t) = self.net.next_arrival() else { return false };
        self.time = t;
        if let Some(r) = &mut self.obs {
            r.advance_time(t);
        }
        self.tick_all();
        let batch = self.net.pop_ready_rec(t, rec_of(&mut self.obs, &mut self.noop));
        for (from, to, msg) in batch {
            self.record(Event::NetDeliver { p: from, q: to, msg: msg.clone() });
            let rec = rec_of(&mut self.obs, &mut self.noop);
            let effects =
                self.eps.get_mut(&to).expect("known proc").handle_rec(Input::Net { from, msg }, rec);
            self.route(to, effects);
        }
        self.step_all();
        true
    }

    /// Runs until no endpoint action is enabled, no message is in flight
    /// on a live channel, and no batch is held on a linger deadline (the
    /// clock jumps to pending deadlines once the network drains, so held
    /// batches flush instead of wedging quiescence).
    pub fn run_to_quiescence(&mut self) {
        self.step_all();
        for _ in 0..10_000_000u64 {
            if self.deliver_next() {
                continue;
            }
            // Network idle: release any batch waiting on its linger
            // deadline by advancing time there.
            let Some(deadline) = self.next_deadline() else { return };
            self.time = self.time.max(deadline);
            if let Some(r) = &mut self.obs {
                r.advance_time(self.time);
            }
            self.tick_all();
            self.step_all();
        }
        panic!("simulation did not quiesce");
    }

    /// Runs for `d` of simulated time: delivers every arrival due within
    /// the window and advances the clock to the end of it, leaving later
    /// arrivals in flight. Lets chaos scenarios interleave faults with a
    /// half-drained network instead of always reaching quiescence.
    pub fn run_for(&mut self, d: SimTime) {
        self.step_all();
        let deadline = self.time + d;
        for _ in 0..10_000_000u64 {
            // A batch linger deadline due within the window is a time
            // event like an arrival: whichever comes first fires first.
            let flush_at = self.next_deadline().filter(|t| *t <= deadline);
            match (self.net.next_arrival(), flush_at) {
                (Some(t), flush) if t <= deadline && flush.is_none_or(|f| t <= f) => {
                    self.deliver_next();
                }
                (_, Some(f)) => {
                    self.time = self.time.max(f);
                    if let Some(r) = &mut self.obs {
                        r.advance_time(self.time);
                    }
                    self.tick_all();
                    self.step_all();
                }
                _ => break,
            }
        }
        if self.time < deadline {
            self.time = deadline;
            if let Some(r) = &mut self.obs {
                r.advance_time(deadline);
            }
            self.tick_all();
            self.step_all();
        }
    }

    /// Deliberate-bug hook for oracle validation: silently swallows the
    /// `nth` (0-based, counted from this call) sync/sync-agg send — the
    /// endpoint believes it sent its cut, nobody receives it, and
    /// `CO_RFIFO` sees nothing (the message never reaches the network).
    /// A correct chaos oracle must catch the resulting stalled view
    /// change via the Property 4.2 liveness check.
    pub fn suppress_sync(&mut self, nth: u64) {
        self.suppress_sync = Some(self.sync_seen + nth);
    }

    /// Whether the [`Sim::suppress_sync`] bug has fired yet.
    pub fn suppressed_a_sync(&self) -> bool {
        matches!(self.suppress_sync, Some(nth) if self.sync_seen > nth)
    }

    fn route(&mut self, from: ProcessId, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::NetSend { to, msg } => {
                    if matches!(msg.tag(), "sync_msg" | "sync_agg") {
                        let idx = self.sync_seen;
                        self.sync_seen += 1;
                        if self.suppress_sync == Some(idx) {
                            continue;
                        }
                    }
                    self.record(Event::NetSend { p: from, set: to.clone(), msg: msg.clone() });
                    let now = self.time;
                    let rec = rec_of(&mut self.obs, &mut self.noop);
                    self.net.send_rec(now, from, &to, &msg, rec);
                }
                Effect::SetReliable(set) => {
                    self.record(Event::Reliable { p: from, set: set.clone() });
                    self.net.set_reliable(from, set);
                }
                Effect::DeliverApp { from: sender, msg } => {
                    self.record(Event::Deliver { p: from, q: sender, msg });
                }
                Effect::InstallView { view, transitional } => {
                    self.record(Event::GcsView { p: from, view, transitional });
                    let released = self.clients.get_mut(&from).expect("known proc").on_view();
                    for m in released {
                        self.record(Event::Send { p: from, msg: m.clone() });
                        let rec = rec_of(&mut self.obs, &mut self.noop);
                        let more = self
                            .eps
                            .get_mut(&from)
                            .expect("known proc")
                            .handle_rec(Input::AppSend(m), rec);
                        self.route(from, more);
                    }
                }
                Effect::Block => {
                    self.record(Event::Block { p: from });
                    let client = self.clients.get_mut(&from).expect("known proc");
                    client.on_block();
                    if client.ack_block() {
                        self.record(Event::BlockOk { p: from });
                        let rec = rec_of(&mut self.obs, &mut self.noop);
                        let more = self
                            .eps
                            .get_mut(&from)
                            .expect("known proc")
                            .handle_rec(Input::BlockOk, rec);
                        self.route(from, more);
                    }
                }
                Effect::Reconciled => {
                    // The end-point already reset itself (§8, audit
                    // path); mirror the reset as an observed crash +
                    // instant recover so the trace, network, membership
                    // oracle and client stay consistent with it. No
                    // Crash/Recover inputs are fed — the end-point is
                    // already in its initial state.
                    self.record(Event::Crash { p: from });
                    self.net.crash(from);
                    self.record(Event::Recover { p: from });
                    self.net.recover(from);
                    self.oracle.recover(from);
                    self.clients.insert(from, BlockingClient::new());
                }
            }
        }
    }

    /// Runs the end-of-trace checks and returns every violation found
    /// over the whole run.
    pub fn finish(&mut self) -> Vec<Violation> {
        self.checks.finish();
        let violations = self.checks.violations().to_vec();
        if let Some(r) = &mut self.obs {
            // Violations are global properties of the trace; they are
            // journalled under the reserved marker id `p0`.
            for _ in &violations {
                r.event(ProcessId::new(0), None, ObsEvent::InvariantViolated);
            }
        }
        violations
    }

    /// Adds an extra checker (e.g. a liveness expectation). The trace
    /// recorded so far is replayed into it first, so the checker judges
    /// the whole run no matter when it attaches — in particular, a
    /// `LivenessSpec` added right after `reconfigure` still sees the
    /// membership notifications (and any synchronous view installs) that
    /// happened inside that call.
    pub fn add_checker(&mut self, checker: impl vsgm_ioa::Checker + 'static) {
        self.checks.add_with_history(checker, self.trace.entries());
    }

    /// Panics with a readable report if any spec was violated.
    ///
    /// # Panics
    ///
    /// Panics on violations. Intended for tests.
    #[track_caller]
    pub fn assert_clean(&mut self) {
        self.checks.finish();
        self.checks.assert_clean();
    }
}

/// Builds the `ProcSet` `{p1..pn}`.
pub fn procs(n: u64) -> ProcSet {
    (1..=n).map(ProcessId::new).collect()
}

/// Builds a `ProcSet` from explicit indices.
pub fn procs_of(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| ProcessId::new(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_core::Stack;
    use vsgm_spec::LivenessSpec;

    #[test]
    fn three_nodes_clean_run() {
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        let view = sim.reconfigure(&procs(3));
        sim.add_checker(LivenessSpec::new(view));
        for i in 1..=3 {
            sim.send(ProcessId::new(i), AppMsg::from(format!("m{i}").as_str()));
        }
        sim.run_to_quiescence();
        sim.assert_clean();
        // Everyone delivered everyone's message: 9 deliveries.
        let counts = sim.trace().kind_counts();
        assert_eq!(counts["deliver"], 9, "{counts:?}");
        assert_eq!(counts["view"], 3);
    }

    #[test]
    fn corruption_injection_is_journalled_and_marked() {
        let cfg = Config { audit: true, ..Config::default() };
        let mut sim = Sim::new_paper(2, cfg, SimOptions::default());
        sim.enable_obs();
        sim.reconfigure(&procs(2));
        sim.run_to_quiescence();
        assert!(sim.corruption_mark().is_none());
        sim.corrupt(ProcessId::new(2), vsgm_core::CorruptionKind::ScrambleMembership);
        let rec = sim.obs().expect("obs enabled");
        assert_eq!(rec.journal().count(ObsEvent::CorruptionInjected), 1);
        assert_eq!(rec.registry().counter(obs_names::CHAOS_CORRUPTIONS), 1);
        let (at, when) = sim.corruption_mark().expect("mark set at injection");
        assert_eq!(at, sim.trace().entries().len());
        assert_eq!(Some(when), sim.last_corruption());
    }

    #[test]
    fn shuffled_polling_is_deterministic_and_clean() {
        let run = |seed| {
            let mut sim = Sim::new_paper(
                4,
                Config::default(),
                SimOptions { seed, shuffle_polling: true, ..SimOptions::default() },
            );
            sim.reconfigure(&procs(4));
            for i in 1..=4 {
                sim.send(ProcessId::new(i), AppMsg::from("x"));
            }
            sim.run_to_quiescence();
            sim.reconfigure(&procs_of(&[1, 2]));
            sim.run_to_quiescence();
            sim.assert_clean();
            sim.trace().to_json_lines()
        };
        // Deterministic per seed even with randomized polling order.
        assert_eq!(run(5), run(5));
        // And the shuffled order genuinely differs from the canonical one.
        let mut canonical = Sim::new_paper(
            4,
            Config::default(),
            SimOptions { seed: 5, shuffle_polling: false, ..SimOptions::default() },
        );
        canonical.reconfigure(&procs(4));
        for i in 1..=4 {
            canonical.send(ProcessId::new(i), AppMsg::from("x"));
        }
        canonical.run_to_quiescence();
        canonical.reconfigure(&procs_of(&[1, 2]));
        canonical.run_to_quiescence();
        canonical.assert_clean();
        assert_ne!(
            run(5),
            canonical.trace().to_json_lines(),
            "shuffling should explore a different interleaving"
        );
    }

    #[test]
    fn batched_run_quiesces_past_linger_and_stays_clean() {
        // One held batch per process: nothing is due on the network when
        // the sends land, so quiescence must jump the clock to the linger
        // deadline to release them.
        let cfg = Config { batch: vsgm_core::BatchConfig::small(), ..Config::default() };
        let mut sim = Sim::new_paper(3, cfg, SimOptions::default());
        let v = sim.reconfigure(&procs(3));
        sim.add_checker(LivenessSpec::new(v));
        for i in 1..=3 {
            sim.send(ProcessId::new(i), AppMsg::from("batched"));
        }
        sim.run_to_quiescence();
        sim.assert_clean();
        let counts = sim.trace().kind_counts();
        assert_eq!(counts["deliver"], 9, "{counts:?}");
    }

    #[test]
    fn batched_view_change_is_clean_with_held_batch() {
        // A huge linger would hold the batch forever; the view change
        // must force the flush before the cut (and the checkers agree).
        let cfg = Config {
            batch: vsgm_core::BatchConfig { max_msgs: 64, max_bytes: 1 << 20, linger_us: u64::MAX },
            ..Config::default()
        };
        let mut sim = Sim::new_paper(3, cfg, SimOptions::default());
        sim.reconfigure(&procs(3));
        sim.send(ProcessId::new(1), AppMsg::from("held"));
        sim.send(ProcessId::new(1), AppMsg::from("back"));
        let v = sim.reconfigure(&procs(3));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
        let counts = sim.trace().kind_counts();
        assert_eq!(counts["deliver"], 6, "{counts:?}");
    }

    #[test]
    fn trace_save_and_reload() {
        let mut sim = Sim::new_paper(2, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(2));
        sim.run_to_quiescence();
        let dir = std::env::temp_dir().join("vsgm_trace_test.jsonl");
        sim.save_trace(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        let back = vsgm_ioa::Trace::from_json_lines(&text).unwrap();
        assert_eq!(back.len(), sim.trace().len());
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Sim::new_paper(
                4,
                Config::default(),
                SimOptions { seed, ..SimOptions::default() },
            );
            sim.reconfigure(&procs(4));
            for i in 1..=4 {
                sim.send(ProcessId::new(i), AppMsg::from("x"));
            }
            sim.run_to_quiescence();
            sim.trace().to_json_lines()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn partition_and_merge_clean() {
        let mut sim = Sim::new_paper(4, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(4));
        sim.send(ProcessId::new(1), AppMsg::from("before"));
        sim.run_to_quiescence();
        // Partition {1,2} | {3,4}: two concurrent views.
        sim.partition(&[
            vec![ProcessId::new(1), ProcessId::new(2)],
            vec![ProcessId::new(3), ProcessId::new(4)],
        ]);
        sim.start_change_for(&procs_of(&[1, 2]), &procs_of(&[1, 2]));
        sim.form_view(&procs_of(&[1, 2]));
        sim.start_change_for(&procs_of(&[3, 4]), &procs_of(&[3, 4]));
        sim.form_view(&procs_of(&[3, 4]));
        sim.run_to_quiescence();
        sim.send(ProcessId::new(1), AppMsg::from("side A"));
        sim.send(ProcessId::new(3), AppMsg::from("side B"));
        sim.run_to_quiescence();
        // Merge back.
        sim.heal();
        let merged = sim.reconfigure(&procs(4));
        sim.add_checker(LivenessSpec::new(merged));
        sim.run_to_quiescence();
        sim.assert_clean();
    }

    #[test]
    fn crash_and_recovery_clean() {
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        sim.send(ProcessId::new(2), AppMsg::from("pre-crash"));
        sim.run_to_quiescence();
        sim.crash(ProcessId::new(3));
        sim.reconfigure(&procs_of(&[1, 2]));
        sim.send(ProcessId::new(1), AppMsg::from("while down"));
        sim.run_to_quiescence();
        sim.recover(ProcessId::new(3));
        sim.reconfigure(&procs(3));
        sim.run_to_quiescence();
        sim.assert_clean();
        // p3 is back in the final view.
        assert!(sim.endpoint(ProcessId::new(3)).current_view().contains(ProcessId::new(3)));
        assert_eq!(sim.endpoint(ProcessId::new(3)).current_view().len(), 3);
    }

    #[test]
    fn cascaded_changes_deliver_single_view() {
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        let before = sim.trace().kind_counts()["view"];
        // Three cascaded start_changes, then one view.
        sim.start_change(&procs(3));
        sim.start_change(&procs(3));
        sim.start_change(&procs(3));
        sim.form_view(&procs(3));
        sim.run_to_quiescence();
        sim.assert_clean();
        let after = sim.trace().kind_counts()["view"];
        assert_eq!(after - before, 3, "exactly one app view per process");
    }

    #[test]
    fn baseline_sim_clean_on_simple_changes() {
        let mut sim = Sim::new_baseline(3, SimOptions::default());
        sim.reconfigure(&procs(3));
        for i in 1..=3 {
            sim.send(ProcessId::new(i), AppMsg::from("b"));
        }
        sim.run_to_quiescence();
        sim.reconfigure(&procs_of(&[1, 2]));
        sim.run_to_quiescence();
        sim.assert_clean();
    }

    #[test]
    fn wv_stack_runs_clean_without_vs_checkers() {
        // The WV-only ablation satisfies WV_RFIFO/CLIENT specs but not the
        // VS/TS/SELF layers; run it with checking off and assert basic
        // delivery happens.
        let cfg = Config { stack: Stack::Wv, ..Config::default() };
        let mut sim = Sim::new_paper(
            2,
            cfg,
            SimOptions { check: false, ..SimOptions::default() },
        );
        sim.reconfigure(&procs(2));
        sim.send(ProcessId::new(1), AppMsg::from("wv"));
        sim.run_to_quiescence();
        assert_eq!(sim.trace().kind_counts()["deliver"], 2);
    }

    #[test]
    fn obs_journal_traces_one_sync_per_endpoint_per_view_change() {
        // The acceptance scenario: three processes, several view changes,
        // observability on. The journal must show exactly one sync message
        // per endpoint per (uncascaded) view change, and a finite
        // start_change → view-install latency span for every member of
        // the final view.
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.enable_obs();
        sim.reconfigure(&procs(3));
        for i in 1..=3 {
            sim.send(ProcessId::new(i), AppMsg::from("payload"));
        }
        sim.run_to_quiescence();
        sim.reconfigure(&procs_of(&[1, 2]));
        sim.run_to_quiescence();
        let final_view = sim.reconfigure(&procs(3));
        sim.run_to_quiescence();
        sim.assert_clean();

        let obs = sim.take_obs().expect("obs enabled");
        let journal = obs.journal();
        let spans = journal.spans();
        let completed: Vec<_> = spans.iter().filter(|s| s.complete()).collect();
        assert!(!completed.is_empty(), "no completed view-change spans");
        for s in &completed {
            assert_eq!(
                s.syncs_sent, 1,
                "exactly one sync per endpoint per view change: {s:?}"
            );
            assert!(s.latency().is_some(), "finite sync-round latency: {s:?}");
        }
        // Every member of the final view closed its most recent span.
        for m in final_view.members() {
            let last = spans
                .iter()
                .filter(|s| s.pid == *m)
                .max_by_key(|s| s.start_step)
                .expect("member has a view-change span");
            assert!(last.complete(), "final view installed at {m}: {last:?}");
            assert!(last.latency().is_some());
        }
        // The registry agrees with the journal on installs, and the sim's
        // network stats view can be rebuilt from the registry.
        let reg = obs.registry();
        assert_eq!(
            reg.counter(vsgm_obs::names::EP_VIEWS_INSTALLED),
            journal.count(vsgm_obs::ObsEvent::ViewInstalled) as u64
        );
        let lat = reg.histogram(vsgm_obs::names::SYNC_ROUND_LATENCY_US).expect("span latencies");
        assert!(lat.count() > 0);
        let via_reg = vsgm_net::NetStats::from_registry(reg);
        assert_eq!(via_reg.delivered, sim.net().stats().delivered);
        assert!(via_reg.count("sync_msg") + via_reg.count("sync_agg") > 0);
    }

    #[test]
    fn obs_disabled_records_nothing_and_changes_nothing() {
        // The same run with and without the recorder produces the same
        // trace (the no-op path is behaviourally inert).
        let run = |observe: bool| {
            let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
            if observe {
                sim.enable_obs();
            }
            sim.reconfigure(&procs(3));
            sim.send(ProcessId::new(1), AppMsg::from("x"));
            sim.run_to_quiescence();
            assert_eq!(sim.obs().is_some(), observe);
            sim.trace().to_json_lines()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn run_for_advances_time_without_draining_the_network() {
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        sim.run_to_quiescence();
        // Large jitter spreads arrivals out, so a 1µs window leaves the
        // sent message in flight.
        sim.set_fault_plan(FaultPlan { reorder_ms: 50, ..FaultPlan::default() });
        let before = sim.now();
        sim.send(ProcessId::new(1), AppMsg::from("slow"));
        sim.run_for(SimTime::from_micros(1));
        assert_eq!(sim.now(), before + SimTime::from_micros(1));
        assert!(sim.net().next_arrival().is_some(), "message should still be in flight");
        sim.run_to_quiescence();
        sim.assert_clean();
        assert!(sim.fault_stats().delayed > 0);
    }

    #[test]
    fn crash_during_sync_kills_a_reconfiguring_endpoint() {
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        sim.send(ProcessId::new(2), AppMsg::from("pre"));
        sim.run_to_quiescence();
        sim.start_change(&procs(3));
        assert!(sim.endpoint(ProcessId::new(3)).reconfiguring());
        sim.crash_during_sync(ProcessId::new(3));
        assert!(sim.endpoint(ProcessId::new(3)).is_crashed());
        // The survivors complete a shrunken view, then p3 rejoins.
        sim.form_view(&procs_of(&[1, 2]));
        sim.run_to_quiescence();
        sim.recover(ProcessId::new(3));
        let v = sim.reconfigure(&procs(3));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
    }

    #[test]
    fn crash_and_recover_are_idempotent() {
        let mut sim = Sim::new_paper(2, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(2));
        sim.run_to_quiescence();
        // Minimized chaos scenarios can lose the pairing step; double
        // crash / stray recover must be harmless no-ops.
        sim.recover(ProcessId::new(2));
        sim.crash(ProcessId::new(2));
        sim.crash(ProcessId::new(2));
        sim.recover(ProcessId::new(2));
        sim.recover(ProcessId::new(2));
        let v = sim.reconfigure(&procs(2));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
        assert_eq!(sim.trace().kind_counts()["crash"], 1);
        assert_eq!(sim.trace().kind_counts()["recover"], 1);
    }

    #[test]
    fn suppressed_sync_stalls_the_view_change_and_liveness_catches_it() {
        // The deliberate protocol bug for oracle validation: swallow one
        // sync send while application messages are still in flight, so
        // the agreed cut genuinely needs every member's sync. The round
        // can never complete and the view is not installed — a pure
        // liveness failure only the Property 4.2 checker can see.
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        sim.send(ProcessId::new(1), AppMsg::from("in flight"));
        sim.send(ProcessId::new(2), AppMsg::from("also in flight"));
        sim.suppress_sync(0);
        let v = sim.reconfigure(&procs(3));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        assert!(sim.suppressed_a_sync());
        let violations = sim.finish();
        assert!(
            violations.iter().any(|viol| viol.checker.contains("LIVENESS")),
            "expected a liveness violation, got {violations:?}"
        );
    }

    #[test]
    fn fault_plan_runs_are_deterministic_and_clean() {
        let run = || {
            let mut sim = Sim::new_paper(
                4,
                Config::default(),
                SimOptions { seed: 9, shuffle_polling: true, ..SimOptions::default() },
            );
            sim.set_fault_plan(FaultPlan {
                drop: 0.3,
                reorder_ms: 8,
                burst: 0.05,
                ..FaultPlan::default()
            });
            sim.reconfigure(&procs(4));
            for i in 1..=4 {
                sim.send(ProcessId::new(i), AppMsg::from("c"));
            }
            sim.run_to_quiescence();
            sim.reconfigure(&procs_of(&[1, 2, 3]));
            sim.run_to_quiescence();
            sim.assert_clean();
            sim.trace().to_json_lines()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forwarding_recovers_messages_for_partitioned_receiver() {
        // p3 sends; p2 is partitioned off before delivery; p3 crashes; the
        // surviving {1,2} still agree thanks to forwarding from p1.
        let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
        sim.reconfigure(&procs(3));
        // Cut p2 off, then have p3 send: p1 receives, p2 does not (its
        // copies are parked on the reliable channel).
        sim.partition(&[vec![ProcessId::new(1), ProcessId::new(3)], vec![ProcessId::new(2)]]);
        sim.send(ProcessId::new(3), AppMsg::from("rescue me"));
        sim.run_to_quiescence();
        // p3 crashes: its parked output to p2 is dropped forever.
        sim.crash(ProcessId::new(3));
        sim.heal();
        // {1,2} reconfigure; p1 committed to p3's message, p2 lacks it.
        let v = sim.reconfigure(&procs_of(&[1, 2]));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
        let fwd = sim.net().stats().count("fwd_msg");
        assert!(fwd >= 1, "expected a forwarded copy, stats: {:?}", sim.net().stats());
    }
}
