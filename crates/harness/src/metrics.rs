//! Trace digests for experiments.

use std::collections::BTreeMap;
use vsgm_ioa::{SimTime, Trace};
use vsgm_types::{Event, ProcessId, View};

/// Aggregate numbers extracted from a trace.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Application sends.
    pub sends: u64,
    /// Application deliveries.
    pub delivers: u64,
    /// View installations (GCS → application), total across processes.
    pub views: u64,
    /// Block requests issued.
    pub blocks: u64,
    /// Per-process count of installed views.
    pub views_per_proc: BTreeMap<ProcessId, u64>,
}

impl Summary {
    /// Digests a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = Summary::default();
        for e in trace.entries() {
            match &e.event {
                Event::Send { .. } => s.sends += 1,
                Event::Deliver { .. } => s.delivers += 1,
                Event::GcsView { p, .. } => {
                    s.views += 1;
                    *s.views_per_proc.entry(*p).or_insert(0) += 1;
                }
                Event::Block { .. } => s.blocks += 1,
                _ => {}
            }
        }
        s
    }
}

/// The simulated time at which every member of `view` had installed it
/// (`None` if someone never did), measured from trace step `from_step`.
pub fn install_completion(trace: &Trace, view: &View, from_step: u64) -> Option<SimTime> {
    let mut latest: Option<SimTime> = None;
    let mut installed = 0usize;
    for e in trace.entries().iter().filter(|e| e.step >= from_step) {
        if let Event::GcsView { view: v, .. } = &e.event {
            if v == view {
                installed += 1;
                latest = Some(latest.map_or(e.time, |t: SimTime| t.max(e.time)));
            }
        }
    }
    (installed == view.len()).then(|| latest.expect("installed > 0"))
}

/// The step of the first event matching `pred` at or after `from_step`.
pub fn first_step_where(
    trace: &Trace,
    from_step: u64,
    mut pred: impl FnMut(&Event) -> bool,
) -> Option<u64> {
    trace
        .entries()
        .iter()
        .filter(|e| e.step >= from_step)
        .find(|e| pred(&e.event))
        .map(|e| e.step)
}

/// Counts application deliveries in the step window `[lo, hi)`.
pub fn deliveries_in_window(trace: &Trace, lo: u64, hi: u64) -> u64 {
    trace
        .entries()
        .iter()
        .filter(|e| e.step >= lo && e.step < hi && matches!(e.event, Event::Deliver { .. }))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{AppMsg, ProcSet};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> (Trace, View) {
        let mut t = Trace::new();
        let v = View::initial(p(1));
        t.record(SimTime::from_micros(1), Event::Send { p: p(1), msg: AppMsg::from("a") });
        t.record(
            SimTime::from_micros(2),
            Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("a") },
        );
        t.record(SimTime::from_micros(3), Event::Block { p: p(1) });
        t.record(
            SimTime::from_micros(9),
            Event::GcsView { p: p(1), view: v.clone(), transitional: ProcSet::new() },
        );
        (t, v)
    }

    #[test]
    fn summary_counts() {
        let (t, _) = sample();
        let s = Summary::from_trace(&t);
        assert_eq!(s.sends, 1);
        assert_eq!(s.delivers, 1);
        assert_eq!(s.views, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.views_per_proc[&p(1)], 1);
    }

    #[test]
    fn install_completion_time() {
        let (t, v) = sample();
        assert_eq!(install_completion(&t, &v, 0), Some(SimTime::from_micros(9)));
        // From a step after the install: nobody installs ⇒ None.
        assert_eq!(install_completion(&t, &v, 4), None);
    }

    #[test]
    fn window_counting() {
        let (t, _) = sample();
        assert_eq!(deliveries_in_window(&t, 0, 4), 1);
        assert_eq!(deliveries_in_window(&t, 2, 4), 0);
        assert_eq!(
            first_step_where(&t, 0, |e| matches!(e, Event::Block { .. })),
            Some(2)
        );
    }
}
