//! Trace digests for experiments.

use std::collections::BTreeMap;
use vsgm_ioa::{SimTime, Trace};
use vsgm_types::{Event, ProcessId, View};

/// Aggregate numbers extracted from a trace or an observability journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Application sends.
    pub sends: u64,
    /// Application deliveries.
    pub delivers: u64,
    /// View installations (GCS → application), total across processes.
    pub views: u64,
    /// Block requests issued.
    pub blocks: u64,
    /// Block acknowledgements from the application.
    pub block_oks: u64,
    /// Synchronization messages sent (`sync_msg` plus leader-relayed
    /// `sync_agg`), counted once per multicast.
    pub syncs: u64,
    /// Forwarded message copies sent, counted once per multicast.
    pub forwards: u64,
    /// Per-process count of installed views.
    pub views_per_proc: BTreeMap<ProcessId, u64>,
}

impl Summary {
    /// Digests a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = Summary::default();
        for e in trace.entries() {
            match &e.event {
                Event::Send { .. } => s.sends += 1,
                Event::Deliver { .. } => s.delivers += 1,
                Event::GcsView { p, .. } => {
                    s.views += 1;
                    *s.views_per_proc.entry(*p).or_insert(0) += 1;
                }
                Event::Block { .. } => s.blocks += 1,
                Event::BlockOk { .. } => s.block_oks += 1,
                Event::NetSend { msg, .. } => match msg.tag() {
                    "sync_msg" | "sync_agg" => s.syncs += 1,
                    "fwd_msg" => s.forwards += 1,
                    _ => {}
                },
                _ => {}
            }
        }
        s
    }

    /// Digests an observability journal (see [`vsgm_obs::Journal`]).
    ///
    /// Counts the endpoint-side twin of each trace event: `MsgSent` /
    /// `MsgDelivered` for application traffic, `ViewInstalled` for views,
    /// `SyncSent` / `ForwardSent` for protocol traffic. On a run where
    /// both the trace and the journal were recorded the two digests agree
    /// (up to leader-relayed `sync_agg` multicasts, which the trace
    /// attributes to the relaying leader).
    pub fn from_journal(journal: &vsgm_obs::Journal) -> Self {
        use vsgm_obs::ObsEvent;
        let mut s = Summary::default();
        for r in journal.records() {
            match r.event {
                ObsEvent::MsgSent => s.sends += 1,
                ObsEvent::MsgDelivered => s.delivers += 1,
                ObsEvent::ViewInstalled => {
                    s.views += 1;
                    *s.views_per_proc.entry(r.pid).or_insert(0) += 1;
                }
                ObsEvent::BlockRequested => s.blocks += 1,
                ObsEvent::BlockOk => s.block_oks += 1,
                ObsEvent::SyncSent => s.syncs += 1,
                ObsEvent::ForwardSent => s.forwards += 1,
                _ => {}
            }
        }
        s
    }
}

/// The simulated time at which every member of `view` had installed it
/// (`None` if someone never did), measured from trace step `from_step`.
pub fn install_completion(trace: &Trace, view: &View, from_step: u64) -> Option<SimTime> {
    let mut latest: Option<SimTime> = None;
    let mut installed = 0usize;
    for e in trace.entries().iter().filter(|e| e.step >= from_step) {
        if let Event::GcsView { view: v, .. } = &e.event {
            if v == view {
                installed += 1;
                latest = Some(latest.map_or(e.time, |t: SimTime| t.max(e.time)));
            }
        }
    }
    (installed == view.len()).then(|| latest.expect("installed > 0"))
}

/// The step of the first event matching `pred` at or after `from_step`.
pub fn first_step_where(
    trace: &Trace,
    from_step: u64,
    mut pred: impl FnMut(&Event) -> bool,
) -> Option<u64> {
    trace
        .entries()
        .iter()
        .filter(|e| e.step >= from_step)
        .find(|e| pred(&e.event))
        .map(|e| e.step)
}

/// Counts application deliveries in the step window `[lo, hi)`.
pub fn deliveries_in_window(trace: &Trace, lo: u64, hi: u64) -> u64 {
    trace
        .entries()
        .iter()
        .filter(|e| e.step >= lo && e.step < hi && matches!(e.event, Event::Deliver { .. }))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{AppMsg, ProcSet};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> (Trace, View) {
        let mut t = Trace::new();
        let v = View::initial(p(1));
        t.record(SimTime::from_micros(1), Event::Send { p: p(1), msg: AppMsg::from("a") });
        t.record(
            SimTime::from_micros(2),
            Event::Deliver { p: p(1), q: p(1), msg: AppMsg::from("a") },
        );
        t.record(SimTime::from_micros(3), Event::Block { p: p(1) });
        t.record(SimTime::from_micros(4), Event::BlockOk { p: p(1) });
        t.record(
            SimTime::from_micros(5),
            Event::NetSend {
                p: p(1),
                set: ProcSet::new(),
                msg: vsgm_types::NetMsg::Sync(vsgm_types::SyncPayload {
                    cid: vsgm_types::StartChangeId::ZERO,
                    view: Some(v.clone()),
                    cut: vsgm_types::Cut::new(),
                }),
            },
        );
        t.record(
            SimTime::from_micros(6),
            Event::NetSend {
                p: p(1),
                set: ProcSet::new(),
                msg: vsgm_types::NetMsg::Fwd(vsgm_types::FwdPayload {
                    origin: p(1),
                    view: v.clone(),
                    index: 0,
                    msg: AppMsg::from("a"),
                }),
            },
        );
        t.record(
            SimTime::from_micros(9),
            Event::GcsView { p: p(1), view: v.clone(), transitional: ProcSet::new() },
        );
        (t, v)
    }

    #[test]
    fn summary_counts() {
        let (t, _) = sample();
        let s = Summary::from_trace(&t);
        assert_eq!(s.sends, 1);
        assert_eq!(s.delivers, 1);
        assert_eq!(s.views, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.block_oks, 1);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.forwards, 1);
        assert_eq!(s.views_per_proc[&p(1)], 1);
    }

    #[test]
    fn install_completion_none_when_a_member_never_installs() {
        // A two-member view of which only p1 records an install: the
        // completion time is undefined.
        let v2 = View::new(
            vsgm_types::ViewId::new(1, 1),
            [p(1), p(2)],
            [
                (p(1), vsgm_types::StartChangeId::new(1)),
                (p(2), vsgm_types::StartChangeId::new(1)),
            ],
        );
        let mut t = Trace::new();
        t.record(
            SimTime::from_micros(4),
            Event::GcsView { p: p(1), view: v2.clone(), transitional: ProcSet::new() },
        );
        assert_eq!(install_completion(&t, &v2, 0), None);
        // Once p2 installs too, completion is the later of the two times.
        t.record(
            SimTime::from_micros(7),
            Event::GcsView { p: p(2), view: v2.clone(), transitional: ProcSet::new() },
        );
        assert_eq!(install_completion(&t, &v2, 0), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn journal_and_trace_digests_agree_on_a_real_run() {
        use crate::sim::{procs, procs_of, Sim, SimOptions};
        let mut sim =
            Sim::new_paper(3, vsgm_core::Config::default(), SimOptions::default());
        sim.enable_obs();
        sim.reconfigure(&procs(3));
        sim.send(p(1), AppMsg::from("m1"));
        sim.send(p(2), AppMsg::from("m2"));
        sim.run_to_quiescence();
        sim.reconfigure(&procs_of(&[1, 2]));
        sim.run_to_quiescence();
        let obs = sim.take_obs().expect("obs on");
        let a = Summary::from_trace(sim.trace());
        let b = Summary::from_journal(obs.journal());
        assert_eq!(a, b);
        assert!(b.syncs > 0, "view changes must sync: {b:?}");
        assert!(b.views > 0);
    }

    #[test]
    fn install_completion_time() {
        let (t, v) = sample();
        assert_eq!(install_completion(&t, &v, 0), Some(SimTime::from_micros(9)));
        // From a step after the install: nobody installs ⇒ None.
        assert_eq!(install_completion(&t, &v, 7), None);
    }

    #[test]
    fn window_counting() {
        let (t, _) = sample();
        assert_eq!(deliveries_in_window(&t, 0, 4), 1);
        assert_eq!(deliveries_in_window(&t, 2, 4), 0);
        assert_eq!(
            first_step_where(&t, 0, |e| matches!(e, Event::Block { .. })),
            Some(2)
        );
    }
}
