//! The experiment suite: one function per row of the per-experiment index
//! in `DESIGN.md` §5.
//!
//! The paper has no empirical evaluation section (it is a
//! specification/algorithms/proofs paper), so these experiments quantify
//! its *prose claims* — one synchronization round instead of two, no
//! obsolete views, delivery during reconfiguration, forwarding copy
//! minimization, slim sync messages, client-server scalability, two-tier
//! aggregation — each as a small parameter sweep producing a printable
//! table. `cargo run -p vsgm-harness --bin experiments` regenerates all
//! of them; the Criterion benches in `vsgm-bench` time the same kernels.

use crate::metrics::{self, Summary};
use crate::server_sim::ServerSim;
use crate::sim::{procs, Sim, SimOptions};
use vsgm_core::{Config, ForwardStrategyKind, GroupEndpoint, Stack};
use vsgm_ioa::SimTime;
use vsgm_net::LatencyModel;
use vsgm_order::TotalOrder;
use vsgm_types::{AppMsg, Event, ProcSet, ProcessId};

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: &'static str,
    /// What the experiment demonstrates.
    pub title: String,
    /// Column names.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("## {} — {}\n", self.id, self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn fixed_opts(seed: u64) -> SimOptions {
    SimOptions {
        seed,
        latency: LatencyModel::Fixed(SimTime::from_micros(100)),
        check: true,
        shuffle_polling: false,
    }
}

/// One timed, instrumented view change of the paper's algorithm.
/// Returns `(sim-time to completion, sync msgs, total view-change msgs)`.
pub fn paper_view_change(n: usize, cfg: Config, seed: u64) -> (SimTime, u64, u64) {
    let mut sim = Sim::new_paper(n, cfg, fixed_opts(seed));
    sim.reconfigure(&procs(n as u64));
    sim.run_to_quiescence();
    sim.reset_net_stats();
    let t0 = sim.now();
    let mark = sim.trace().len() as u64;
    let view = sim.reconfigure(&procs(n as u64));
    sim.run_to_quiescence();
    sim.assert_clean();
    let done = metrics::install_completion(sim.trace(), &view, mark)
        .expect("view installs in a stable run");
    let stats = sim.net().stats();
    let sync = stats.count("sync_msg") + stats.count("sync_agg");
    let total = sync + stats.count("view_msg");
    (done.saturating_sub(t0), sync, total)
}

/// One timed, instrumented view change of the two-round baseline.
pub fn baseline_view_change(n: usize, seed: u64) -> (SimTime, u64, u64) {
    let mut sim = Sim::new_baseline(n, fixed_opts(seed));
    sim.reconfigure(&procs(n as u64));
    sim.run_to_quiescence();
    sim.reset_net_stats();
    let t0 = sim.now();
    let mark = sim.trace().len() as u64;
    let view = sim.reconfigure(&procs(n as u64));
    sim.run_to_quiescence();
    sim.assert_clean();
    let done = metrics::install_completion(sim.trace(), &view, mark)
        .expect("view installs in a stable run");
    let stats = sim.net().stats();
    let proposals = stats.count("bl_propose");
    let syncs = stats.count("bl_sync");
    (done.saturating_sub(t0), proposals + syncs, proposals + syncs + stats.count("view_msg"))
}

/// E1/E2 — view-change latency and message rounds: one round (parallel
/// with membership) vs the two-round pre-agreement baseline.
pub fn e1_view_change(sizes: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &n in sizes {
        let (t_p, sync_p, _) = paper_view_change(n, Config::default(), 42);
        let (t_b, sync_b, _) = baseline_view_change(n, 42);
        rows.push(vec![
            n.to_string(),
            "1".into(),
            format!("{t_p}"),
            sync_p.to_string(),
            "2".into(),
            format!("{t_b}"),
            sync_b.to_string(),
            format!("{:.2}x", t_b.as_micros() as f64 / t_p.as_micros().max(1) as f64),
        ]);
    }
    Table {
        id: "E1",
        title: "view-change: one sync round (paper) vs two rounds (pre-agreement baseline), \
                fixed 100us latency"
            .into(),
        headers: [
            "n",
            "rounds(paper)",
            "time(paper)",
            "sync msgs(paper)",
            "rounds(base)",
            "time(base)",
            "sync msgs(base)",
            "speedup",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E3 — cascaded membership changes: views delivered to the application
/// per process, cascading interface (paper) vs restart-style membership.
pub fn e3_obsolete_views(cascades: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &k in cascades {
        // Paper algorithm + cascading membership: k start_changes, ONE view.
        let mut sim = Sim::new_paper(4, Config::default(), fixed_opts(7));
        sim.reconfigure(&procs(4));
        sim.run_to_quiescence();
        let mark = sim.trace().len() as u64;
        for _ in 0..k {
            sim.start_change(&procs(4));
            sim.run_to_quiescence();
        }
        sim.form_view(&procs(4));
        sim.run_to_quiescence();
        sim.assert_clean();
        let paper_views = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| e.step >= mark && matches!(e.event, Event::GcsView { .. }))
            .count() as u64
            / 4;

        // Restart-style membership (what pre-cascade algorithms force):
        // every intermediate attempt runs to termination and delivers.
        let mut base = Sim::new_baseline(4, fixed_opts(7));
        base.reconfigure(&procs(4));
        base.run_to_quiescence();
        let mark = base.trace().len() as u64;
        for _ in 0..k {
            base.reconfigure(&procs(4));
            base.run_to_quiescence();
        }
        base.assert_clean();
        let base_views = base
            .trace()
            .entries()
            .iter()
            .filter(|e| e.step >= mark && matches!(e.event, Event::GcsView { .. }))
            .count() as u64
            / 4;
        rows.push(vec![k.to_string(), paper_views.to_string(), base_views.to_string()]);
    }
    Table {
        id: "E3",
        title: "membership changes its mind k times: app-visible views per process".into(),
        headers: ["k", "views (paper, cascading)", "views (restart-style)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E4 — application progress across a reconfiguration: duration of the
/// view change and deliveries landing inside it, under a message burst in
/// flight when the change starts.
pub fn e4_reconfig_delivery() -> Table {
    fn run<E: GroupEndpoint>(mut sim: Sim<E>) -> (SimTime, u64) {
        let n = 8u64;
        sim.reconfigure(&procs(n));
        sim.run_to_quiescence();
        // A burst is in flight when the change starts.
        for i in 1..=n {
            for k in 0..3 {
                sim.send(ProcessId::new(i), AppMsg::from(format!("m{i}.{k}").as_str()));
            }
        }
        // One network step: messages received by some, not delivered by all.
        sim.deliver_next();
        let t0 = sim.now();
        let mark = sim.trace().len() as u64;
        sim.start_change(&procs(n));
        let view = sim.form_view(&procs(n));
        sim.run_to_quiescence();
        sim.assert_clean();
        let done = metrics::install_completion(sim.trace(), &view, mark).expect("stable");
        let install_step = metrics::first_step_where(sim.trace(), mark, |e| {
            matches!(e, Event::GcsView { .. })
        })
        .expect("installed");
        let last_install = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, Event::GcsView { .. }) && e.step >= install_step)
            .map(|e| e.step)
            .max()
            .unwrap();
        let during = metrics::deliveries_in_window(sim.trace(), mark, last_install);
        (done.saturating_sub(t0), during)
    }
    let (t_p, d_p) = run(Sim::new_paper(8, Config::default(), fixed_opts(3)));
    let (t_b, d_b) = run(Sim::new_baseline(8, fixed_opts(3)));
    Table {
        id: "E4",
        title: "reconfiguration with a burst in flight (n=8): window length and deliveries \
                inside it"
            .into(),
        headers: ["algorithm", "reconfig duration", "deliveries during reconfig"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: vec![
            vec!["paper (1-round)".into(), format!("{t_p}"), d_p.to_string()],
            vec!["baseline (2-round)".into(), format!("{t_b}"), d_b.to_string()],
        ],
    }
}

/// E5 — steady-state multicast throughput over the simulated network.
pub fn e5_throughput(sizes: &[usize], msgs_per_proc: usize) -> Table {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut sim = Sim::new_paper(n, Config::default(), fixed_opts(11));
        sim.reconfigure(&procs(n as u64));
        sim.run_to_quiescence();
        let t0 = sim.now();
        let mark = sim.trace().len() as u64;
        for i in 1..=n as u64 {
            for k in 0..msgs_per_proc {
                sim.send(ProcessId::new(i), AppMsg::from(format!("{i}:{k}").as_str()));
            }
        }
        sim.run_to_quiescence();
        sim.assert_clean();
        let elapsed = sim.now().saturating_sub(t0);
        let delivered = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| e.step >= mark && matches!(e.event, Event::Deliver { .. }))
            .count() as u64;
        let per_sec = delivered as f64 / (elapsed.as_micros().max(1) as f64 / 1e6);
        rows.push(vec![
            n.to_string(),
            delivered.to_string(),
            format!("{elapsed}"),
            format!("{per_sec:.0}"),
        ]);
    }
    Table {
        id: "E5",
        title: format!(
            "steady-state multicast: {msgs_per_proc} msgs/process, deliveries per simulated \
             second"
        ),
        headers: ["n", "deliveries", "sim time", "deliveries/sim-sec"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E6 — forwarding strategies: copies of each missing message sent,
/// eager vs min-copy, when a sender crashes after partially disseminating.
pub fn e6_forwarding(sizes: &[usize]) -> Table {
    fn run(n: u64, strategy: ForwardStrategyKind) -> u64 {
        let cfg = Config { forward: strategy, ..Config::default() };
        let mut sim = Sim::new_paper(n as usize, cfg, fixed_opts(5));
        sim.reconfigure(&procs(n));
        sim.run_to_quiescence();
        // Partition: sender p_n with the lower half; upper half (minus the
        // sender) is cut off and misses the burst.
        let lower: Vec<ProcessId> =
            (1..=n / 2).map(ProcessId::new).chain([ProcessId::new(n)]).collect();
        let upper: Vec<ProcessId> = (n / 2 + 1..n).map(ProcessId::new).collect();
        sim.partition(&[lower, upper]);
        for k in 0..4 {
            sim.send(ProcessId::new(n), AppMsg::from(format!("burst{k}").as_str()));
        }
        sim.run_to_quiescence();
        sim.crash(ProcessId::new(n));
        sim.heal();
        sim.reset_net_stats();
        sim.reconfigure(&(1..n).map(ProcessId::new).collect());
        sim.run_to_quiescence();
        sim.assert_clean();
        sim.net().stats().count("fwd_msg")
    }
    let mut rows = Vec::new();
    for &n in sizes {
        let eager = run(n as u64, ForwardStrategyKind::Eager);
        let min = run(n as u64, ForwardStrategyKind::MinCopy);
        rows.push(vec![n.to_string(), "4".into(), eager.to_string(), min.to_string()]);
    }
    Table {
        id: "E6",
        title: "forwarded copies after a sender crash mid-dissemination (half the group \
                missed 4 messages)"
            .into(),
        headers: ["n", "missing msgs", "fwd copies (eager)", "fwd copies (min-copy)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E7 — the §5.2.4 optimizations: bytes exchanged during a view change
/// that adds joiners, with slim messages (to non-members) and implicit
/// cuts (continuing members' entries elided) layered on.
pub fn e7_sync_overhead(sizes: &[usize]) -> Table {
    fn run(n: u64, slim: bool, implicit: bool) -> u64 {
        let cfg = Config { slim_sync: slim, implicit_cuts: implicit, ..Config::default() };
        let total = n + n / 2; // n members + n/2 joiners
        let mut sim = Sim::new_paper(total as usize, cfg, fixed_opts(9));
        sim.reconfigure(&procs(n)); // bootstrap only the first n
        sim.run_to_quiescence();
        sim.reset_net_stats();
        sim.reconfigure(&procs(total)); // joiners come in
        sim.run_to_quiescence();
        sim.assert_clean();
        sim.net().stats().bytes("sync_msg")
    }
    let mut rows = Vec::new();
    for &n in sizes {
        let full = run(n as u64, false, false);
        let slim = run(n as u64, true, false);
        let both = run(n as u64, true, true);
        rows.push(vec![
            n.to_string(),
            (n / 2).to_string(),
            full.to_string(),
            slim.to_string(),
            both.to_string(),
            format!("{:.0}%", 100.0 * (full - both) as f64 / full.max(1) as f64),
        ]);
    }
    Table {
        id: "E7",
        title: "sync-message bytes for a view change adding n/2 joiners: full vs slim vs \
                slim+implicit cuts (§5.2.4)"
            .into(),
        headers: ["n", "joiners", "full", "slim", "slim+implicit", "saved"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E8 — crash/recovery without stable storage (§8): survivors reconfigure
/// and the recovered processes rejoin, with every safety spec green.
pub fn e8_crash_recovery(failures: &[usize]) -> Table {
    let n = 8u64;
    let mut rows = Vec::new();
    for &f in failures {
        let mut sim = Sim::new_paper(n as usize, Config::default(), fixed_opts(13));
        sim.reconfigure(&procs(n));
        sim.send(ProcessId::new(1), AppMsg::from("pre"));
        sim.run_to_quiescence();
        for i in 0..f as u64 {
            sim.crash(ProcessId::new(n - i));
        }
        let survivors: ProcSet = (1..=n - f as u64).map(ProcessId::new).collect();
        let t0 = sim.now();
        let mark = sim.trace().len() as u64;
        let v1 = sim.reconfigure(&survivors);
        sim.run_to_quiescence();
        let shrink =
            metrics::install_completion(sim.trace(), &v1, mark).expect("survivor view installs");
        for i in 0..f as u64 {
            sim.recover(ProcessId::new(n - i));
        }
        let mark2 = sim.trace().len() as u64;
        let t1 = sim.now();
        let v2 = sim.reconfigure(&procs(n));
        sim.run_to_quiescence();
        let rejoin =
            metrics::install_completion(sim.trace(), &v2, mark2).expect("full view reinstalls");
        let violations = sim.finish();
        rows.push(vec![
            f.to_string(),
            format!("{}", shrink.saturating_sub(t0)),
            format!("{}", rejoin.saturating_sub(t1)),
            if violations.is_empty() { "clean".into() } else { format!("{violations:?}") },
        ]);
    }
    Table {
        id: "E8",
        title: "crash f of 8 end-points, recover, rejoin (no stable storage, §8)".into(),
        headers: ["f", "time to survivor view", "time to rejoin view", "spec checkers"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E9 — client-server scalability: membership-server traffic is a
/// function of the number of servers, independent of client count.
pub fn e9_scalability(client_counts: &[usize], server_counts: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &s in server_counts {
        for &c in client_counts {
            let clients_per = c / s;
            let layout: Vec<(ProcessId, Vec<ProcessId>)> = (0..s)
                .map(|k| {
                    let sid = ProcessId::new(1000 + k as u64 + 1);
                    let cs: Vec<ProcessId> = (0..clients_per)
                        .map(|j| ProcessId::new((k * clients_per + j) as u64 + 1))
                        .collect();
                    (sid, cs)
                })
                .collect();
            let all_clients: ProcSet =
                (1..=(clients_per * s) as u64).map(ProcessId::new).collect();
            let servers_set: ProcSet = layout.iter().map(|(s, _)| *s).collect();
            let mut ssim = ServerSim::new(layout, Config::default(), fixed_opts(17));
            ssim.set_connectivity(&servers_set, &all_clients);
            // Steady-state change: one client leaves.
            let remaining: ProcSet = all_clients.iter().copied().skip(1).collect();
            ssim.sim.reset_net_stats();
            ssim.set_connectivity(&servers_set, &remaining);
            let server_msgs = ssim.server_net_stats().count("mbrshp.proposal");
            let client_syncs = ssim.sim.net().stats().count("sync_msg");
            let violations = ssim.sim.finish();
            rows.push(vec![
                s.to_string(),
                (clients_per * s).to_string(),
                server_msgs.to_string(),
                client_syncs.to_string(),
                if violations.is_empty() { "clean".into() } else { "VIOLATIONS".into() },
            ]);
        }
    }
    Table {
        id: "E9",
        title: "client-server architecture: membership traffic scales with servers, not \
                clients"
            .into(),
        headers: ["servers", "clients", "server proposals (total)", "client sync msgs", "specs"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E10 — §9 two-tier aggregation: point-to-point synchronization messages
/// per view change, flat vs leader-aggregated.
pub fn e10_aggregation(sizes: &[usize]) -> Table {
    fn run(n: usize, aggregation: bool) -> u64 {
        let cfg = Config { aggregation, ..Config::default() };
        let mut sim = Sim::new_paper(n, cfg, fixed_opts(19));
        sim.reconfigure(&procs(n as u64));
        sim.run_to_quiescence();
        sim.reset_net_stats();
        // The membership round (among the servers) runs in parallel with
        // the sync round and takes at least as long; let the sync round
        // land before the view arrives, as in the WAN deployment.
        sim.start_change(&procs(n as u64));
        sim.run_to_quiescence();
        sim.form_view(&procs(n as u64));
        sim.run_to_quiescence();
        sim.assert_clean();
        let stats = sim.net().stats();
        stats.count("sync_msg") + stats.count("sync_agg")
    }
    let mut rows = Vec::new();
    for &n in sizes {
        let flat = run(n, false);
        let agg = run(n, true);
        rows.push(vec![
            n.to_string(),
            flat.to_string(),
            format!("{}", (n * (n - 1))),
            agg.to_string(),
            format!("{}", 2 * (n - 1)),
        ]);
    }
    Table {
        id: "E10",
        title: "sync messages per view change: flat all-to-all vs §9 two-tier aggregation"
            .into(),
        headers: ["n", "flat (measured)", "flat (n(n-1))", "aggregated (measured)", "2(n-1)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E11 — total order atop the FIFO service: time for every member to
/// order a burst, vs plain FIFO delivery of the same burst.
pub fn e11_total_order(n: usize, msgs_per_proc: usize) -> Table {
    // Plain FIFO timing.
    let mut fifo = Sim::new_paper(n, Config::default(), fixed_opts(23));
    fifo.reconfigure(&procs(n as u64));
    fifo.run_to_quiescence();
    let t0 = fifo.now();
    for i in 1..=n as u64 {
        for k in 0..msgs_per_proc {
            fifo.send(ProcessId::new(i), AppMsg::from(format!("{i}:{k}").as_str()));
        }
    }
    fifo.run_to_quiescence();
    fifo.assert_clean();
    let fifo_time = fifo.now().saturating_sub(t0);

    // Total order: run the layer over the sim, re-injecting sequencer
    // Order messages until everything is ordered everywhere.
    let mut sim = Sim::new_paper(n, Config::default(), fixed_opts(23));
    let view = sim.reconfigure(&procs(n as u64));
    sim.run_to_quiescence();
    let mut layers: std::collections::BTreeMap<ProcessId, TotalOrder> = (1..=n as u64)
        .map(|i| {
            let p = ProcessId::new(i);
            let mut l = TotalOrder::new(p);
            l.on_view(&view, view.members());
            (p, l)
        })
        .collect();
    let t0 = sim.now();
    for i in 1..=n as u64 {
        let p = ProcessId::new(i);
        for k in 0..msgs_per_proc {
            let wrapped = layers[&p].submit(format!("{i}:{k}").into_bytes());
            sim.send(p, wrapped);
        }
    }
    let mut cursor = 0usize;
    let mut ordered: std::collections::BTreeMap<ProcessId, u64> = Default::default();
    let target = (n * n * msgs_per_proc) as u64; // every member orders every msg
    let mut done_time = sim.now();
    loop {
        sim.run_to_quiescence();
        let entries: Vec<(ProcessId, ProcessId, AppMsg)> = sim.trace().entries()[cursor..]
            .iter()
            .filter_map(|e| match &e.event {
                Event::Deliver { p, q, msg } => Some((*p, *q, msg.clone())),
                _ => None,
            })
            .collect();
        cursor = sim.trace().len();
        if entries.is_empty() {
            break;
        }
        let mut to_send: Vec<(ProcessId, AppMsg)> = Vec::new();
        for (p, q, msg) in entries {
            let layer = layers.get_mut(&p).expect("known proc");
            let (out, announce) = layer.on_deliver(q, &msg);
            *ordered.entry(p).or_insert(0) += out.len() as u64;
            if let Some(a) = announce {
                to_send.push((p, a));
            }
        }
        done_time = sim.now();
        for (p, a) in to_send {
            sim.send(p, a);
        }
    }
    sim.assert_clean();
    let total_ordered: u64 = ordered.values().sum();
    let to_time = done_time.saturating_sub(t0);
    Table {
        id: "E11",
        title: format!(
            "total order atop WV_RFIFO (n={n}, {msgs_per_proc} msgs/proc): sequencer layer \
             vs plain FIFO"
        ),
        headers: ["service", "payloads delivered/ordered", "sim time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: vec![
            vec![
                "FIFO (WV_RFIFO)".into(),
                ((n * n * msgs_per_proc) as u64).to_string(),
                format!("{fifo_time}"),
            ],
            vec![
                "total order".into(),
                format!("{total_ordered}/{target}"),
                format!("{to_time}"),
            ],
        ],
    }
}

/// E12 — network-profile sweep: the view-change cost in *rounds* is a
/// protocol constant; wall-clock scales only with the latency profile
/// (LAN vs WAN), which is the regime the client-server architecture
/// targets (§1: membership servers across a WAN).
pub fn e12_latency_profiles(n: usize) -> Table {
    let mut rows = Vec::new();
    for (name, latency) in [
        ("fixed 100us", LatencyModel::Fixed(SimTime::from_micros(100))),
        ("LAN 50-200us", LatencyModel::lan()),
        ("WAN 20-80ms", LatencyModel::wan()),
    ] {
        let opts = SimOptions { seed: 33, latency, check: true, shuffle_polling: false };
        let mut sim = Sim::new_paper(n, Config::default(), opts);
        sim.reconfigure(&procs(n as u64));
        sim.run_to_quiescence();
        sim.reset_net_stats();
        let t0 = sim.now();
        let mark = sim.trace().len() as u64;
        let view = sim.reconfigure(&procs(n as u64));
        sim.run_to_quiescence();
        sim.assert_clean();
        let done = metrics::install_completion(sim.trace(), &view, mark).expect("stable");
        let sync = sim.net().stats().count("sync_msg");
        rows.push(vec![
            name.into(),
            "1".into(),
            sync.to_string(),
            format!("{}", done.saturating_sub(t0)),
        ]);
    }
    Table {
        id: "E12",
        title: format!(
            "view change (n={n}) across network profiles: rounds and messages constant, \
             time tracks latency"
        ),
        headers: ["profile", "rounds", "sync msgs", "view-change time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Layer ablation: cost of each property layer of the inheritance chain.
pub fn ablation_layers() -> Table {
    let mut rows = Vec::new();
    for (name, stack) in
        [("WV_RFIFO", Stack::Wv), ("VS_RFIFO+TS", Stack::VsTs), ("GCS (full)", Stack::Full)]
    {
        let cfg = Config { stack, ..Config::default() };
        let mut sim = Sim::new_paper(
            8,
            cfg,
            SimOptions {
                seed: 29,
                latency: LatencyModel::Fixed(SimTime::from_micros(100)),
                // WV/VsTs stacks intentionally do not satisfy the upper
                // specs; checking is meaningful only for the full stack.
                check: stack == Stack::Full,
                shuffle_polling: false,
            },
        );
        sim.reconfigure(&procs(8));
        sim.run_to_quiescence();
        sim.reset_net_stats();
        let t0 = sim.now();
        let mark = sim.trace().len() as u64;
        let view = sim.reconfigure(&procs(8));
        sim.run_to_quiescence();
        let done = metrics::install_completion(sim.trace(), &view, mark).expect("stable");
        let stats = sim.net().stats();
        let summary = Summary::from_trace(sim.trace());
        rows.push(vec![
            name.into(),
            stats.count("sync_msg").to_string(),
            summary.blocks.to_string(),
            format!("{}", done.saturating_sub(t0)),
        ]);
    }
    Table {
        id: "ABL",
        title: "cost of each inheritance layer during one view change (n=8)".into(),
        headers: ["stack", "sync msgs", "block handshakes", "view-change time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Runs every experiment with its default parameters.
pub fn all() -> Vec<Table> {
    vec![
        e1_view_change(&[2, 4, 8, 16, 32]),
        e3_obsolete_views(&[1, 2, 4, 8]),
        e4_reconfig_delivery(),
        e5_throughput(&[2, 4, 8, 16], 20),
        e6_forwarding(&[4, 8, 16]),
        e7_sync_overhead(&[4, 8, 16]),
        e8_crash_recovery(&[1, 2, 3]),
        e9_scalability(&[8, 32, 64], &[2, 4]),
        e10_aggregation(&[4, 8, 16, 32]),
        e11_total_order(6, 5),
        e12_latency_profiles(8),
        ablation_layers(),
    ]
}

/// Runs the experiment with the given id (`"E1"`, `"e10"`, `"abl"`, or
/// `"all"`).
pub fn run_by_id(id: &str) -> Vec<Table> {
    match id.to_ascii_uppercase().as_str() {
        "E1" | "E2" => vec![e1_view_change(&[2, 4, 8, 16, 32])],
        "E3" => vec![e3_obsolete_views(&[1, 2, 4, 8])],
        "E4" => vec![e4_reconfig_delivery()],
        "E5" => vec![e5_throughput(&[2, 4, 8, 16], 20)],
        "E6" => vec![e6_forwarding(&[4, 8, 16])],
        "E7" => vec![e7_sync_overhead(&[4, 8, 16])],
        "E8" => vec![e8_crash_recovery(&[1, 2, 3])],
        "E9" => vec![e9_scalability(&[8, 32, 64], &[2, 4])],
        "E10" => vec![e10_aggregation(&[4, 8, 16, 32])],
        "E11" => vec![e11_total_order(6, 5)],
        "E12" => vec![e12_latency_profiles(8)],
        "ABL" | "ABLATION" => vec![ablation_layers()],
        _ => all(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_paper_beats_baseline() {
        let t = e1_view_change(&[4]);
        assert_eq!(t.rows.len(), 1);
        let row = &t.rows[0];
        let paper_us: &str = &row[2];
        let base_us: &str = &row[5];
        // Crude parse: both end with units; compare the raw micros via the
        // kernels instead.
        let (tp, sp, _) = paper_view_change(4, Config::default(), 1);
        let (tb, sb, _) = baseline_view_change(4, 1);
        assert!(tb > tp, "baseline {tb} should exceed paper {tp} ({paper_us} vs {base_us})");
        // Paper sends one message per ordered pair; baseline two.
        assert_eq!(sp, 12);
        assert_eq!(sb, 24);
    }

    #[test]
    fn e3_paper_delivers_one_view() {
        let t = e3_obsolete_views(&[3]);
        assert_eq!(t.rows[0][1], "1");
        assert_eq!(t.rows[0][2], "3");
    }

    #[test]
    fn e6_min_copy_sends_fewer() {
        let t = e6_forwarding(&[8]);
        let eager: u64 = t.rows[0][2].parse().unwrap();
        let min: u64 = t.rows[0][3].parse().unwrap();
        assert!(min >= 1, "{t:?}");
        assert!(min <= eager, "{t:?}");
    }

    #[test]
    fn e7_slim_saves_bytes() {
        let t = e7_sync_overhead(&[8]);
        let full: u64 = t.rows[0][2].parse().unwrap();
        let slim: u64 = t.rows[0][3].parse().unwrap();
        assert!(slim < full, "{t:?}");
    }

    #[test]
    fn e10_aggregation_reduces_messages() {
        let t = e10_aggregation(&[8]);
        let flat: u64 = t.rows[0][1].parse().unwrap();
        let agg: u64 = t.rows[0][3].parse().unwrap();
        assert_eq!(flat, 8 * 7);
        assert_eq!(agg, 2 * 7);
    }

    #[test]
    fn e4_paper_reconfigures_faster() {
        let t = e4_reconfig_delivery();
        let paper: &str = &t.rows[0][1];
        let base: &str = &t.rows[1][1];
        // "100us" vs "200us" — compare numerically via the kernels'
        // underlying claim: baseline duration strictly larger.
        let parse = |s: &str| s.trim_end_matches("us").parse::<f64>().unwrap_or(f64::MAX);
        assert!(parse(paper) < parse(base), "{t:?}");
    }

    #[test]
    fn e8_always_clean() {
        let t = e8_crash_recovery(&[2]);
        assert_eq!(t.rows[0][3], "clean", "{t:?}");
    }

    #[test]
    fn e9_server_traffic_independent_of_clients() {
        let t = e9_scalability(&[8, 32], &[2]);
        assert_eq!(t.rows[0][2], t.rows[1][2], "{t:?}");
        assert!(t.rows.iter().all(|r| r[4] == "clean"), "{t:?}");
    }

    #[test]
    fn e11_orders_everything() {
        let t = e11_total_order(4, 3);
        assert!(t.rows[1][1].starts_with("48/48"), "{t:?}");
    }

    #[test]
    fn e12_wan_slower_same_rounds() {
        let t = e12_latency_profiles(4);
        assert!(t.rows.iter().all(|r| r[1] == "1"), "{t:?}");
        assert!(t.rows.iter().all(|r| r[2] == t.rows[0][2]), "{t:?}");
        assert!(t.rows[2][3].contains("ms"), "WAN time should be in ms: {t:?}");
    }

    #[test]
    fn e5_throughput_scales_with_group() {
        let t = e5_throughput(&[2, 4], 5);
        let d0: u64 = t.rows[0][1].parse().unwrap();
        let d1: u64 = t.rows[1][1].parse().unwrap();
        assert!(d1 > d0, "{t:?}");
    }

    #[test]
    fn ablation_layers_shape() {
        let t = ablation_layers();
        // WV has no sync traffic; VS/Full do; only Full blocks.
        assert_eq!(t.rows[0][1], "0");
        assert_ne!(t.rows[1][1], "0");
        assert_eq!(t.rows[1][2], "0");
        assert_ne!(t.rows[2][2], "0");
    }

    #[test]
    fn table_renders() {
        let t = Table {
            id: "T",
            title: "test".into(),
            headers: vec!["a".into(), "bb".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let s = t.render();
        assert!(s.contains("a "), "{s}");
        assert!(s.contains("bb"));
    }
}
