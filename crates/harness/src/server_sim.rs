//! End-to-end simulation with real membership servers.
//!
//! The paper's architecture (Fig. 1): GCS end-points at the clients, a
//! small set of dedicated membership servers maintaining membership. Here
//! both tiers run as message-passing components: the servers exchange
//! [`ServerMsg`] proposals over their own simulated network (the
//! server-to-server WAN of \[27\]), and their `start_change`/`view`
//! notifications feed the client end-points of an inner [`Sim`].
//!
//! Server↔client notification delivery is instantaneous (clients attach
//! to a nearby server; that channel's latency is not what any experiment
//! measures), while server↔server traffic pays the configured latency —
//! which is exactly the membership round the paper's virtual-synchrony
//! round runs in parallel with.

use crate::sim::{Sim, SimOptions};
use std::collections::BTreeMap;
use vsgm_core::{Config, Endpoint};
use vsgm_ioa::{SimRng, SimTime};
use vsgm_membership::{Server, ServerMsg, ServerOutput};
use vsgm_net::SimNet;
use vsgm_types::{ProcSet, ProcessId};

/// A two-tier simulation: membership servers over their own network, GCS
/// end-points underneath.
pub struct ServerSim {
    /// The inner client-side simulation (endpoints + CO_RFIFO + trace).
    pub sim: Sim<Endpoint>,
    servers: BTreeMap<ProcessId, Server>,
    server_net: SimNet<ServerMsg>,
    time: SimTime,
}

impl ServerSim {
    /// Creates `servers.len()` membership servers, each owning the listed
    /// clients; client end-points run the paper's algorithm with `cfg`.
    /// Server ids must not collide with client ids (convention: ≥ 1000).
    pub fn new(servers: Vec<(ProcessId, Vec<ProcessId>)>, cfg: Config, opts: SimOptions) -> Self {
        let clients: BTreeMap<ProcessId, Endpoint> = servers
            .iter()
            .flat_map(|(_, cs)| cs.iter().copied())
            .map(|c| (c, Endpoint::new(c, cfg.clone())))
            .collect();
        let server_ids: Vec<ProcessId> = servers.iter().map(|(s, _)| *s).collect();
        let mut server_net = SimNet::new(
            server_ids.iter().copied(),
            opts.latency,
            SimRng::new(opts.seed ^ 0x5eed),
        );
        // Servers keep reliable channels to each other permanently.
        let all_servers: ProcSet = server_ids.iter().copied().collect();
        for s in &server_ids {
            server_net.set_reliable(*s, all_servers.clone());
        }
        let sim = Sim::with_endpoints(clients, opts);
        let servers = servers.into_iter().map(|(s, cs)| (s, Server::new(s, cs))).collect();
        ServerSim { sim, servers, server_net, time: SimTime::ZERO }
    }

    /// All server ids.
    pub fn server_ids(&self) -> ProcSet {
        self.servers.keys().copied().collect()
    }

    /// The server-tier network statistics (membership traffic).
    pub fn server_net_stats(&self) -> &vsgm_net::NetStats {
        self.server_net.stats()
    }

    /// Updates every reachable server's failure-detector estimate and
    /// routes the resulting protocol activity to quiescence.
    pub fn set_connectivity(&mut self, reachable_servers: &ProcSet, alive_clients: &ProcSet) {
        let ids: Vec<ProcessId> = self.servers.keys().copied().collect();
        for id in ids {
            if reachable_servers.contains(&id) {
                let outs = self
                    .servers
                    .get_mut(&id)
                    .expect("known server")
                    .set_connectivity(reachable_servers.clone(), alive_clients.clone());
                self.route_server(id, outs);
            }
        }
        self.run_to_quiescence();
    }

    fn route_server(&mut self, from: ProcessId, outputs: Vec<ServerOutput>) {
        for out in outputs {
            match out {
                ServerOutput::StartChange(n) => {
                    self.sim.feed_start_change(n.p, n.cid, n.set);
                }
                ServerOutput::View { client, view } => {
                    self.sim.feed_view(client, view);
                }
                ServerOutput::Broadcast { to, msg } => {
                    self.server_net.send(self.time, from, &to, &msg);
                }
            }
        }
    }

    /// Runs both tiers until no message is in flight anywhere and every
    /// endpoint is quiescent.
    pub fn run_to_quiescence(&mut self) {
        for _ in 0..10_000_000u64 {
            self.sim.step_all();
            let tc = self.sim.net().next_arrival();
            let ts = self.server_net.next_arrival();
            match (tc, ts) {
                (None, None) => return,
                (Some(_), None) => {
                    self.sim.deliver_next();
                }
                (None, Some(t)) => self.deliver_server_batch(t),
                (Some(c), Some(s)) => {
                    if c <= s {
                        self.sim.deliver_next();
                    } else {
                        self.deliver_server_batch(s);
                    }
                }
            }
        }
        panic!("server sim did not quiesce");
    }

    fn deliver_server_batch(&mut self, t: SimTime) {
        self.time = t;
        let batch = self.server_net.pop_ready(t);
        for (_, to, msg) in batch {
            let outs = self.servers.get_mut(&to).expect("known server").handle(msg);
            self.route_server(to, outs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::procs_of;
    use vsgm_types::AppMsg;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn two_tier() -> ServerSim {
        ServerSim::new(
            vec![(p(1001), vec![p(1), p(2)]), (p(1002), vec![p(3), p(4)])],
            Config::default(),
            SimOptions::default(),
        )
    }

    #[test]
    fn end_to_end_view_formation_and_multicast() {
        let mut s = two_tier();
        s.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2, 3, 4]));
        // Every client is in the 4-member view.
        for i in 1..=4 {
            let v = s.sim.endpoint(p(i)).current_view();
            assert_eq!(v.len(), 4, "client {i} in {v}");
        }
        s.sim.send(p(1), AppMsg::from("across tiers"));
        s.run_to_quiescence();
        let counts = s.sim.trace().kind_counts();
        assert_eq!(counts["deliver"], 4, "{counts:?}");
        assert!(s.sim.finish().is_empty());
    }

    #[test]
    fn client_failure_reconfigures_through_servers() {
        let mut s = two_tier();
        s.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2, 3, 4]));
        s.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2, 3]));
        for i in 1..=3 {
            assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 3);
        }
        assert!(s.sim.finish().is_empty());
    }

    #[test]
    fn server_partition_yields_component_views() {
        let mut s = two_tier();
        s.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2, 3, 4]));
        // Servers partition; clients partition correspondingly.
        s.sim.partition(&[vec![p(1), p(2)], vec![p(3), p(4)]]);
        s.set_connectivity(&procs_of(&[1001]), &procs_of(&[1, 2]));
        s.set_connectivity(&procs_of(&[1002]), &procs_of(&[3, 4]));
        assert_eq!(s.sim.endpoint(p(1)).current_view().len(), 2);
        assert_eq!(s.sim.endpoint(p(3)).current_view().len(), 2);
        assert_ne!(
            s.sim.endpoint(p(1)).current_view().id(),
            s.sim.endpoint(p(3)).current_view().id()
        );
        // Heal and merge.
        s.sim.heal();
        s.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2, 3, 4]));
        for i in 1..=4 {
            assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 4, "client {i}");
        }
        assert!(s.sim.finish().is_empty());
    }

    #[test]
    fn membership_traffic_is_per_server_not_per_client() {
        // The client-server scalability claim (E9): membership agreement
        // traffic depends on the number of servers, not clients.
        let mut small = ServerSim::new(
            vec![(p(1001), vec![p(1)]), (p(1002), vec![p(2)])],
            Config::default(),
            SimOptions::default(),
        );
        small.set_connectivity(&procs_of(&[1001, 1002]), &procs_of(&[1, 2]));
        let small_msgs = small.server_net_stats().count("mbrshp.proposal");

        let many: Vec<ProcessId> = (1..=16).map(p).collect();
        let mut big = ServerSim::new(
            vec![
                (p(1001), many[..8].to_vec()),
                (p(1002), many[8..].to_vec()),
            ],
            Config::default(),
            SimOptions::default(),
        );
        big.set_connectivity(&procs_of(&[1001, 1002]), &many.iter().copied().collect());
        let big_msgs = big.server_net_stats().count("mbrshp.proposal");
        assert_eq!(small_msgs, big_msgs, "proposal count independent of client count");
    }
}
