//! Renders a recorded trace as per-process timeline lanes.
//!
//! ```text
//! cargo run -p vsgm-harness --bin scenario -- --demo    # produces a run
//! cargo run -p vsgm-harness --bin trace_view -- trace.jsonl
//! cargo run -p vsgm-harness --bin trace_view -- --demo  # built-in demo run
//! ```
//!
//! Application-facing events are shown by default; pass `--all` after the
//! source to include membership and network-level events.

use vsgm_harness::Scenario;
use vsgm_ioa::Trace;
use vsgm_types::Event;

fn render(trace: &Trace, all: bool) -> String {
    let mut procs: Vec<_> =
        trace.entries().iter().map(|e| e.event.process()).collect::<Vec<_>>();
    procs.sort_unstable();
    procs.dedup();
    let lane_width = 26usize;
    let mut out = String::new();
    out.push_str(&format!("{:>10}  ", "time"));
    for p in &procs {
        out.push_str(&format!("{:<width$}", p.to_string(), width = lane_width));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + lane_width * procs.len()));
    out.push('\n');
    for e in trace.entries() {
        if !all && !e.event.is_application_facing() {
            continue;
        }
        let label = match &e.event {
            Event::Send { msg, .. } => format!("send {msg:?}"),
            Event::Deliver { q, msg, .. } => format!("dlvr {msg:?} <-{q}"),
            Event::GcsView { view, transitional, .. } => {
                format!("VIEW {} |T|={}", view.id(), transitional.len())
            }
            Event::Block { .. } => "block".into(),
            Event::BlockOk { .. } => "block_ok".into(),
            Event::MbrshpStartChange { cid, .. } => format!("sc {cid}"),
            Event::MbrshpView { view, .. } => format!("mview {}", view.id()),
            Event::NetSend { msg, .. } => format!("->net {}", msg.tag()),
            Event::NetDeliver { p, msg, .. } => format!("<-net {} {p}", msg.tag()),
            Event::Reliable { set, .. } => format!("rel |{}|", set.len()),
            Event::Live { set, .. } => format!("live |{}|", set.len()),
            Event::Crash { .. } => "CRASH".into(),
            Event::Recover { .. } => "RECOVER".into(),
        };
        let lane = procs.iter().position(|p| *p == e.event.process()).unwrap_or(0);
        let mut line = format!("{:>10}  ", e.time.to_string());
        line.push_str(&" ".repeat(lane * lane_width));
        let mut label = label;
        label.truncate(lane_width - 1);
        line.push_str(&label);
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.iter().any(|a| a == "--all");
    let source = args.iter().find(|a| !a.starts_with("--")).cloned();
    let trace = match source.as_deref() {
        None => {
            // Run the demo scenario and view its trace.
            let mut sim = vsgm_harness::Sim::new_paper(
                3,
                Default::default(),
                vsgm_harness::SimOptions::default(),
            );
            let steps = Scenario::demo().steps;
            let _ = steps; // the demo scenario targets n=4; use a quick run instead
            sim.reconfigure(&sim.all_procs());
            sim.send(vsgm_types::ProcessId::new(1), vsgm_types::AppMsg::from("demo"));
            sim.run_to_quiescence();
            sim.trace().clone()
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            Trace::from_json_lines(&text).unwrap_or_else(|e| panic!("bad trace: {e}"))
        }
    };
    print!("{}", render(&trace, all));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::SimTime;
    use vsgm_types::{AppMsg, ProcessId};

    #[test]
    fn render_produces_lanes() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_micros(1),
            Event::Send { p: ProcessId::new(1), msg: AppMsg::from("x") },
        );
        t.record(
            SimTime::from_micros(2),
            Event::Deliver { p: ProcessId::new(2), q: ProcessId::new(1), msg: AppMsg::from("x") },
        );
        let s = render(&t, false);
        assert!(s.contains("send"), "{s}");
        assert!(s.contains("dlvr"), "{s}");
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("p2"), "{s}");
    }
}
