//! Runs a JSON scenario file under full spec checking.
//!
//! ```text
//! cargo run -p vsgm-harness --bin scenario -- path/to/scenario.json
//! cargo run -p vsgm-harness --bin scenario -- --demo        # built-in demo
//! cargo run -p vsgm-harness --bin scenario -- --print-demo  # emit demo JSON
//! cargo run -p vsgm-harness --bin scenario -- --obs [file]  # + metrics table
//! ```
//!
//! `--obs` runs the scenario with protocol observability on and prints
//! the metrics snapshot table; with a file argument it runs that
//! scenario instead of the demo.

use vsgm_harness::Scenario;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let observe = if let Some(i) = args.iter().position(|a| a == "--obs") {
        args.remove(i);
        true
    } else {
        false
    };
    let arg = args.into_iter().next().unwrap_or_else(|| "--demo".into());
    let scenario = match arg.as_str() {
        "--demo" => Scenario::demo(),
        "--print-demo" => {
            println!("{}", Scenario::demo().to_json());
            return;
        }
        path => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("bad scenario JSON: {e}"))
        }
    };
    let outcome = if observe {
        let (outcome, snap) = scenario.run_observed();
        println!("{}", snap.render_table());
        outcome
    } else {
        scenario.run()
    };
    println!("events: {}", outcome.events);
    for (kind, count) in &outcome.kind_counts {
        println!("  {kind:20} {count}");
    }
    if outcome.violations.is_empty() {
        println!("all specification checkers clean ✓");
    } else {
        eprintln!("SPEC VIOLATIONS:");
        for v in &outcome.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
