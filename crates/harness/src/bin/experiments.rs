//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! cargo run --release -p vsgm-harness --bin experiments            # all
//! cargo run --release -p vsgm-harness --bin experiments -- E6 E10  # some
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tables = if args.is_empty() {
        vsgm_harness::experiments::all()
    } else {
        args.iter().flat_map(|id| vsgm_harness::experiments::run_by_id(id)).collect()
    };
    for t in tables {
        println!("{}", t.render());
    }
}
