//! **vsgm-harness** — deterministic simulation of the complete system.
//!
//! Composes GCS end-points (`vsgm-core` or the `vsgm-baseline`
//! comparison algorithm) with the simulated `CO_RFIFO` network
//! (`vsgm-net`), a membership service (`vsgm-membership`), and blocking
//! application clients, under scenario control: partitions, heals,
//! crashes, recoveries, cascaded membership changes, and message
//! workloads. Every externally observable action is recorded in a global
//! [`vsgm_ioa::Trace`] and — when checking is enabled — validated *online*
//! against the full battery of specification automata from `vsgm-spec`.
//!
//! * [`sim::Sim`] — the oracle-driven simulator (scripted membership).
//! * [`server_sim::ServerSim`] — end-to-end runs with real membership
//!   servers exchanging proposals over their own simulated network.
//! * [`metrics::Summary`] — trace digests the experiments report.
//! * [`experiments`] — one function per experiment in `DESIGN.md` §5
//!   (E1–E11 plus the layer ablation), each regenerating one table of
//!   `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod scenario;
pub mod server_sim;
pub mod sim;

pub use metrics::Summary;
pub use scenario::{apply_step, Scenario, Step};
pub use sim::{Sim, SimOptions};
