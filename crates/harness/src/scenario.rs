//! A small JSON scenario DSL for driving spec-checked simulations from
//! files or the command line (`cargo run -p vsgm-harness --bin scenario`).

use crate::sim::{Sim, SimOptions};
use serde::{Deserialize, Serialize};
use vsgm_core::Config;
use vsgm_ioa::SimTime;
use vsgm_net::{FaultPlan, LatencyModel};
use vsgm_types::{AppMsg, ProcSet, ProcessId};

/// One scripted step of a scenario.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case")]
pub enum Step {
    /// Application at process `p` multicasts `msg`.
    Send {
        /// Sender (1-based process number).
        p: u64,
        /// UTF-8 payload.
        msg: String,
    },
    /// Full reconfiguration (start_change + view) to `members`.
    Reconfigure {
        /// Member process numbers.
        members: Vec<u64>,
    },
    /// A `start_change` without a view (cascade).
    StartChange {
        /// Suggested member process numbers.
        members: Vec<u64>,
    },
    /// Deliver the view for `members` (a prior start_change must cover it).
    FormView {
        /// Member process numbers.
        members: Vec<u64>,
    },
    /// Partition the network into components.
    Partition {
        /// Partition components, each a list of process numbers.
        groups: Vec<Vec<u64>>,
    },
    /// Heal all partitions.
    Heal,
    /// Crash a process.
    Crash {
        /// Process number.
        p: u64,
    },
    /// Recover a crashed process.
    Recover {
        /// Process number.
        p: u64,
    },
    /// Run the network until quiescence.
    Run,
    /// Run the network for `ms` simulated milliseconds (arrivals due
    /// later stay in flight, so following steps hit a busy network).
    RunFor {
        /// Simulated milliseconds to run for.
        ms: u64,
    },
    /// Install (replacing any previous) a network fault plan; all-zero
    /// fields clear it. `drop`/`dup`/`burst` apply only to
    /// non-`reliable_set` channels; `dup > 0` exceeds the `CO_RFIFO`
    /// envelope and will trip its checker (see `vsgm_net::FaultPlan`).
    Faults {
        /// Per-message drop probability.
        #[serde(default)]
        drop: f64,
        /// Per-message duplication probability (out-of-envelope).
        #[serde(default)]
        dup: f64,
        /// Uniform extra arrival jitter in `[0, reorder_ms]` ms.
        #[serde(default)]
        reorder_ms: u64,
        /// Probability a send opens a burst-loss window.
        #[serde(default)]
        burst: f64,
    },
    /// Crash `p` in the middle of a sync round (plain crash if no
    /// reconfiguration is in progress by quiescence).
    CrashDuringSync {
        /// Process number.
        p: u64,
    },
    /// Corrupt one facet of `p`'s protocol state in place (transient
    /// fault injection for the self-stabilization tier). The damage is
    /// detected by the endpoint's `StateAudit` pass on its next tick and
    /// reconciled via the §8 recovery path.
    Corrupt {
        /// Process number.
        p: u64,
        /// Which facet of the state to corrupt.
        kind: vsgm_core::CorruptionKind,
    },
}

/// A complete scenario: the group size and the script.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Scenario {
    /// Number of processes (`p1..pn`).
    pub n: usize,
    /// Seed for deterministic replay.
    #[serde(default)]
    pub seed: u64,
    /// The steps, executed in order.
    pub steps: Vec<Step>,
}

/// Outcome of running a scenario.
#[derive(Debug)]
pub struct Outcome {
    /// Total trace events.
    pub events: usize,
    /// Per-kind event counts.
    pub kind_counts: std::collections::BTreeMap<&'static str, usize>,
    /// Spec violations (empty = all checkers clean).
    pub violations: Vec<vsgm_ioa::Violation>,
}

fn set_of(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| ProcessId::new(i)).collect()
}

/// Applies one scripted [`Step`] to a paper-algorithm simulation. The
/// single step interpreter shared by [`Scenario::run`] and the chaos
/// runner (`vsgm-chaos`), so the two cannot drift apart.
pub fn apply_step(sim: &mut Sim<vsgm_core::Endpoint>, step: &Step) {
    match step {
        Step::Send { p, msg } => sim.send(ProcessId::new(*p), AppMsg::from(msg.as_str())),
        Step::Reconfigure { members } => {
            sim.reconfigure(&set_of(members));
        }
        Step::StartChange { members } => sim.start_change(&set_of(members)),
        Step::FormView { members } => {
            sim.form_view(&set_of(members));
        }
        Step::Partition { groups } => {
            let groups: Vec<Vec<ProcessId>> =
                groups.iter().map(|g| g.iter().map(|&i| ProcessId::new(i)).collect()).collect();
            sim.partition(&groups);
        }
        Step::Heal => sim.heal(),
        Step::Crash { p } => sim.crash(ProcessId::new(*p)),
        Step::Recover { p } => sim.recover(ProcessId::new(*p)),
        Step::Run => sim.run_to_quiescence(),
        Step::RunFor { ms } => sim.run_for(SimTime::from_millis(*ms)),
        Step::Faults { drop, dup, reorder_ms, burst } => sim.set_fault_plan(FaultPlan {
            drop: *drop,
            dup: *dup,
            reorder_ms: *reorder_ms,
            burst: *burst,
            burst_len: 0,
        }),
        Step::CrashDuringSync { p } => sim.crash_during_sync(ProcessId::new(*p)),
        Step::Corrupt { p, kind } => sim.corrupt(ProcessId::new(*p), *kind),
    }
}

impl Scenario {
    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error.
    pub fn from_json(s: &str) -> Result<Scenario, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario is serializable")
    }

    /// Runs the scenario under full spec checking and paper-invariant
    /// auditing.
    pub fn run(&self) -> Outcome {
        self.run_inner(false).0
    }

    /// Like [`Scenario::run`], but with protocol observability on:
    /// additionally returns a metrics snapshot (journal-derived spans,
    /// counters, traffic) of the whole run.
    pub fn run_observed(&self) -> (Outcome, vsgm_obs::Snapshot) {
        let (outcome, snap) = self.run_inner(true);
        (outcome, snap.expect("observability was enabled"))
    }

    fn run_inner(&self, observe: bool) -> (Outcome, Option<vsgm_obs::Snapshot>) {
        let mut sim = Sim::new_paper(
            self.n,
            Config::default(),
            SimOptions {
                seed: self.seed,
                latency: LatencyModel::lan(),
                check: true,
                shuffle_polling: true,
            },
        );
        if observe {
            sim.enable_obs();
        }
        for step in &self.steps {
            apply_step(&mut sim, step);
            sim.assert_paper_invariants();
        }
        sim.run_to_quiescence();
        sim.assert_paper_invariants();
        let violations = sim.finish();
        let snap = sim.take_obs().map(|r| vsgm_obs::Snapshot::capture(&r));
        (
            Outcome {
                events: sim.trace().len(),
                kind_counts: sim.trace().kind_counts(),
                violations,
            },
            snap,
        )
    }

    /// A demonstration scenario exercising most step kinds.
    pub fn demo() -> Scenario {
        Scenario {
            n: 4,
            seed: 7,
            steps: vec![
                Step::Reconfigure { members: vec![1, 2, 3, 4] },
                Step::Send { p: 1, msg: "hello".into() },
                Step::Run,
                Step::Partition { groups: vec![vec![1, 2], vec![3, 4]] },
                Step::StartChange { members: vec![1, 2] },
                Step::FormView { members: vec![1, 2] },
                Step::Run,
                Step::Crash { p: 4 },
                Step::Heal,
                Step::Recover { p: 4 },
                Step::Reconfigure { members: vec![1, 2, 3, 4] },
                Step::Send { p: 4, msg: "back".into() },
                Step::Run,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_scenario_runs_clean() {
        let outcome = Scenario::demo().run();
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.events > 0);
        assert!(outcome.kind_counts["deliver"] >= 4);
    }

    #[test]
    fn observed_run_produces_a_snapshot() {
        let (outcome, snap) = Scenario::demo().run_observed();
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(snap.view_changes_completed > 0, "{}", snap.render_table());
        assert!(snap.journal_len > 0);
        // The snapshot serializes (consumed by benches and CLI tooling).
        assert!(snap.to_json_pretty().contains("view_changes_completed"));
    }

    #[test]
    fn json_roundtrip() {
        let s = Scenario::demo();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Scenario::from_json("{nope}").is_err());
    }

    #[test]
    fn chaos_steps_json_roundtrip() {
        let s = Scenario {
            n: 3,
            seed: 11,
            steps: vec![
                Step::Faults { drop: 0.2, dup: 0.0, reorder_ms: 5, burst: 0.01 },
                Step::Reconfigure { members: vec![1, 2, 3] },
                Step::Send { p: 1, msg: "x".into() },
                Step::RunFor { ms: 20 },
                Step::CrashDuringSync { p: 2 },
                Step::Corrupt { p: 1, kind: vsgm_core::CorruptionKind::ScrambleMembership },
                Step::Run,
            ],
        };
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        // Omitted fault fields default to zero, so minimized reproducers
        // serialize sparsely.
        let sparse: Step = serde_json::from_str(r#"{"faults": {"drop": 0.5}}"#).unwrap();
        assert_eq!(sparse, Step::Faults { drop: 0.5, dup: 0.0, reorder_ms: 0, burst: 0.0 });
    }

    #[test]
    fn faulty_scenario_stays_clean_and_deterministic() {
        let s = Scenario {
            n: 4,
            seed: 3,
            steps: vec![
                Step::Faults { drop: 0.15, dup: 0.0, reorder_ms: 3, burst: 0.02 },
                Step::Reconfigure { members: vec![1, 2, 3, 4] },
                Step::Send { p: 1, msg: "a".into() },
                Step::Send { p: 3, msg: "b".into() },
                Step::RunFor { ms: 2 },
                Step::Reconfigure { members: vec![1, 2, 3] },
                Step::Run,
            ],
        };
        let one = s.run();
        let two = s.run();
        // Loss + jitter stay inside the CO_RFIFO envelope: every checker
        // is still green, and the run replays identically from its seed.
        assert!(one.violations.is_empty(), "{:?}", one.violations);
        assert_eq!(one.events, two.events);
        assert_eq!(one.kind_counts, two.kind_counts);
    }

    #[test]
    fn partition_form_view_variant() {
        // Separate start_change/form_view steps allow asymmetric views.
        let s = Scenario {
            n: 3,
            seed: 0,
            steps: vec![
                Step::Reconfigure { members: vec![1, 2, 3] },
                Step::StartChange { members: vec![1, 2, 3] },
                Step::StartChange { members: vec![1, 2] },
                Step::FormView { members: vec![1, 2] },
                Step::Run,
            ],
        };
        let outcome = s.run();
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }
}
