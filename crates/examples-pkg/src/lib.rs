//! Example-hosting package for the vsgm workspace.
//!
//! The runnable sources live in the repository-level `examples/`
//! directory; run them with e.g.
//! `cargo run -p vsgm-examples --example quickstart`.
