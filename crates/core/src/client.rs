//! A reference blocking application client (Fig. 12).

use std::collections::VecDeque;
use vsgm_types::AppMsg;

/// Client-side block-handshake status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Status {
    #[default]
    Unblocked,
    Requested,
    Blocked,
}

/// A well-behaved application client per the `CLIENT:SPEC` automaton
/// (Fig. 12): it eventually answers every `block` with `block_ok` and
/// then refrains from sending until a view is delivered.
///
/// Messages the application wants to send while blocked are queued and
/// released on the next view, so application code never has to care about
/// reconfiguration timing.
///
/// ```
/// use vsgm_core::BlockingClient;
/// use vsgm_types::AppMsg;
///
/// let mut client = BlockingClient::new();
/// assert_eq!(client.want_send(AppMsg::from("a")), Some(AppMsg::from("a")));
/// client.on_block();
/// assert!(client.ack_block()); // emits block_ok
/// assert_eq!(client.want_send(AppMsg::from("b")), None); // queued
/// let released = client.on_view();
/// assert_eq!(released, vec![AppMsg::from("b")]);
/// ```
#[derive(Debug, Default)]
pub struct BlockingClient {
    status: Status,
    queued: VecDeque<AppMsg>,
}

impl BlockingClient {
    /// Creates an unblocked client with an empty queue.
    pub fn new() -> Self {
        BlockingClient::default()
    }

    /// Input `block_p()` from the GCS.
    pub fn on_block(&mut self) {
        self.status = Status::Requested;
    }

    /// Emits `block_ok_p()` if a block was requested. Returns whether the
    /// acknowledgment fired (callers forward it to the end-point as
    /// [`crate::Input::BlockOk`]).
    pub fn ack_block(&mut self) -> bool {
        if self.status == Status::Requested {
            self.status = Status::Blocked;
            true
        } else {
            false
        }
    }

    /// The application wants to multicast `m`. Returns `Some(m)` when the
    /// send may proceed now, `None` when it was queued because the client
    /// is blocked.
    pub fn want_send(&mut self, m: AppMsg) -> Option<AppMsg> {
        if self.status == Status::Blocked {
            self.queued.push_back(m);
            None
        } else {
            Some(m)
        }
    }

    /// Input `view_p(v, T)` from the GCS: unblocks and releases queued
    /// sends, in order.
    pub fn on_view(&mut self) -> Vec<AppMsg> {
        self.status = Status::Unblocked;
        self.queued.drain(..).collect()
    }

    /// Whether the client is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.status == Status::Blocked
    }

    /// Number of messages waiting for the next view.
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_pass_through_while_unblocked() {
        let mut c = BlockingClient::new();
        assert_eq!(c.want_send(AppMsg::from("x")), Some(AppMsg::from("x")));
        assert!(!c.is_blocked());
    }

    #[test]
    fn ack_only_after_request() {
        let mut c = BlockingClient::new();
        assert!(!c.ack_block(), "no spurious block_ok");
        c.on_block();
        assert!(c.ack_block());
        assert!(!c.ack_block(), "block_ok fires once");
        assert!(c.is_blocked());
    }

    #[test]
    fn sends_queue_while_blocked_and_release_on_view() {
        let mut c = BlockingClient::new();
        c.on_block();
        c.ack_block();
        assert_eq!(c.want_send(AppMsg::from("a")), None);
        assert_eq!(c.want_send(AppMsg::from("b")), None);
        assert_eq!(c.queued_len(), 2);
        let released = c.on_view();
        assert_eq!(released, vec![AppMsg::from("a"), AppMsg::from("b")]);
        assert!(!c.is_blocked());
        assert_eq!(c.queued_len(), 0);
    }

    #[test]
    fn sends_allowed_between_block_and_ack() {
        // Fig. 12: the client may keep sending until it answers block_ok.
        let mut c = BlockingClient::new();
        c.on_block();
        assert_eq!(c.want_send(AppMsg::from("late")), Some(AppMsg::from("late")));
    }
}
