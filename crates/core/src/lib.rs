//! **vsgm-core** — the paper's primary contribution: a client-server
//! virtually synchronous group multicast end-point.
//!
//! The service is implemented by symmetric GCS end-points running at the
//! clients; group membership is maintained *externally* by dedicated
//! membership servers (see `vsgm-membership`). The end-point algorithm is
//! built incrementally, mirroring the paper's inheritance-based
//! construction (§5):
//!
//! | Layer | Paper automaton | Adds |
//! |---|---|---|
//! | [`Stack::Wv`] | `WV_RFIFO_p` (Fig. 9) | within-view reliable FIFO multicast |
//! | [`Stack::VsTs`] | `VS_RFIFO+TS_p` (Fig. 10) | Virtual Synchrony + Transitional Sets via one round of `sync` messages tagged with **locally unique** start-change ids |
//! | [`Stack::Full`] | `GCS_p` (Fig. 11) | Self Delivery via the block/block_ok handshake |
//!
//! Each layer is a set of extra preconditions and effects on the parent's
//! actions (the modules [`wv`], [`vs`], [`sd`] correspond one-to-one to
//! the paper's automata); [`Endpoint`] composes the layers selected by
//! [`Config::stack`], which is also the ablation knob for the experiments.
//!
//! The headline algorithmic property: on a `start_change(cid, set)`
//! notification the end-point sends **one** synchronization message tagged
//! with its *local* `cid` — no agreement on a global identifier is needed
//! because the eventual view carries the `startId` map telling everyone
//! which synchronization message of each peer to use. The virtual
//! synchrony round therefore runs in parallel with the membership round.
//!
//! # Quick start
//!
//! ```
//! use vsgm_core::{Config, Endpoint, Input, Effect};
//! use vsgm_types::{AppMsg, ProcessId};
//!
//! let p1 = ProcessId::new(1);
//! let mut ep = Endpoint::new(p1, Config::default());
//! // In its initial singleton view, a send comes straight back.
//! ep.handle(Input::AppSend(AppMsg::from("hello")));
//! let effects = ep.poll();
//! assert!(effects.iter().any(|e| matches!(
//!     e,
//!     Effect::DeliverApp { from, .. } if *from == p1
//! )));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod audit;
pub mod batch;
pub mod client;
pub mod corrupt;
pub mod invariants;
pub mod config;
pub mod endpoint;
pub mod forward;
pub mod node;
pub mod sd;
pub mod state;
pub mod vs;
pub mod wv;

pub use audit::AuditFailure;
pub use batch::{BatchConfig, FlushCause};
pub use client::BlockingClient;
pub use corrupt::CorruptionKind;
pub use config::{Config, Stack};
pub use endpoint::{Action, Effect, Endpoint, EndpointStats, GroupEndpoint, Input};
pub use forward::{ForwardCmd, ForwardStrategyKind};
pub use node::Node;
