//! `StateAudit`: the local legal-state predicate of the
//! self-stabilization tier.
//!
//! Every reachable state of a fault-free end-point satisfies every check
//! in this module (pinned by the exploration cross-check in
//! `vsgm-explore`); a state damaged by [`crate::corrupt`] generally does
//! not. The end-point runs [`check`] on its tick cadence when
//! [`crate::Config::audit`] is set and, on failure, reconciles through
//! the §8 crash/recovery path — see [`crate::endpoint`].
//!
//! The checks deliberately overlap the paper's proof invariants
//! ([`crate::invariants`]) but are written against each field of
//! [`State`] directly: the audit is the *coverage* surface (the analyzer
//! `A1` rule requires every `State` field to be referenced here), and a
//! detection must name the specific field-level contradiction for the
//! minimized counterexample to be actionable.
//!
//! Soundness notes (why these hold in every legal state):
//!
//! * Delivery advances contiguously from index 1 over
//!   `msgs[q][current_view]` and messages are never removed from a live
//!   buffer (`gc` only prunes generations older than the previous view),
//!   so `last_dlvrd[q]` never exceeds the buffered gap-free prefix.
//! * The own current-view buffer is filled only by `push`, so it has no
//!   gaps, and `last_sent` only advances over existing entries.
//! * `last_rcvd[q]` is reset when a `view_msg` from `q` arrives and then
//!   advances in lock-step with inserts into `msgs[q][view_msg[q]]`; the
//!   check is gated on that buffer still existing because garbage
//!   collection may legitimately prune a lagging sender's stream.

use crate::config::Config;
use crate::state::{BlockStatus, State};
use crate::vs;
use std::fmt;

/// A failed audit check: which predicate tripped and the field-level
/// contradiction it saw. Carried on the
/// [`crate::endpoint::ObsEvent`]-recorded detection and in test
/// assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// Stable name of the violated check (e.g. `"own_stream_contiguous"`).
    pub check: &'static str,
    /// Human-readable description of the contradiction.
    pub detail: String,
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit check {} failed: {}", self.check, self.detail)
    }
}

fn fail(check: &'static str, detail: String) -> Result<(), AuditFailure> {
    Err(AuditFailure { check, detail })
}

/// Runs every audit check against `st`. `Ok(())` means the state is
/// legal as far as local knowledge goes; the first contradiction found
/// is returned otherwise. Crashed end-points are exempt (their state is
/// frozen mid-action and will be reset on recovery anyway).
pub fn check(cfg: &Config, st: &State) -> Result<(), AuditFailure> {
    if st.crashed {
        return Ok(());
    }
    view_ids_monotone(st)?;
    self_inclusion(st)?;
    announced_view_not_ahead(st)?;
    own_stream_contiguous(st)?;
    sent_within_buffer(st)?;
    delivered_within_prefix(st)?;
    received_within_stream(st)?;
    delivery_within_bound(cfg, st)?;
    reliable_covers_view(st)?;
    own_sync_in_current_view(st)?;
    own_cut_commits_all_sent(st)?;
    cut_covered_by_buffers(st)?;
    sync_cids_tracked(st)?;
    forwarded_backed_by_buffer(st)?;
    block_status_implies_change(st)?;
    pending_sends_gated(st)?;
    agg_state_gated(cfg, st)?;
    batch_clock_monotone(st)
}

/// `mbrshp_view.id ≥ current_view.id`: the membership service never
/// moves backwards past an installed view.
fn view_ids_monotone(st: &State) -> Result<(), AuditFailure> {
    if st.mbrshp_view.id() < st.current_view.id() {
        return fail(
            "view_ids_monotone",
            format!("mbrshp_view {} behind current_view {}", st.mbrshp_view, st.current_view),
        );
    }
    Ok(())
}

/// Self Inclusion (Invariant 6.1), extended to every membership-shaped
/// field: the end-point is in both tracked views, keeps a reliable
/// channel to itself, and any pending change suggests a set containing
/// it.
fn self_inclusion(st: &State) -> Result<(), AuditFailure> {
    if !st.current_view.contains(st.pid) {
        return fail(
            "self_inclusion",
            format!("{} missing from current_view {}", st.pid, st.current_view),
        );
    }
    if !st.mbrshp_view.contains(st.pid) {
        return fail(
            "self_inclusion",
            format!("{} missing from mbrshp_view {}", st.pid, st.mbrshp_view),
        );
    }
    if !st.reliable_set.contains(&st.pid) {
        return fail(
            "self_inclusion",
            format!("{} missing from reliable_set {:?}", st.pid, st.reliable_set),
        );
    }
    if let Some((cid, set)) = &st.start_change {
        if !set.contains(&st.pid) {
            return fail(
                "self_inclusion",
                format!("{} missing from start_change({cid}) set {set:?}", st.pid),
            );
        }
    }
    Ok(())
}

/// The view we last announced (`view_msg[pid]`) is never ahead of the
/// view we installed.
fn announced_view_not_ahead(st: &State) -> Result<(), AuditFailure> {
    if let Some(v) = st.view_msg.get(&st.pid) {
        if v.id() > st.current_view.id() {
            return fail(
                "announced_view_not_ahead",
                format!("announced {} but current_view is {}", v, st.current_view),
            );
        }
    }
    Ok(())
}

/// The own current-view stream is filled only by appends, so it has no
/// gaps: its gap-free prefix equals its last populated index.
fn own_stream_contiguous(st: &State) -> Result<(), AuditFailure> {
    if let Some(buf) = st.buf(st.pid, &st.current_view) {
        if buf.longest_prefix() != buf.last_index() {
            return fail(
                "own_stream_contiguous",
                format!(
                    "own buffer has prefix {} but last index {}",
                    buf.longest_prefix(),
                    buf.last_index()
                ),
            );
        }
    }
    Ok(())
}

/// `last_sent` counts messages actually present in the own current-view
/// buffer.
fn sent_within_buffer(st: &State) -> Result<(), AuditFailure> {
    let have = st.buf(st.pid, &st.current_view).map_or(0, |b| b.last_index());
    if st.last_sent > have {
        return fail(
            "sent_within_buffer",
            format!("last_sent {} exceeds own buffer last index {have}", st.last_sent),
        );
    }
    Ok(())
}

/// `last_dlvrd[q]` never exceeds the gap-free prefix buffered from `q`
/// in the current view, and the own entry never exceeds `last_sent`.
fn delivered_within_prefix(st: &State) -> Result<(), AuditFailure> {
    for (q, dlvrd) in &st.last_dlvrd {
        let have = st.buf(*q, &st.current_view).map_or(0, |b| b.longest_prefix());
        if *dlvrd > have {
            return fail(
                "delivered_within_prefix",
                format!("delivered {dlvrd} from {q} but only {have} buffered gap-free"),
            );
        }
    }
    if st.dlvrd(st.pid) > st.last_sent {
        return fail(
            "delivered_within_prefix",
            format!("delivered {} own messages but sent {}", st.dlvrd(st.pid), st.last_sent),
        );
    }
    Ok(())
}

/// `last_rcvd[q]` counts inserts into `msgs[q][view_msg[q]]`, so while
/// that buffer is live its last index covers the counter. (Skipped when
/// garbage collection pruned the buffer.)
fn received_within_stream(st: &State) -> Result<(), AuditFailure> {
    for (q, rcvd) in &st.last_rcvd {
        let v = st.view_msg_of(*q);
        if let Some(buf) = st.buf(*q, &v) {
            if *rcvd > buf.last_index() {
                return fail(
                    "received_within_stream",
                    format!(
                        "last_rcvd[{q}] = {rcvd} but msgs[{q}][{v}] ends at {}",
                        buf.last_index()
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Invariant 7.1 with the configured optimization profile: deliveries
/// never exceed the committed bound.
fn delivery_within_bound(cfg: &Config, st: &State) -> Result<(), AuditFailure> {
    for q in st.current_view.members() {
        if let Some(bound) = vs::delivery_bound_with(st, *q, cfg.implicit_cuts) {
            if st.dlvrd(*q) > bound {
                return fail(
                    "delivery_within_bound",
                    format!("delivered {} from {q}, committed bound is {bound}", st.dlvrd(*q)),
                );
            }
        }
    }
    Ok(())
}

/// Invariant 6.2: once the current view has been announced, reliable
/// channels cover its members.
fn reliable_covers_view(st: &State) -> Result<(), AuditFailure> {
    if st.view_msg_of(st.pid) == st.current_view {
        for m in st.current_view.members() {
            if !st.reliable_set.contains(m) {
                return fail(
                    "reliable_covers_view",
                    format!("view announced but {m} not in reliable_set {:?}", st.reliable_set),
                );
            }
        }
    }
    Ok(())
}

/// Invariant 6.9: the own synchronization message for the pending
/// change, if sent, was computed in the current view.
fn own_sync_in_current_view(st: &State) -> Result<(), AuditFailure> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            if rec.view.as_ref() != Some(&st.current_view) {
                return fail(
                    "own_sync_in_current_view",
                    format!(
                        "own sync for {cid} carries view {:?}, current is {}",
                        rec.view, st.current_view
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Invariant 6.13: the own committed cut covers every own message in
/// the current-view buffer.
fn own_cut_commits_all_sent(st: &State) -> Result<(), AuditFailure> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            let sent = st.buf(st.pid, &st.current_view).map_or(0, |b| b.last_index());
            if rec.cut.get(st.pid) != sent {
                return fail(
                    "own_cut_commits_all_sent",
                    format!("own cut commits {} of {sent} own messages", rec.cut.get(st.pid)),
                );
            }
        }
    }
    Ok(())
}

/// Invariant 7.2: the own cut only commits to messages buffered
/// gap-free locally.
fn cut_covered_by_buffers(st: &State) -> Result<(), AuditFailure> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            for (q, committed) in rec.cut.iter() {
                let have = st.buf(q, &st.current_view).map_or(0, |b| b.longest_prefix());
                if committed > have {
                    return fail(
                        "cut_covered_by_buffers",
                        format!("own cut commits {committed} from {q} but only {have} buffered"),
                    );
                }
            }
        }
    }
    Ok(())
}

/// `latest_sync_cid[q]` tracks the maximum over the stored `sync_msgs`
/// cells of each *peer* (the own cells are indexed by the local cid
/// directly).
fn sync_cids_tracked(st: &State) -> Result<(), AuditFailure> {
    for (q, cid) in st.sync_msgs.keys() {
        if *q == st.pid {
            continue;
        }
        let latest = st.latest_sync_cid.get(q).copied();
        if latest.is_none() || latest.is_some_and(|l| l < *cid) {
            return fail(
                "sync_cids_tracked",
                format!("sync_msgs holds ({q},{cid}) but latest_sync_cid[{q}] = {latest:?}"),
            );
        }
    }
    Ok(())
}

/// Every `forwarded` record points at a message still present in the
/// buffer it was copied from (buffers and forwarding records are
/// garbage-collected under the same view floor).
fn forwarded_backed_by_buffer(st: &State) -> Result<(), AuditFailure> {
    for (dest, origin, v, idx) in &st.forwarded {
        let present = st.msgs.get(&(*origin, v.clone())).is_some_and(|b| b.get(*idx).is_some());
        if !present {
            return fail(
                "forwarded_backed_by_buffer",
                format!("forwarded msgs[{origin}][{v}][{idx}] to {dest} but do not buffer it"),
            );
        }
    }
    Ok(())
}

/// The block handshake only runs while a view change is pending.
fn block_status_implies_change(st: &State) -> Result<(), AuditFailure> {
    if st.block_status != BlockStatus::Unblocked && st.start_change.is_none() {
        return fail(
            "block_status_implies_change",
            format!("block_status {:?} with no pending start_change", st.block_status),
        );
    }
    Ok(())
}

/// Sends are queued for the next view only while a change is pending.
fn pending_sends_gated(st: &State) -> Result<(), AuditFailure> {
    if !st.pending_sends.is_empty() && st.start_change.is_none() {
        return fail(
            "pending_sends_gated",
            format!("{} queued sends with no pending start_change", st.pending_sends.len()),
        );
    }
    Ok(())
}

/// §9 aggregation bookkeeping stays empty when the extension is off,
/// and never outlives the change scope it belongs to.
fn agg_state_gated(cfg: &Config, st: &State) -> Result<(), AuditFailure> {
    if !cfg.aggregation && (!st.agg_buffer.is_empty() || st.agg_flushed) {
        return fail(
            "agg_state_gated",
            format!(
                "aggregation off but agg_buffer has {} entries, agg_flushed = {}",
                st.agg_buffer.len(),
                st.agg_flushed
            ),
        );
    }
    if (!st.agg_buffer.is_empty() || st.agg_flushed) && st.agg_scope.is_none() {
        return fail(
            "agg_state_gated",
            "aggregation state present with no agg_scope".to_string(),
        );
    }
    Ok(())
}

/// The batching linger deadline never opens in the future of the local
/// clock.
fn batch_clock_monotone(st: &State) -> Result<(), AuditFailure> {
    if let Some(opened) = st.batch_opened_us {
        if opened > st.now_us {
            return fail(
                "batch_clock_monotone",
                format!("batch opened at {opened}us but now_us is {}", st.now_us),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrupt::{self, CorruptionKind};
    use crate::state::SyncRecord;
    use vsgm_types::{AppMsg, Cut, ProcSet, ProcessId, StartChangeId, View, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    /// A state mid-view-change: three-member view, one own message sent
    /// and self-delivered, pending change with the own sync committed.
    fn busy_state() -> State {
        let v = View::new(
            ViewId::new(1, 0),
            [p(1), p(2), p(3)],
            [
                (p(1), StartChangeId::new(1)),
                (p(2), StartChangeId::new(1)),
                (p(3), StartChangeId::new(1)),
            ],
        );
        let mut st = State::new(p(1));
        st.current_view = v.clone();
        st.mbrshp_view = v.clone();
        st.view_msg.insert(p(1), v.clone());
        st.reliable_set = [p(1), p(2), p(3)].into_iter().collect();
        st.buf_mut(p(1), &v).push(AppMsg::from("m1"));
        st.last_sent = 1;
        st.last_dlvrd.insert(p(1), 1);
        st.buf_mut(p(2), &v).push(AppMsg::from("n1"));
        st.last_rcvd.insert(p(2), 1);
        st.view_msg.insert(p(2), v.clone());
        st.last_dlvrd.insert(p(2), 1);
        let cid = StartChangeId::new(2);
        st.start_change = Some((cid, [p(1), p(2)].into_iter().collect::<ProcSet>()));
        let mut cut = Cut::new();
        cut.set(p(1), 1);
        cut.set(p(2), 1);
        st.sync_msgs
            .insert((p(1), cid), SyncRecord { view: Some(v), cut, stream_pos: 1 });
        st
    }

    #[test]
    fn initial_and_busy_states_pass() {
        let cfg = Config::default();
        check(&cfg, &State::new(p(1))).unwrap();
        check(&cfg, &busy_state()).unwrap();
    }

    #[test]
    fn crashed_states_are_exempt() {
        let mut st = busy_state();
        st.current_view = View::initial(p(9)); // would violate self inclusion ...
        st.crashed = true; // ... but the state is frozen mid-action
        check(&Config::default(), &st).unwrap();
    }

    /// Every corruption kind applied to the busy mid-change state is
    /// caught by the audit (this state has every ingredient, so no kind
    /// degenerates to a no-op).
    #[test]
    fn every_corruption_kind_is_detected_on_the_busy_state() {
        let cfg = Config::default();
        for kind in CorruptionKind::ALL {
            let mut st = busy_state();
            corrupt::apply(&mut st, kind, 0);
            let failure = check(&cfg, &st)
                .expect_err(&format!("{} not detected", kind.name()));
            assert!(!failure.check.is_empty(), "{failure}");
        }
    }

    #[test]
    fn expected_check_fires_per_kind() {
        let cfg = Config::default();
        let expect = [
            (CorruptionKind::ForgeMsgId, "own_stream_contiguous"),
            (CorruptionKind::DupMsgId, "sent_within_buffer"),
            (CorruptionKind::StaleViewId, "view_ids_monotone"),
            (CorruptionKind::FutureViewId, "view_ids_monotone"),
            (CorruptionKind::ScrambleCut, "own_cut_commits_all_sent"),
            (CorruptionKind::ScrambleMembership, "self_inclusion"),
            (CorruptionKind::TruncateMsgs, "delivered_within_prefix"),
            (CorruptionKind::OverrunLastDlvrd, "delivered_within_prefix"),
        ];
        for (kind, check_name) in expect {
            let mut st = busy_state();
            corrupt::apply(&mut st, kind, 0);
            let failure = check(&cfg, &st).expect_err(check_name);
            assert_eq!(failure.check, check_name, "{kind:?}: {failure}");
        }
    }

    #[test]
    fn no_op_kinds_leave_the_initial_state_legal() {
        // On the untouched initial state some kinds have nothing to
        // scramble; applying them must not create an illegal state out
        // of thin air (the convergence judge counts these runs as
        // trivially converged).
        let cfg = Config::default();
        for kind in [CorruptionKind::ScrambleCut, CorruptionKind::TruncateMsgs] {
            let mut st = State::new(p(1));
            corrupt::apply(&mut st, kind, 0);
            check(&cfg, &st).unwrap();
        }
    }

    #[test]
    fn stale_view_detection_needs_a_non_initial_view() {
        // StaleViewId rolls mbrshp_view back to the initial view — a
        // no-op (still legal) when the end-point never left it.
        let cfg = Config::default();
        let mut st = State::new(p(1));
        corrupt::apply(&mut st, CorruptionKind::StaleViewId, 0);
        check(&cfg, &st).unwrap();
    }

    #[test]
    fn audit_failure_displays_check_name() {
        let mut st = busy_state();
        corrupt::apply(&mut st, CorruptionKind::DupMsgId, 1);
        let failure = check(&Config::default(), &st).unwrap_err();
        assert!(failure.to_string().contains("sent_within_buffer"));
    }
}
