//! A runtime node: an [`Endpoint`] pumped over a real [`Transport`].

use crate::endpoint::{Effect, Endpoint, Input};
use std::io;
use std::time::{Duration, Instant};
use vsgm_net::Transport;
use vsgm_types::{AppMsg, ProcSet, ProcessId, View};

/// An application-facing event produced by a [`Node`] pump.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// A multicast message was delivered.
    Delivered {
        /// Original sender.
        from: ProcessId,
        /// The payload.
        msg: AppMsg,
    },
    /// A new view was installed.
    View {
        /// The view.
        view: View,
        /// Its transitional set.
        transitional: ProcSet,
    },
    /// The GCS asked the application to stop sending (only surfaced when
    /// [`Node::set_auto_block_ok`] is disabled).
    BlockRequested,
}

/// A single-threaded pump binding an [`Endpoint`] to a [`Transport`]
/// (e.g. [`vsgm_net::TcpTransport`]): incoming frames are fed to the
/// endpoint, its `NetSend` effects go back out, and application-facing
/// effects are returned to the caller.
///
/// Transports are assumed reliable per connected pair (TCP is), so
/// `SetReliable` effects are informational and dropped.
#[derive(Debug)]
pub struct Node<T: Transport> {
    ep: Endpoint,
    transport: T,
    auto_block_ok: bool,
    /// Origin of the endpoint's [`Input::Tick`] timebase (wall clock,
    /// measured from node creation).
    epoch: Instant,
}

impl<T: Transport> Node<T> {
    /// Wraps `ep` over `transport`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint and transport disagree about the identity.
    pub fn new(ep: Endpoint, transport: T) -> Self {
        assert_eq!(ep.pid(), transport.me(), "endpoint/transport identity mismatch");
        // vsgm-allow(D1, T1): the tick epoch is driver-shell bookkeeping;
        // the endpoint only ever sees the derived monotone microsecond
        // input.
        Node { ep, transport, auto_block_ok: true, epoch: Instant::now() }
    }

    /// Whether `block` requests are auto-acknowledged (default: true).
    /// Disable to drive the handshake from application code.
    pub fn set_auto_block_ok(&mut self, auto: bool) {
        self.auto_block_ok = auto;
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// The transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The endpoint's protocol counters.
    pub fn stats(&self) -> crate::endpoint::EndpointStats {
        self.ep.stats()
    }

    /// Multicasts `m` to the current view and pumps.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn send(&mut self, m: AppMsg) -> io::Result<Vec<AppEvent>> {
        let effects = self.ep.handle(Input::AppSend(m));
        let mut out = self.dispatch(effects)?;
        out.extend(self.pump(Duration::ZERO)?);
        Ok(out)
    }

    /// Feeds a membership notification (`StartChange` / `MbrshpView`) and
    /// pumps.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn membership(&mut self, input: Input) -> io::Result<Vec<AppEvent>> {
        let effects = self.ep.handle(input);
        let mut out = self.dispatch(effects)?;
        out.extend(self.pump(Duration::ZERO)?);
        Ok(out)
    }

    /// Acknowledges a block request (when auto-ack is disabled).
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn block_ok(&mut self) -> io::Result<Vec<AppEvent>> {
        let effects = self.ep.handle(Input::BlockOk);
        let mut out = self.dispatch(effects)?;
        out.extend(self.pump(Duration::ZERO)?);
        Ok(out)
    }

    /// Runs one pump cycle: drains the transport for up to `wait`, feeds
    /// everything to the endpoint, fires its enabled actions, sends its
    /// outgoing traffic, and returns application-facing events.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn pump(&mut self, wait: Duration) -> io::Result<Vec<AppEvent>> {
        // vsgm-allow(D1, T1): pump() is the real-transport driver shell;
        // the deadline only bounds blocking on the socket and never feeds
        // the protocol state machine, which stays deterministic.
        let deadline = Instant::now() + wait;
        let mut out = Vec::new();
        loop {
            // Feed the wall clock as an explicit Tick input (only the
            // batching linger deadline reads it).
            // vsgm-allow(T1): the clock enters the automaton as an Input,
            // same as in the simulator — the transition relation itself
            // stays deterministic in its inputs.
            let now_us = self.epoch.elapsed().as_micros() as u64;
            let _ = self.ep.handle(Input::Tick(now_us));
            // Ingest whatever is queued (blocking up to the deadline for
            // the first frame only).
            let mut got_any = false;
            while let Some((from, msg)) = self.transport.try_recv() {
                got_any = true;
                let effects = self.ep.handle(Input::Net { from, msg });
                out.extend(self.dispatch(effects)?);
            }
            let effects = self.ep.poll();
            let had_effects = !effects.is_empty();
            out.extend(self.dispatch(effects)?);
            if got_any || had_effects {
                continue;
            }
            // vsgm-allow(D1, T1): same deadline bookkeeping — wall-clock
            // never reaches the endpoint automaton.
            let now = Instant::now();
            if now >= deadline {
                return Ok(out);
            }
            // Wake early if a held batch flushes before the caller's
            // deadline, so the linger bound holds under an idle socket.
            let mut wait_for = deadline - now;
            let mut flush_wake = false;
            if let Some(flush_at) = self.ep.next_deadline_us() {
                let remaining = Duration::from_micros(flush_at.saturating_sub(now_us));
                if remaining < wait_for {
                    wait_for = remaining;
                    flush_wake = true;
                }
            }
            match self.transport.recv_timeout(wait_for) {
                Some((from, msg)) => {
                    let effects = self.ep.handle(Input::Net { from, msg });
                    out.extend(self.dispatch(effects)?);
                }
                // A flush wake is not the caller's deadline: loop again
                // (the fresh Tick releases the batch).
                None if flush_wake => {}
                None => return Ok(out),
            }
        }
    }

    fn dispatch(&mut self, effects: Vec<Effect>) -> io::Result<Vec<AppEvent>> {
        let mut out = Vec::new();
        for e in effects {
            match e {
                Effect::NetSend { to, msg } => self.transport.send(&to, &msg)?,
                Effect::SetReliable(_) => {}
                Effect::DeliverApp { from, msg } => {
                    out.push(AppEvent::Delivered { from, msg });
                }
                Effect::InstallView { view, transitional } => {
                    out.push(AppEvent::View { view, transitional });
                }
                Effect::Block => {
                    if self.auto_block_ok {
                        let more = self.ep.handle(Input::BlockOk);
                        out.extend(self.dispatch(more)?);
                    } else {
                        out.push(AppEvent::BlockRequested);
                    }
                }
                // Audit-driven self-reset (never fires here: nodes run
                // with the audit off unless a deployment opts in, and a
                // legal-state endpoint never trips it). The transport
                // reconnects lazily, so no teardown is needed.
                Effect::Reconciled => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use vsgm_net::TcpTransport;
    use vsgm_types::{StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn tcp_pair() -> (Node<TcpTransport>, Node<TcpTransport>) {
        let t1 = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let t2 = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        t1.register_peer(p(2), t2.local_addr());
        t2.register_peer(p(1), t1.local_addr());
        (
            Node::new(Endpoint::new(p(1), Config::default()), t1),
            Node::new(Endpoint::new(p(2), Config::default()), t2),
        )
    }

    fn two_view() -> View {
        View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        )
    }

    fn pump_until<T: Transport>(
        nodes: &mut [&mut Node<T>],
        mut done: impl FnMut(&[AppEvent]) -> bool,
        collected: &mut Vec<AppEvent>,
    ) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done(collected) {
            assert!(Instant::now() < deadline, "timed out; saw {collected:?}");
            for n in nodes.iter_mut() {
                collected.extend(n.pump(Duration::from_millis(5)).unwrap());
            }
        }
    }

    #[test]
    fn two_nodes_over_tcp_form_view_and_exchange() {
        let (mut a, mut b) = tcp_pair();
        let members: ProcSet = [p(1), p(2)].into_iter().collect();
        let view = two_view();
        let mut events = Vec::new();
        for n in [&mut a, &mut b] {
            events.extend(
                n.membership(Input::StartChange {
                    cid: StartChangeId::new(1),
                    set: members.clone(),
                })
                .unwrap(),
            );
        }
        for n in [&mut a, &mut b] {
            events.extend(n.membership(Input::MbrshpView(view.clone())).unwrap());
        }
        pump_until(
            &mut [&mut a, &mut b],
            |evs| evs.iter().filter(|e| matches!(e, AppEvent::View { .. })).count() >= 2,
            &mut events,
        );
        // Multicast a message from a; both applications deliver it.
        events.extend(a.send(AppMsg::from("over tcp")).unwrap());
        pump_until(
            &mut [&mut a, &mut b],
            |evs| {
                evs.iter()
                    .filter(
                        |e| matches!(e, AppEvent::Delivered { msg, .. } if *msg == AppMsg::from("over tcp")),
                    )
                    .count()
                    >= 2
            },
            &mut events,
        );
    }

    #[test]
    fn manual_block_handshake_surfaces_event() {
        let (mut a, b) = tcp_pair();
        a.set_auto_block_ok(false);
        let members: ProcSet = [p(1), p(2)].into_iter().collect();
        let evs = a
            .membership(Input::StartChange { cid: StartChangeId::new(1), set: members.clone() })
            .unwrap();
        assert!(evs.contains(&AppEvent::BlockRequested), "{evs:?}");
        // The sync message is withheld until block_ok.
        let _ = b;
        let evs = a.block_ok().unwrap();
        assert!(evs.is_empty() || !evs.contains(&AppEvent::BlockRequested));
    }
}
