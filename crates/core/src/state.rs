//! End-point state: the union of the state variables of Figs. 9–11.

use std::collections::{BTreeMap, BTreeSet};
use vsgm_types::{AppMsg, Cut, MsgIndex, ProcSet, ProcessId, StartChangeId, View};

/// A 1-indexed, possibly sparse sequence of application messages — one
/// `msgs[q][v]` buffer. Sparse because forwarded messages (Fig. 9,
/// `fwd_msg`) can fill arbitrary indices out of order.
#[derive(Debug, Clone, Default)]
pub struct MsgSeq {
    slots: Vec<Option<AppMsg>>,
}

impl MsgSeq {
    /// The message at 1-based index `i`, if present.
    pub fn get(&self, i: MsgIndex) -> Option<&AppMsg> {
        if i == 0 {
            return None;
        }
        self.slots.get((i - 1) as usize).and_then(Option::as_ref)
    }

    /// Stores a message at 1-based index `i`, growing with gaps as needed;
    /// index 0 is outside the sequence and is ignored. Idempotent for
    /// equal content (forwarded copies of the same original are
    /// identical — Invariant 6.6).
    pub fn set(&mut self, i: MsgIndex, m: AppMsg) {
        let Some(idx) = (i as usize).checked_sub(1) else {
            return;
        };
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, None);
        }
        if let Some(slot) = self.slots.get_mut(idx) {
            *slot = Some(m);
        }
    }

    /// Appends at the next index (original sends from the local client).
    pub fn push(&mut self, m: AppMsg) {
        self.slots.push(Some(m));
    }

    /// `LongestPrefixOf`: the largest `k` such that indices `1..=k` are
    /// all present.
    pub fn longest_prefix(&self) -> MsgIndex {
        self.slots.iter().take_while(|s| s.is_some()).count() as MsgIndex
    }

    /// The largest populated index (0 if empty).
    pub fn last_index(&self) -> MsgIndex {
        self.slots
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| (i + 1) as MsgIndex)
    }

    /// Discards every slot above 1-based index `keep` (so `get(i)` is
    /// `None` for all `i > keep`). Used only by the corruption fault
    /// injector ([`crate::corrupt`]) — no legal transition shrinks a
    /// buffer.
    pub fn truncate(&mut self, keep: MsgIndex) {
        self.slots.truncate(keep as usize);
    }
}

/// A stored synchronization message (one `sync_msg[q][cid]` cell of
/// Fig. 10). `view = None` for §5.2.4 slim messages.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncRecord {
    /// The sender's view at sync time (`None` for slim messages).
    pub view: Option<View>,
    /// The sender's committed delivery cut.
    pub cut: Cut,
    /// Where in the sender's message stream this sync arrived: the
    /// receiver's `last_rcvd[sender]` at receipt (for the local record:
    /// the sender's own `last_sent`). Because syncs travel in-stream on
    /// the same FIFO channels as application messages, this position is
    /// identical at every receiver — the observation behind the second
    /// §5.2.4 optimization ([`crate::Config::implicit_cuts`]).
    pub stream_pos: MsgIndex,
}

/// Block-handshake status (Fig. 11, `block_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockStatus {
    /// The application may send.
    #[default]
    Unblocked,
    /// A `block` request was issued, not yet acknowledged.
    Requested,
    /// The application acknowledged and is silent until the next view.
    Blocked,
}

/// The complete end-point state: Fig. 9 (`WV_RFIFO_p`) plus the state
/// extensions of Fig. 10 (`VS_RFIFO+TS_p`) and Fig. 11 (`GCS_p`).
#[derive(Debug, Clone)]
pub struct State {
    /// This end-point's identity.
    pub pid: ProcessId,

    // ----- WV_RFIFO_p (Fig. 9) -----
    /// `msgs[q][v]`: per-sender, per-view message buffers.
    pub msgs: BTreeMap<(ProcessId, View), MsgSeq>,
    /// Index of the last own message multicast via `CO_RFIFO`.
    pub last_sent: MsgIndex,
    /// `last_rcvd[q]`: last original-stream index received from `q`.
    pub last_rcvd: BTreeMap<ProcessId, MsgIndex>,
    /// `last_dlvrd[q]`: last index delivered to the application from `q`
    /// in the current view.
    pub last_dlvrd: BTreeMap<ProcessId, MsgIndex>,
    /// The view last delivered to the application.
    pub current_view: View,
    /// The view last received from the membership service.
    pub mbrshp_view: View,
    /// `view_msg[q]`: the view conveyed by the latest `view_msg` from `q`
    /// (`view_msg[pid]` = the last view *we* announced).
    pub view_msg: BTreeMap<ProcessId, View>,
    /// Peers we asked `CO_RFIFO` to keep reliable channels to.
    pub reliable_set: ProcSet,

    // ----- VS_RFIFO+TS_p extension (Fig. 10) -----
    /// The pending `start_change`, if a view change is in progress.
    pub start_change: Option<(StartChangeId, ProcSet)>,
    /// `sync_msg[q][cid]` cells.
    pub sync_msgs: BTreeMap<(ProcessId, StartChangeId), SyncRecord>,
    /// Largest sync cid received from each peer (used by the eager
    /// forwarding strategy to find the peer's freshest cut).
    pub latest_sync_cid: BTreeMap<ProcessId, StartChangeId>,
    /// `(dest, origin, view, index)` tuples already forwarded.
    pub forwarded: BTreeSet<(ProcessId, ProcessId, View, MsgIndex)>,

    // ----- GCS_p extension (Fig. 11) -----
    /// Block-handshake status with the local application.
    pub block_status: BlockStatus,

    // ----- §9 aggregation extension -----
    /// Leader-side buffer of collected synchronization messages for the
    /// current change: `(sender, cid, record)`.
    pub agg_buffer: BTreeMap<ProcessId, (StartChangeId, SyncRecord)>,
    /// Whether the leader already flushed the batched aggregate for the
    /// current change (stragglers are then relayed individually).
    pub agg_flushed: bool,
    /// The suggested set of the latest change, kept across view
    /// installation so the leader can still relay straggler syncs to
    /// members that have not installed yet.
    pub agg_scope: Option<ProcSet>,

    // ----- endpoint batching extension (see `crate::batch`) -----
    /// The end-point's monotone local clock in microseconds, fed by
    /// [`crate::Input::Tick`] (simulated time under the harness, wall
    /// clock in a real node pump). Only the batching linger deadline reads
    /// it — the protocol automata stay time-free.
    pub now_us: u64,
    /// When the oldest unsent own message entered the pending batch (for
    /// the linger deadline); `None` while nothing is pending.
    pub batch_opened_us: Option<u64>,
    /// Application sends received after the own synchronization message
    /// for an in-progress view change was already sent: the committed cut
    /// excludes them, so they are queued here and re-issued in the *next*
    /// view instead of being stamped with the old one (see
    /// [`crate::wv::on_app_send`]).
    pub pending_sends: Vec<AppMsg>,

    // ----- §8 crash/recovery -----
    /// While `true`, locally controlled actions and input effects are
    /// disabled.
    pub crashed: bool,
}

impl State {
    /// Initial state of an end-point (everything per Figs. 9–11 initial
    /// values; `current_view = mbrshp_view = v_p`).
    pub fn new(pid: ProcessId) -> Self {
        let initial = View::initial(pid);
        State {
            pid,
            msgs: BTreeMap::new(),
            last_sent: 0,
            last_rcvd: BTreeMap::new(),
            last_dlvrd: BTreeMap::new(),
            current_view: initial.clone(),
            mbrshp_view: initial,
            view_msg: BTreeMap::new(),
            reliable_set: [pid].into_iter().collect(),
            start_change: None,
            sync_msgs: BTreeMap::new(),
            latest_sync_cid: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            block_status: BlockStatus::Unblocked,
            agg_buffer: BTreeMap::new(),
            agg_flushed: false,
            agg_scope: None,
            now_us: 0,
            batch_opened_us: None,
            pending_sends: Vec::new(),
            crashed: false,
        }
    }

    /// The buffer `msgs[q][v]`, creating it lazily.
    pub fn buf_mut(&mut self, q: ProcessId, v: &View) -> &mut MsgSeq {
        self.msgs.entry((q, v.clone())).or_default()
    }

    /// The buffer `msgs[q][v]` if it exists.
    pub fn buf(&self, q: ProcessId, v: &View) -> Option<&MsgSeq> {
        self.msgs.get(&(q, v.clone()))
    }

    /// `view_msg[q]`, defaulting to `q`'s initial view.
    pub fn view_msg_of(&self, q: ProcessId) -> View {
        self.view_msg.get(&q).cloned().unwrap_or_else(|| View::initial(q))
    }

    /// `last_dlvrd[q]`, defaulting to 0.
    pub fn dlvrd(&self, q: ProcessId) -> MsgIndex {
        self.last_dlvrd.get(&q).copied().unwrap_or(0)
    }

    /// `last_rcvd[q]`, defaulting to 0.
    pub fn rcvd(&self, q: ProcessId) -> MsgIndex {
        self.last_rcvd.get(&q).copied().unwrap_or(0)
    }

    /// `sync_msg[q][cid]`, if received/sent.
    pub fn sync(&self, q: ProcessId, cid: StartChangeId) -> Option<&SyncRecord> {
        self.sync_msgs.get(&(q, cid))
    }

    /// The cut this end-point would commit to right now: for every member
    /// `q` of the current view, the longest gap-free prefix of
    /// `msgs[q][current_view]` (Fig. 10, `co_rfifo.send sync_msg`
    /// precondition).
    pub fn commit_cut(&self) -> Cut {
        self.current_view
            .members()
            .iter()
            .map(|q| {
                let n = self.buf(*q, &self.current_view).map_or(0, MsgSeq::longest_prefix);
                (*q, n)
            })
            .collect()
    }

    /// The transitional set for moving from `current_view` into
    /// `mbrshp_view` based on the synchronization messages selected by the
    /// view's `startId` map — `None` if some required sync message is
    /// still missing (Fig. 10, `view` precondition).
    pub fn transitional_set(&self) -> Option<ProcSet> {
        let v_new = &self.mbrshp_view;
        let mut t = ProcSet::new();
        for q in v_new.intersection(&self.current_view) {
            let cid = v_new.start_id(q)?;
            let rec = self.sync(q, cid)?;
            if rec.view.as_ref() == Some(&self.current_view) {
                t.insert(q);
            }
        }
        Some(t)
    }

    /// Drops buffers and bookkeeping older than the previous view
    /// generation. One generation is kept because forwarding duties for
    /// the view just left may still be pending.
    pub fn gc(&mut self, previous_view: &View) {
        let floor = previous_view.id();
        self.msgs.retain(|(_, v), _| v.id() >= floor);
        self.forwarded.retain(|(_, _, v, _)| v.id() >= floor);
        // Sync records older than the previous view's start ids are dead:
        // future views carry strictly newer cids per member.
        let prev = previous_view.clone();
        self.sync_msgs.retain(|(q, cid), _| match prev.start_id(*q) {
            Some(prev_cid) => *cid >= prev_cid,
            None => true,
        });
    }

    /// Resets everything to the initial state (§8 recovery — no stable
    /// storage). The local clock survives: recovery does not move time
    /// backwards.
    pub fn reset(&mut self) {
        let now_us = self.now_us;
        *self = State::new(self.pid);
        self.now_us = now_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn msg_seq_push_and_get() {
        let mut s = MsgSeq::default();
        s.push(AppMsg::from("a"));
        s.push(AppMsg::from("b"));
        assert_eq!(s.get(1), Some(&AppMsg::from("a")));
        assert_eq!(s.get(2), Some(&AppMsg::from("b")));
        assert_eq!(s.get(3), None);
        assert_eq!(s.get(0), None);
        assert_eq!(s.longest_prefix(), 2);
        assert_eq!(s.last_index(), 2);
    }

    #[test]
    fn msg_seq_sparse_fill() {
        let mut s = MsgSeq::default();
        s.set(3, AppMsg::from("c"));
        assert_eq!(s.longest_prefix(), 0);
        assert_eq!(s.last_index(), 3);
        s.set(1, AppMsg::from("a"));
        assert_eq!(s.longest_prefix(), 1);
        s.set(2, AppMsg::from("b"));
        assert_eq!(s.longest_prefix(), 3);
    }

    #[test]
    fn msg_seq_ignores_index_zero() {
        let mut s = MsgSeq::default();
        s.set(0, AppMsg::from("x"));
        assert_eq!(s.get(0), None);
        assert_eq!(s.last_index(), 0);
        assert_eq!(s.longest_prefix(), 0);
    }

    #[test]
    fn initial_state_matches_figures() {
        let st = State::new(p(1));
        assert_eq!(st.current_view, View::initial(p(1)));
        assert_eq!(st.mbrshp_view, View::initial(p(1)));
        assert_eq!(st.reliable_set, [p(1)].into_iter().collect());
        assert_eq!(st.last_sent, 0);
        assert!(st.start_change.is_none());
        assert_eq!(st.block_status, BlockStatus::Unblocked);
        assert!(!st.crashed);
    }

    #[test]
    fn commit_cut_covers_current_view_members() {
        let mut st = State::new(p(1));
        st.buf_mut(p(1), &View::initial(p(1))).push(AppMsg::from("m"));
        let cut = st.commit_cut();
        assert_eq!(cut.get(p(1)), 1);
        assert_eq!(cut.get(p(2)), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut st = State::new(p(1));
        st.last_sent = 5;
        st.crashed = true;
        st.reset();
        assert_eq!(st.last_sent, 0);
        assert!(!st.crashed);
        assert_eq!(st.pid, p(1));
    }
}
