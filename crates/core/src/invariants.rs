//! The paper's numbered invariants (§6–§7) as executable state checks.
//!
//! The correctness proofs rest on invariant assertions over reachable
//! states. This module re-states the machine-checkable ones as functions
//! over end-point states (and, for the cross-process ones, over the set
//! of all states), so the test suites can assert them on every reachable
//! state a simulation visits — a mechanical audit of the proof's load-
//! bearing claims.
//!
//! | Function | Paper invariant |
//! |---|---|
//! | [`self_inclusion`] | Invariant 6.1: `p ∈ mbrshp_view.set ∧ p ∈ current_view.set` |
//! | [`reliable_covers_view`] | Invariant 6.2: once the view is announced, `current_view.set ⊆ reliable_set` |
//! | [`own_sync_in_current_view`] | Invariant 6.9: the pending change's own sync was computed in the current view |
//! | [`own_cut_commits_all_sent`] | Invariant 6.13: with a blocking client, the own cut covers every own message |
//! | [`delivery_within_bound`] | Invariant 7.1: no delivery beyond the committed bound |
//! | [`cut_covered_by_buffers`] | Invariant 7.2: the own cut only names messages actually buffered |
//! | [`sync_records_agree`] | Invariant 6.7: received sync records equal the sender's own record |
//! | [`buffers_agree_with_origin`] | Invariant 6.6(3): buffered copies equal the original sender's copy |
//! | [`view_ids_monotone`] | `mbrshp_view.id ≥ current_view.id` (used throughout §7) |

use crate::state::State;
use crate::vs;

/// Invariant 6.1 — Self Inclusion in both tracked views.
pub fn self_inclusion(st: &State) -> Result<(), String> {
    if !st.mbrshp_view.contains(st.pid) {
        return Err(format!("6.1: {} not in mbrshp_view {}", st.pid, st.mbrshp_view));
    }
    if !st.current_view.contains(st.pid) {
        return Err(format!("6.1: {} not in current_view {}", st.pid, st.current_view));
    }
    Ok(())
}

/// Invariant 6.2 — if the current view has been announced
/// (`view_msg[p] = current_view`), reliable channels cover it.
pub fn reliable_covers_view(st: &State) -> Result<(), String> {
    if st.view_msg_of(st.pid) == st.current_view {
        for m in st.current_view.members() {
            if !st.reliable_set.contains(m) {
                return Err(format!(
                    "6.2: view announced but {m} not in reliable_set {:?}",
                    st.reliable_set
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 6.9 — the synchronization message for the pending change,
/// if already sent, was computed in the current view.
pub fn own_sync_in_current_view(st: &State) -> Result<(), String> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            if rec.view.as_ref() != Some(&st.current_view) {
                return Err(format!(
                    "6.9: own sync for {cid} carries view {:?}, current is {}",
                    rec.view, st.current_view
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 6.13 — with a blocking client (the full stack), the own cut
/// commits to *every* message the application sent in the current view.
pub fn own_cut_commits_all_sent(st: &State) -> Result<(), String> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            let sent = st.buf(st.pid, &st.current_view).map_or(0, |b| b.last_index());
            if rec.cut.get(st.pid) != sent {
                return Err(format!(
                    "6.13: own cut commits {} of {} own messages",
                    rec.cut.get(st.pid),
                    sent
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 7.1 — deliveries never exceed the committed bound.
pub fn delivery_within_bound(st: &State) -> Result<(), String> {
    for q in st.current_view.members() {
        if let Some(bound) = vs::delivery_bound(st, *q) {
            if st.dlvrd(*q) > bound {
                return Err(format!(
                    "7.1: delivered {} from {q}, bound is {bound}",
                    st.dlvrd(*q)
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 7.2 — the own cut only commits to messages present (as a
/// gap-free prefix) in the local buffers.
pub fn cut_covered_by_buffers(st: &State) -> Result<(), String> {
    if let Some((cid, _)) = &st.start_change {
        if let Some(rec) = st.sync(st.pid, *cid) {
            for (q, committed) in rec.cut.iter() {
                let have = st.buf(q, &st.current_view).map_or(0, |b| b.longest_prefix());
                if committed > have {
                    return Err(format!(
                        "7.2: cut commits {committed} from {q} but only {have} buffered"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// `mbrshp_view.id ≥ current_view.id` in every reachable state.
pub fn view_ids_monotone(st: &State) -> Result<(), String> {
    if st.mbrshp_view.id() < st.current_view.id() {
        return Err(format!(
            "mbrshp_view {} behind current_view {}",
            st.mbrshp_view, st.current_view
        ));
    }
    Ok(())
}

/// Every local invariant at once (skipped for crashed end-points, whose
/// state is frozen mid-action).
pub fn check_local(st: &State) -> Result<(), String> {
    if st.crashed {
        return Ok(());
    }
    self_inclusion(st)?;
    reliable_covers_view(st)?;
    own_sync_in_current_view(st)?;
    own_cut_commits_all_sent(st)?;
    delivery_within_bound(st)?;
    cut_covered_by_buffers(st)?;
    view_ids_monotone(st)
}

/// Invariant 6.7 — a synchronization record held *about* `p` equals the
/// record `p` holds about itself (when `p` still has it; garbage
/// collection may have pruned old generations).
pub fn sync_records_agree<'a>(states: impl Iterator<Item = &'a State> + Clone) -> Result<(), String> {
    let all: Vec<&State> = states.collect();
    for holder in &all {
        for ((sender, cid), rec) in &holder.sync_msgs {
            if *sender == holder.pid {
                continue;
            }
            let Some(origin) = all.iter().find(|s| s.pid == *sender) else { continue };
            if origin.crashed {
                continue; // §8: the origin restarted; its record is gone
            }
            if let Some(own) = origin.sync(*sender, *cid) {
                // Slim messages legitimately differ (no view/cut); the
                // stream position is receiver-local; and under the
                // implicit-cuts optimization the wire cut is a
                // *restriction* of the origin's (continuing-member entries
                // elided). So: views must match, and every entry the
                // holder has must equal the origin's.
                if rec.view.is_some() {
                    if rec.view != own.view {
                        return Err(format!(
                            "6.7: {}'s record of sync({sender},{cid}) carries view {:?}, \
                             origin has {:?}",
                            holder.pid, rec.view, own.view
                        ));
                    }
                    for (q, idx) in rec.cut.iter() {
                        if own.cut.get(q) != idx {
                            return Err(format!(
                                "6.7: {}'s record of sync({sender},{cid}) says cut({q})={idx}, \
                                 origin says {}",
                                holder.pid,
                                own.cut.get(q)
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Invariant 6.6(3) — every buffered copy of a message equals the
/// original sender's copy (when the sender still buffers that view).
pub fn buffers_agree_with_origin<'a>(
    states: impl Iterator<Item = &'a State> + Clone,
) -> Result<(), String> {
    let all: Vec<&State> = states.collect();
    for holder in &all {
        for ((sender, view), seq) in &holder.msgs {
            if *sender == holder.pid {
                continue;
            }
            let Some(origin) = all.iter().find(|s| s.pid == *sender) else { continue };
            if origin.crashed {
                continue;
            }
            let Some(own) = origin.buf(*sender, view) else { continue };
            for i in 1..=seq.last_index() {
                if let Some(m) = seq.get(i) {
                    match own.get(i) {
                        Some(orig) if orig == m => {}
                        Some(orig) => {
                            return Err(format!(
                                "6.6: {}'s copy of msgs[{sender}][{view}][{i}] = {m:?} \
                                 differs from origin's {orig:?}",
                                holder.pid
                            ))
                        }
                        None => {
                            return Err(format!(
                                "6.6: {} buffers msgs[{sender}][{view}][{i}] the origin \
                                 never sent",
                                holder.pid
                            ))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Corollary 6.1 flavor: two end-points holding the full sync record set
/// for the same `(view, startId-selected cids)` compute the same
/// transitional set. Checked pairwise over ready end-points.
pub fn transitional_sets_agree<'a>(
    states: impl Iterator<Item = &'a State> + Clone,
) -> Result<(), String> {
    let all: Vec<&State> = states.collect();
    for a in &all {
        for b in &all {
            if a.pid >= b.pid || a.crashed || b.crashed {
                continue;
            }
            if a.mbrshp_view != b.mbrshp_view || a.current_view != b.current_view {
                continue;
            }
            if let (Some(ta), Some(tb)) = (a.transitional_set(), b.transitional_set()) {
                if ta != tb {
                    return Err(format!(
                        "Cor 6.1: {} computes T={ta:?} but {} computes T={tb:?} for the \
                         same transition",
                        a.pid, b.pid
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Every cross-process invariant at once.
pub fn check_global<'a>(states: impl Iterator<Item = &'a State> + Clone) -> Result<(), String> {
    sync_records_agree(states.clone())?;
    buffers_agree_with_origin(states.clone())?;
    transitional_sets_agree(states)
}

/// One call for a set of end-points: all local + all global invariants.
pub fn check_all<'a>(states: impl Iterator<Item = &'a State> + Clone) -> Result<(), String> {
    for st in states.clone() {
        check_local(st).map_err(|e| format!("{}: {e}", st.pid))?;
    }
    check_global(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SyncRecord;
    use vsgm_types::ProcessId;
    use crate::wv;
    use vsgm_types::{AppMsg, Cut, ProcSet, StartChangeId, View, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn healthy_state() -> State {
        State::new(p(1))
    }

    #[test]
    fn initial_state_satisfies_all_local_invariants() {
        check_local(&healthy_state()).unwrap();
    }

    #[test]
    fn self_inclusion_detects_foreign_view() {
        let mut st = healthy_state();
        st.current_view = View::initial(p(2));
        assert!(self_inclusion(&st).unwrap_err().contains("6.1"));
    }

    #[test]
    fn reliable_coverage_detects_gap() {
        let mut st = healthy_state();
        let v = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        );
        st.mbrshp_view = v.clone();
        wv::view_eff(&mut st);
        st.view_msg.insert(p(1), v); // announced, but reliable_set = {p1}
        assert!(reliable_covers_view(&st).unwrap_err().contains("6.2"));
    }

    #[test]
    fn own_sync_view_mismatch_detected() {
        let mut st = healthy_state();
        st.start_change = Some((StartChangeId::new(1), [p(1)].into_iter().collect::<ProcSet>()));
        st.sync_msgs.insert(
            (p(1), StartChangeId::new(1)),
            SyncRecord { view: Some(View::initial(p(9))), cut: Cut::new(), stream_pos: 0 },
        );
        assert!(own_sync_in_current_view(&st).unwrap_err().contains("6.9"));
    }

    #[test]
    fn uncommitted_own_message_detected() {
        let mut st = healthy_state();
        st.start_change = Some((StartChangeId::new(1), [p(1)].into_iter().collect::<ProcSet>()));
        st.sync_msgs.insert(
            (p(1), StartChangeId::new(1)),
            SyncRecord { view: Some(st.current_view.clone()), cut: Cut::new(), stream_pos: 0 },
        );
        // A message the cut missed lands in the buffer directly: the
        // legitimate send path (`wv::on_app_send`) now queues sends that
        // arrive after the own sync, so the corrupt state must be forged.
        let v = st.current_view.clone();
        st.buf_mut(p(1), &v).push(AppMsg::from("late"));
        assert!(own_cut_commits_all_sent(&st).unwrap_err().contains("6.13"));
    }

    #[test]
    fn over_delivery_detected() {
        let mut st = healthy_state();
        st.start_change = Some((StartChangeId::new(1), [p(1)].into_iter().collect::<ProcSet>()));
        st.sync_msgs.insert(
            (p(1), StartChangeId::new(1)),
            SyncRecord { view: Some(st.current_view.clone()), cut: Cut::new(), stream_pos: 0 },
        );
        st.last_dlvrd.insert(p(1), 5); // beyond the (empty) cut
        assert!(delivery_within_bound(&st).unwrap_err().contains("7.1"));
    }

    #[test]
    fn phantom_cut_detected() {
        let mut st = healthy_state();
        let mut cut = Cut::new();
        cut.set(p(1), 3); // commits 3 messages we do not have
        st.start_change = Some((StartChangeId::new(1), [p(1)].into_iter().collect::<ProcSet>()));
        st.sync_msgs.insert(
            (p(1), StartChangeId::new(1)),
            SyncRecord { view: Some(st.current_view.clone()), cut, stream_pos: 0 },
        );
        assert!(cut_covered_by_buffers(&st).unwrap_err().contains("7.2"));
    }

    #[test]
    fn sync_record_divergence_detected() {
        let a = {
            let mut st = State::new(p(1));
            let mut cut = Cut::new();
            cut.set(p(9), 7);
            st.sync_msgs.insert(
                (p(2), StartChangeId::new(1)),
                SyncRecord { view: Some(View::initial(p(2))), cut, stream_pos: 0 },
            );
            st
        };
        let b = {
            let mut st = State::new(p(2));
            st.sync_msgs.insert(
                (p(2), StartChangeId::new(1)),
                SyncRecord { view: Some(View::initial(p(2))), cut: Cut::new(), stream_pos: 0 },
            );
            st
        };
        let states = [&a, &b];
        assert!(sync_records_agree(states.into_iter()).unwrap_err().contains("6.7"));
    }

    #[test]
    fn buffer_divergence_detected() {
        let v = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        );
        let origin = {
            let mut st = State::new(p(2));
            st.buf_mut(p(2), &v).push(AppMsg::from("real"));
            st
        };
        let holder = {
            let mut st = State::new(p(1));
            st.buf_mut(p(2), &v).push(AppMsg::from("forged"));
            st
        };
        let states = [&origin, &holder];
        assert!(buffers_agree_with_origin(states.into_iter()).unwrap_err().contains("6.6"));
    }

    #[test]
    fn crashed_endpoints_are_exempt() {
        let mut st = healthy_state();
        st.current_view = View::initial(p(9)); // would violate 6.1 ...
        st.crashed = true; // ... but crashed states are frozen mid-action
        check_local(&st).unwrap();
    }
}
