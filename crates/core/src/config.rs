//! End-point configuration: layer selection and optimization knobs.

use crate::batch::BatchConfig;
use crate::forward::ForwardStrategyKind;

/// Which prefix of the paper's inheritance chain the end-point runs.
///
/// This is the ablation knob for the `ablation_layers` experiment: each
/// variant satisfies the specs of its layer and everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stack {
    /// `WV_RFIFO_p` only (Fig. 9): within-view reliable FIFO multicast.
    Wv,
    /// `VS_RFIFO+TS_p` (Fig. 10): adds Virtual Synchrony and Transitional
    /// Sets.
    VsTs,
    /// `GCS_p` (Fig. 11): adds Self Delivery via application blocking.
    #[default]
    Full,
}

impl Stack {
    /// Whether the Virtual Synchrony / Transitional Set layer is active.
    pub fn has_vs(self) -> bool {
        !matches!(self, Stack::Wv)
    }

    /// Whether the Self Delivery (blocking) layer is active.
    pub fn has_sd(self) -> bool {
        matches!(self, Stack::Full)
    }
}

/// End-point configuration.
///
/// The default is the full paper algorithm with the simple (eager)
/// forwarding strategy and the optimizations off.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Layer selection (ablation knob).
    pub stack: Stack,
    /// Which `ForwardingStrategyPredicate` of §5.2.2 to use.
    pub forward: ForwardStrategyKind,
    /// §5.2.4 optimization: send *slim* synchronization messages (cid
    /// only, no view / cut) to processes outside the current view — they
    /// only need to learn "I am not in your transitional set".
    pub slim_sync: bool,
    /// Second §5.2.4 optimization: omit cut entries about continuing
    /// members (`start_change.set ∩ current_view.set`) — each member's own
    /// synchronization message, riding in-stream on its FIFO channels,
    /// terminates its message sequence identically at every receiver.
    /// Assumes the strengthened membership of §5.2.4 (a fresh
    /// `start_change` whenever the membership changes its mind) and is
    /// incompatible with [`Config::aggregation`] (leader-relayed syncs do
    /// not ride the sender's stream).
    pub implicit_cuts: bool,
    /// §9 extension: aggregate synchronization messages through a
    /// deterministic leader (two-tier hierarchy) instead of all-to-all.
    pub aggregation: bool,
    /// Garbage-collect buffers older than the previous view generation on
    /// view installation. One previous generation is retained because
    /// forwarding obligations for the just-left view may still be pending.
    pub gc_old_views: bool,
    /// Application-message batching stage (see [`crate::batch`]). The
    /// default is off (per-message sends, the paper's original behavior).
    pub batch: BatchConfig,
    /// Self-stabilization tier: run the [`crate::audit`] legal-state
    /// predicate on every clock tick and, on failure, reconcile through
    /// the §8 crash/recovery path ([`crate::Effect::Reconciled`]). Off by
    /// default — legal executions never trip the audit, but the scan
    /// itself is not free on the hot path.
    pub audit: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            stack: Stack::Full,
            forward: ForwardStrategyKind::Eager,
            slim_sync: false,
            implicit_cuts: false,
            aggregation: false,
            gc_old_views: true,
            batch: BatchConfig::off(),
            audit: false,
        }
    }
}

impl Config {
    /// The full algorithm with both §5.2.4 optimizations enabled
    /// (aggregation stays off: it conflicts with implicit cuts).
    pub fn optimized() -> Self {
        Config { slim_sync: true, implicit_cuts: true, ..Config::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_stack() {
        let c = Config::default();
        assert_eq!(c.stack, Stack::Full);
        assert!(c.stack.has_vs());
        assert!(c.stack.has_sd());
        assert!(!c.slim_sync);
        assert!(!c.batch.enabled());
    }

    #[test]
    fn layer_predicates() {
        assert!(!Stack::Wv.has_vs());
        assert!(!Stack::Wv.has_sd());
        assert!(Stack::VsTs.has_vs());
        assert!(!Stack::VsTs.has_sd());
        assert!(Stack::Full.has_vs());
        assert!(Stack::Full.has_sd());
    }

    #[test]
    fn optimized_enables_both_524_optimizations() {
        let c = Config::optimized();
        assert!(c.slim_sync);
        assert!(c.implicit_cuts);
        assert!(!c.aggregation);
    }
}
