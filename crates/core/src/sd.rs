//! Layer 3 — `GCS_p = VS_RFIFO+TS+SD_p` (Fig. 11): Self Delivery via the
//! block/block_ok handshake.
//!
//! To provide Self Delivery together with Virtual Synchrony in a live
//! manner, the application must be blocked from sending while a view
//! change is in progress (proven in the paper's reference \[19\]). The
//! synchronization message is then only sent once the application is
//! blocked, so the committed cut covers *all* messages the application
//! sent in the current view — which is exactly the Self Delivery
//! obligation.

use crate::state::{BlockStatus, State};

/// `block_p()` precondition: a change is pending and no block cycle is in
/// progress.
pub fn block_pre(st: &State) -> bool {
    st.start_change.is_some() && st.block_status == BlockStatus::Unblocked
}

/// `block_p()` effect.
pub fn block_eff(st: &mut State) {
    st.block_status = BlockStatus::Requested;
}

/// `block_ok_p()` input effect.
pub fn on_block_ok(st: &mut State) {
    st.block_status = BlockStatus::Blocked;
}

/// The restriction this layer adds to the synchronization send: only
/// after the application acknowledged the block.
pub fn sync_restriction(st: &State) -> bool {
    st.block_status == BlockStatus::Blocked
}

/// `view_p(v, T)` effect added by this layer.
pub fn view_eff(st: &mut State) {
    st.block_status = BlockStatus::Unblocked;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{ProcSet, ProcessId, StartChangeId};

    fn fresh() -> State {
        State::new(ProcessId::new(1))
    }

    #[test]
    fn block_requires_pending_change() {
        let mut st = fresh();
        assert!(!block_pre(&st));
        st.start_change =
            Some((StartChangeId::new(1), [ProcessId::new(1)].into_iter().collect::<ProcSet>()));
        assert!(block_pre(&st));
        block_eff(&mut st);
        assert_eq!(st.block_status, BlockStatus::Requested);
        assert!(!block_pre(&st), "no double block");
    }

    #[test]
    fn handshake_gates_sync() {
        let mut st = fresh();
        st.start_change =
            Some((StartChangeId::new(1), [ProcessId::new(1)].into_iter().collect::<ProcSet>()));
        assert!(!sync_restriction(&st));
        block_eff(&mut st);
        assert!(!sync_restriction(&st));
        on_block_ok(&mut st);
        assert!(sync_restriction(&st));
    }

    #[test]
    fn view_unblocks() {
        let mut st = fresh();
        st.block_status = BlockStatus::Blocked;
        view_eff(&mut st);
        assert_eq!(st.block_status, BlockStatus::Unblocked);
    }
}
