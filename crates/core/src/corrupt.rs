//! State-corruption fault injection (the self-stabilization tier).
//!
//! Per Dolev et al.'s practically-self-stabilizing virtual synchrony, a
//! transient fault may leave an end-point in an *arbitrary* state; the
//! system's obligation is to converge back to a legal state, not to
//! prevent the damage. This module is the damage: each
//! [`CorruptionKind`] is a deterministic mutator that perturbs one class
//! of protocol state outside any legal transition. The matching
//! legal-state predicate lives in [`crate::audit`]; the reconciliation
//! path (audit failure → §8 reset → rejoin) lives in
//! [`crate::endpoint`].
//!
//! Mutators are **total**: every kind can be applied to every state.
//! Some kinds degenerate to a no-op on states that lack the ingredient
//! they scramble (e.g. [`CorruptionKind::ScrambleCut`] with no pending
//! synchronization message) — the resulting state is then still legal
//! and the run converges trivially, which the convergence judge counts
//! as such rather than as a missed detection.

use crate::state::State;
use serde::{Deserialize, Serialize};
use vsgm_types::{AppMsg, View, ViewId};

/// One class of state corruption. Serialized (snake_case) inside chaos
/// scenarios, so minimized counterexamples replay byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CorruptionKind {
    /// Forge a message id: plant a never-sent message two slots past the
    /// end of the own current-view stream, leaving a gap (a forged index
    /// the FIFO stream cannot have produced).
    ForgeMsgId,
    /// Duplicate message ids: advance `last_sent` past the end of the own
    /// buffer, as if messages had been (re-)multicast that the stream
    /// never carried.
    DupMsgId,
    /// Roll `mbrshp_view` back to the initial singleton view — a stale
    /// view id behind the installed one.
    StaleViewId,
    /// Jump `current_view`'s epoch far into the future (same membership),
    /// ahead of anything the membership service issued.
    FutureViewId,
    /// Scramble the committed cut of the own pending synchronization
    /// message so it promises messages the buffers do not hold.
    ScrambleCut,
    /// Scramble the membership set of `current_view`: drop the end-point
    /// itself from its own view (violating Self Inclusion).
    ScrambleMembership,
    /// Truncate a `msgs[q][view]` suffix below what was already delivered
    /// (or, lacking deliveries, below what was already sent).
    TruncateMsgs,
    /// Overrun a `last_dlvrd` counter past the gap-free prefix actually
    /// buffered.
    OverrunLastDlvrd,
}

impl CorruptionKind {
    /// Every corruption class, in a fixed order (the E11 sweep and the
    /// chaos generator index into this).
    pub const ALL: [CorruptionKind; 8] = [
        CorruptionKind::ForgeMsgId,
        CorruptionKind::DupMsgId,
        CorruptionKind::StaleViewId,
        CorruptionKind::FutureViewId,
        CorruptionKind::ScrambleCut,
        CorruptionKind::ScrambleMembership,
        CorruptionKind::TruncateMsgs,
        CorruptionKind::OverrunLastDlvrd,
    ];

    /// Stable snake_case name (report keys in `BENCH_stabilize.json`).
    pub const fn name(self) -> &'static str {
        match self {
            CorruptionKind::ForgeMsgId => "forge_msg_id",
            CorruptionKind::DupMsgId => "dup_msg_id",
            CorruptionKind::StaleViewId => "stale_view_id",
            CorruptionKind::FutureViewId => "future_view_id",
            CorruptionKind::ScrambleCut => "scramble_cut",
            CorruptionKind::ScrambleMembership => "scramble_membership",
            CorruptionKind::TruncateMsgs => "truncate_msgs",
            CorruptionKind::OverrunLastDlvrd => "overrun_last_dlvrd",
        }
    }
}

/// Applies `kind` to `st`. Deterministic in `(st, kind, salt)` — `salt`
/// varies the damage (how far a counter is pushed, which peer is hit)
/// without any ambient randomness, so chaos replays are exact.
pub fn apply(st: &mut State, kind: CorruptionKind, salt: u64) {
    match kind {
        CorruptionKind::ForgeMsgId => {
            let view = st.current_view.clone();
            let pid = st.pid;
            let buf = st.buf_mut(pid, &view);
            let gap_index = buf.last_index() + 2;
            buf.set(gap_index, AppMsg::from("<forged>"));
        }
        CorruptionKind::DupMsgId => {
            let sent = st.buf(st.pid, &st.current_view).map_or(0, |b| b.last_index());
            st.last_sent = sent + 1 + salt % 3;
        }
        CorruptionKind::StaleViewId => {
            st.mbrshp_view = View::initial(st.pid);
        }
        CorruptionKind::FutureViewId => {
            let cur = st.current_view.clone();
            let id = ViewId::new(cur.id().epoch + 1000, cur.id().proposer);
            st.current_view = View::new(
                id,
                cur.members().iter().copied(),
                cur.start_ids().iter().map(|(q, c)| (*q, *c)),
            );
        }
        CorruptionKind::ScrambleCut => {
            let pid = st.pid;
            if let Some(cid) = st.start_change.as_ref().map(|(cid, _)| *cid) {
                if let Some(rec) = st.sync_msgs.get_mut(&(pid, cid)) {
                    let inflated = rec.cut.get(pid) + 2 + salt % 2;
                    rec.cut.set(pid, inflated);
                }
            }
        }
        CorruptionKind::ScrambleMembership => {
            let cur = st.current_view.clone();
            let pid = st.pid;
            st.current_view = View::new(
                cur.id(),
                cur.members().iter().copied().filter(|q| *q != pid),
                cur.start_ids().iter().filter(|(q, _)| **q != pid).map(|(q, c)| (*q, *c)),
            );
        }
        CorruptionKind::TruncateMsgs => {
            // Preferred victim: a peer stream already delivered from —
            // cutting below `last_dlvrd` contradicts the delivery
            // history. Fallback: the own stream below `last_sent`.
            let view = st.current_view.clone();
            let victim = st
                .last_dlvrd
                .iter()
                .filter(|(q, d)| **d > 0 && **q != st.pid)
                .map(|(q, d)| (*q, *d))
                .next();
            if let Some((q, dlvrd)) = victim {
                if let Some(buf) = st.msgs.get_mut(&(q, view))
                {
                    buf.truncate(dlvrd.saturating_sub(1));
                }
            } else if st.last_sent > 0 {
                let pid = st.pid;
                if let Some(buf) = st.msgs.get_mut(&(pid, view)) {
                    buf.truncate(st.last_sent.saturating_sub(1));
                }
            }
        }
        CorruptionKind::OverrunLastDlvrd => {
            let members: Vec<_> = st.current_view.members().iter().copied().collect();
            let Some(&q) = members.get((salt as usize) % members.len().max(1)) else {
                return;
            };
            let prefix = st.buf(q, &st.current_view).map_or(0, |b| b.longest_prefix());
            st.last_dlvrd.insert(q, prefix + 3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::ProcessId;

    #[test]
    fn kind_names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for k in CorruptionKind::ALL {
            let n = k.name();
            assert!(seen.insert(n), "duplicate name {n}");
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn serde_roundtrips_every_kind() {
        for k in CorruptionKind::ALL {
            let json = serde_json::to_string(&k).unwrap();
            assert_eq!(json, format!("\"{}\"", k.name()));
            let back: CorruptionKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn apply_is_total_on_the_initial_state() {
        // Every kind must apply without panicking even to the untouched
        // initial state (no buffers, no pending change).
        for k in CorruptionKind::ALL {
            for salt in 0..4 {
                let mut st = State::new(ProcessId::new(1));
                apply(&mut st, k, salt);
            }
        }
    }

    #[test]
    fn apply_is_deterministic_in_the_salt() {
        for k in CorruptionKind::ALL {
            let run = |salt: u64| {
                let mut st = State::new(ProcessId::new(1));
                apply(&mut st, k, salt);
                format!("{st:?}")
            };
            assert_eq!(run(7), run(7));
        }
    }
}
