//! §9 extension: two-tier synchronization-message aggregation.
//!
//! The paper's conclusion sketches a scalability extension: instead of
//! every end-point multicasting its synchronization message to all peers
//! (`n·(n−1)` point-to-point messages per view change), cut messages are
//! sent to a designated *leader* which aggregates them into a single
//! batched message — `2·(n−1)` point-to-point messages.
//!
//! Enabled with [`crate::Config::aggregation`]:
//!
//! * the leader for a change is the smallest id in `start_change.set`
//!   ([`crate::vs::leader`]) — deterministic, no election round;
//! * non-leaders send their sync message to the leader only;
//! * the leader buffers contributions and fires the `FlushAgg` action
//!   once every suggested member has contributed, or as soon as the
//!   membership view arrives (whichever is earlier); stragglers after the
//!   flush are relayed individually;
//! * receivers unpack [`vsgm_types::NetMsg::SyncAgg`] entries into the
//!   same `sync_msg[q][cid]` cells, so the core algorithm is unchanged —
//!   aggregation is purely a message-routing optimization.
//!
//! Correctness is unaffected (same records reach everyone); liveness
//! additionally assumes the leader stays connected for the duration of a
//! change — if it does not, the membership issues a new `start_change`
//! excluding it and a new leader takes over in the fresh round. The
//! message-count benefit is quantified by experiment E10.

#[cfg(test)]
mod tests {
    use crate::{Action, Config, Effect, Endpoint, Input};
    use vsgm_ioa::Automaton;
    use vsgm_types::{
        AppMsg, Cut, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload, View, ViewId,
    };

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn agg_endpoint(i: u64) -> Endpoint {
        Endpoint::new(p(i), Config { aggregation: true, ..Config::default() })
    }

    fn sync_from(i: u64, cid: u64) -> Input {
        Input::Net {
            from: p(i),
            msg: NetMsg::Sync(SyncPayload {
                cid: StartChangeId::new(cid),
                view: Some(View::initial(p(i))),
                cut: Cut::new(),
            }),
        }
    }

    /// Drives the leader up to (but not including) the flush.
    fn leader_with_buffered_syncs() -> Endpoint {
        let mut ep = agg_endpoint(1);
        ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2, 3]) });
        // Settle reliable/block/sync locally.
        let effects = ep.poll();
        // Leader's own sync is buffered, not sent.
        assert!(
            !effects.iter().any(|e| matches!(e, Effect::NetSend { msg: NetMsg::Sync(_), .. })),
            "{effects:?}"
        );
        ep.handle(Input::BlockOk);
        ep.poll();
        ep
    }

    #[test]
    fn leader_flushes_batch_when_all_contributions_arrive() {
        let mut ep = leader_with_buffered_syncs();
        ep.handle(sync_from(2, 7));
        assert!(
            !ep.enabled_actions().contains(&Action::FlushAgg),
            "incomplete batch must not flush"
        );
        ep.handle(sync_from(3, 4));
        assert!(ep.enabled_actions().contains(&Action::FlushAgg));
        let effects = ep.poll();
        let agg = effects.iter().find_map(|e| match e {
            Effect::NetSend { to, msg: NetMsg::SyncAgg(entries) } => Some((to, entries)),
            _ => None,
        });
        let (to, entries) = agg.expect("flush emits a SyncAgg");
        assert_eq!(to, &set(&[2, 3]));
        assert_eq!(entries.len(), 3, "all three contributions batched");
    }

    #[test]
    fn leader_flushes_early_when_view_arrives() {
        let mut ep = leader_with_buffered_syncs();
        ep.handle(sync_from(2, 7));
        // The membership view arrives before p3's sync.
        let v = View::new(
            ViewId::new(1, 0),
            [p(1), p(2), p(3)],
            [
                (p(1), StartChangeId::new(1)),
                (p(2), StartChangeId::new(7)),
                (p(3), StartChangeId::new(4)),
            ],
        );
        ep.handle(Input::MbrshpView(v));
        assert!(ep.enabled_actions().contains(&Action::FlushAgg));
        let effects = ep.poll();
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::NetSend { msg: NetMsg::SyncAgg(_), .. })));
        // A straggler after the flush is relayed immediately from the
        // input handler.
        let relays = ep.handle(sync_from(3, 4));
        let relayed = relays.iter().find_map(|e| match e {
            Effect::NetSend { to, msg: NetMsg::SyncAgg(entries) } => Some((to, entries)),
            _ => None,
        });
        let (to, entries) = relayed.expect("straggler relayed");
        assert_eq!(entries.len(), 1);
        assert_eq!(to, &set(&[2]), "relay excludes leader and the straggler itself");
    }

    #[test]
    fn non_leader_routes_sync_to_leader_only() {
        let mut ep = agg_endpoint(2);
        ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2, 3]) });
        ep.poll();
        ep.handle(Input::BlockOk);
        let effects = ep.poll();
        let sync_send = effects.iter().find_map(|e| match e {
            Effect::NetSend { to, msg: NetMsg::Sync(_) } => Some(to),
            _ => None,
        });
        assert_eq!(sync_send, Some(&set(&[1])));
    }

    #[test]
    fn receivers_unpack_aggregates() {
        let mut ep = agg_endpoint(3);
        ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2, 3]) });
        let payload = |i: u64, cid: u64| SyncPayload {
            cid: StartChangeId::new(cid),
            view: Some(View::initial(p(i))),
            cut: Cut::new(),
        };
        ep.handle(Input::Net {
            from: p(1),
            msg: NetMsg::SyncAgg(vec![
                (p(1), payload(1, 5)),
                (p(2), payload(2, 6)),
                (p(3), payload(3, 1)), // own entry: ignored
            ]),
        });
        assert!(ep.state().sync(p(1), StartChangeId::new(5)).is_some());
        assert!(ep.state().sync(p(2), StartChangeId::new(6)).is_some());
        assert!(
            ep.state().sync(p(3), StartChangeId::new(1)).is_none(),
            "own entry must not overwrite local record"
        );
    }

    #[test]
    fn cascaded_change_resets_aggregation_round() {
        let mut ep = leader_with_buffered_syncs();
        ep.handle(sync_from(2, 7));
        // Cascade: new start_change restarts the round.
        ep.handle(Input::StartChange { cid: StartChangeId::new(2), set: set(&[1, 2, 3]) });
        assert!(ep.state().agg_buffer.is_empty());
        assert!(!ep.state().agg_flushed);
        let _ = ep.handle(Input::AppSend(AppMsg::from("keepalive")));
    }
}
