//! Layer 2 — `VS_RFIFO+TS_p` (Fig. 10): Virtual Synchrony and
//! Transitional Sets.
//!
//! The one-round synchronization protocol: on `start_change(cid, set)` the
//! end-point sends a single synchronization message tagged with its
//! **locally unique** `cid`, carrying its current view and a *cut* — the
//! per-sender message counts it commits to deliver before moving on. When
//! the membership view `v'` arrives, its `startId` map identifies which
//! synchronization message of each peer everyone must use, so no globally
//! agreed tag is ever negotiated: the virtual-synchrony round runs in
//! parallel with the membership round.

use crate::state::{State, SyncRecord};
use vsgm_types::{
    Cut, MsgIndex, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload,
};

/// The deterministic aggregation leader for a suggested membership (§9
/// extension): the smallest process id.
pub fn leader(set: &ProcSet) -> Option<ProcessId> {
    set.iter().next().copied()
}

// ----- input actions -----

/// `mbrshp.start_change_p(id, set)`.
pub fn on_start_change(st: &mut State, cid: StartChangeId, set: ProcSet) {
    st.agg_scope = Some(set.clone());
    st.start_change = Some((cid, set));
    // A cascaded change restarts the aggregation round.
    st.agg_buffer.clear();
    st.agg_flushed = false;
}

/// `co_rfifo.deliver(tag=sync_msg, cid, v, cut)` from `q`. Returns the
/// record stored (for the aggregation relay logic in the endpoint).
pub fn on_sync(st: &mut State, q: ProcessId, payload: &SyncPayload) -> SyncRecord {
    // The sync rides the sender's FIFO stream, so the receive position
    // marks the end of the sender's current-view message sequence.
    let rec = SyncRecord {
        view: payload.view.clone(),
        cut: payload.cut.clone(),
        stream_pos: st.rcvd(q),
    };
    st.sync_msgs.insert((q, payload.cid), rec.clone());
    let latest = st.latest_sync_cid.entry(q).or_insert(payload.cid);
    if payload.cid > *latest {
        *latest = payload.cid;
    }
    rec
}

// ----- locally controlled actions -----

/// The target of `co_rfifo.reliable_p(set)` under the Fig. 10 restriction:
/// `current_view.set` while stable, `current_view.set ∪ start_change.set`
/// during a change.
pub fn reliable_target(st: &State) -> ProcSet {
    let mut set: ProcSet = st.current_view.members().clone();
    if let Some((_, sc_set)) = &st.start_change {
        set.extend(sc_set.iter().copied());
    }
    set
}

/// `co_rfifo.send_p(set, tag=sync_msg, …)` precondition (Fig. 10; the SD
/// layer adds `block_status = blocked` on top).
///
/// Under [`crate::Config::implicit_cuts`] the sync must additionally ride
/// *behind* the whole current-view stream: the view must be announced and
/// every buffered own message already multicast, so the sync's stream
/// position marks the true end of the sender's sequence.
pub fn send_sync_pre(st: &State, implicit_cuts: bool) -> bool {
    let base = match &st.start_change {
        Some((cid, sc_set)) => {
            sc_set.iter().all(|q| st.reliable_set.contains(q))
                && st.sync(st.pid, *cid).is_none()
        }
        None => false,
    };
    if !base {
        return false;
    }
    if implicit_cuts {
        let sent_all =
            st.last_sent == st.buf(st.pid, &st.current_view).map_or(0, |b| b.last_index());
        let announced = st.view_msg_of(st.pid) == st.current_view;
        return sent_all && (announced || st.current_view.len() == 1);
    }
    true
}

/// The destinations and messages for the synchronization send, honoring
/// the §5.2.4 slim optimization and the §9 aggregation extension, plus
/// the record to store as `sync_msg[p][cid]`.
pub struct SyncSendPlan {
    /// `(destinations, message)` pairs to hand to `CO_RFIFO`.
    pub sends: Vec<(ProcSet, NetMsg)>,
    /// The start-change id answered.
    pub cid: StartChangeId,
    /// The record stored locally.
    pub record: SyncRecord,
}

/// `co_rfifo.send_p(set, tag=sync_msg, cid, v, cut)` effect. `None` when
/// no change is in progress (the action is not enabled).
pub fn send_sync_eff(
    st: &mut State,
    slim: bool,
    aggregation: bool,
    implicit_cuts: bool,
) -> Option<SyncSendPlan> {
    let (cid, sc_set) = st.start_change.clone()?;
    let cv = st.current_view.clone();
    let cut = st.commit_cut();
    let record =
        SyncRecord { view: Some(cv.clone()), cut: cut.clone(), stream_pos: st.last_sent };
    st.sync_msgs.insert((st.pid, cid), record.clone());

    // Second §5.2.4 optimization: entries about continuing members
    // (start_change.set ∩ current_view.set) are implied by those members'
    // own in-stream syncs and need not travel.
    let wire_cut: Cut = if implicit_cuts {
        cut.iter().filter(|(q, _)| !sc_set.contains(q) || !cv.contains(*q)).collect()
    } else {
        cut
    };
    let full = SyncPayload { cid, view: Some(cv.clone()), cut: wire_cut };
    let mut sends = Vec::new();
    if aggregation {
        // §9: route through the deterministic leader; the leader buffers
        // its own contribution and batches everything (endpoint flushes).
        // The start_change set always includes self, so a leader exists.
        if let Some(ldr) = leader(&sc_set) {
            if ldr == st.pid {
                st.agg_buffer.insert(st.pid, (cid, record.clone()));
            } else {
                sends.push(([ldr].into_iter().collect(), NetMsg::Sync(full)));
            }
        }
    } else if slim {
        // §5.2.4: peers outside our current view cannot have us in their
        // transitional sets; a cid-only message suffices for them.
        let in_view: ProcSet = sc_set
            .iter()
            .copied()
            .filter(|q| *q != st.pid && st.current_view.contains(*q))
            .collect();
        let outside: ProcSet = sc_set
            .iter()
            .copied()
            .filter(|q| *q != st.pid && !st.current_view.contains(*q))
            .collect();
        if !in_view.is_empty() {
            sends.push((in_view, NetMsg::Sync(full.clone())));
        }
        if !outside.is_empty() {
            let slim_msg = SyncPayload { cid, view: None, cut: Cut::new() };
            sends.push((outside, NetMsg::Sync(slim_msg)));
        }
    } else {
        let dests: ProcSet = sc_set.iter().copied().filter(|q| *q != st.pid).collect();
        if !dests.is_empty() {
            sends.push((dests, NetMsg::Sync(full)));
        }
    }
    Some(SyncSendPlan { sends, cid, record })
}

/// The agreed post-view delivery bound for messages from `q`, computed
/// from the syncs the membership view selects. Under implicit cuts, the
/// bound for a continuing member is the stream position of its own sync;
/// for everyone else (and always when the optimization is off) it is the
/// max over the transitional candidates' cut entries.
fn agreed_bound(st: &State, q: ProcessId, implicit_cuts: bool) -> MsgIndex {
    let v = &st.mbrshp_view;
    if implicit_cuts && v.contains(q) && st.current_view.contains(q) {
        if let Some(rec) = v.start_id(q).and_then(|cid| st.sync(q, cid)) {
            if rec.view.as_ref() == Some(&st.current_view) {
                return rec.stream_pos;
            }
        }
        // The member's sync shows another previous view (or is missing):
        // nothing of its current-view stream is agreed.
        return 0;
    }
    potential_transitional(st)
        .into_iter()
        .filter_map(|r| {
            let r_cid = v.start_id(r)?;
            Some(st.sync(r, r_cid)?.cut.get(q))
        })
        .max()
        .unwrap_or(0)
}

/// The Fig. 10 restriction on `deliver_p(q, m)`: once the end-point has
/// committed to a cut (own sync sent for the pending change), it may not
/// deliver beyond the relevant bound. Returns `None` when unrestricted.
pub fn delivery_bound_with(st: &State, q: ProcessId, implicit_cuts: bool) -> Option<MsgIndex> {
    let (cid, _) = st.start_change.as_ref()?;
    let own = st.sync(st.pid, *cid)?;
    if st.mbrshp_view.start_id(st.pid) == Some(*cid) {
        // The membership view for this change has arrived.
        Some(agreed_bound(st, q, implicit_cuts))
    } else {
        Some(own.cut.get(q))
    }
}

/// [`delivery_bound_with`] with the optimization off (the paper's plain
/// Fig. 10 semantics; also what the invariant checks audit).
pub fn delivery_bound(st: &State, q: ProcessId) -> Option<MsgIndex> {
    delivery_bound_with(st, q, false)
}

/// `S` of Fig. 10's deliver restriction: processes in
/// `mbrshp_view.set ∩ current_view.set` whose selected synchronization
/// message shows they move from our current view.
fn potential_transitional(st: &State) -> Vec<ProcessId> {
    st.mbrshp_view
        .intersection(&st.current_view)
        .filter(|r| {
            st.mbrshp_view
                .start_id(*r)
                .and_then(|cid| st.sync(*r, cid))
                .is_some_and(|rec| rec.view.as_ref() == Some(&st.current_view))
        })
        .collect()
}

/// The Fig. 10 restriction on `view_p(v, T)`. Returns the transitional
/// set when every precondition holds, `None` otherwise:
///
/// 1. `v.startId(p) = start_change.id` — never deliver obsolete views;
/// 2. a synchronization message selected by `v.startId` is present from
///    every member of `v.set ∩ current_view.set`;
/// 3. exactly the agreed cut has been delivered:
///    `∀q ∈ current_view.set: last_dlvrd[q] = max_{r∈T} cut_r(q)`.
pub fn view_restriction(st: &State) -> Option<ProcSet> {
    view_restriction_with(st, false)
}

/// [`view_restriction`] parameterized by the implicit-cuts optimization.
pub fn view_restriction_with(st: &State, implicit_cuts: bool) -> Option<ProcSet> {
    let v = &st.mbrshp_view;
    let (cid, _) = st.start_change.as_ref()?;
    if v.start_id(st.pid) != Some(*cid) {
        return None;
    }
    // All required sync messages present?
    for q in v.intersection(&st.current_view) {
        let q_cid = v.start_id(q)?;
        st.sync(q, q_cid)?;
    }
    let t = st.transitional_set()?;
    // Agreed-cut equality.
    for q in st.current_view.members() {
        if st.dlvrd(*q) != agreed_bound(st, *q, implicit_cuts) {
            return None;
        }
    }
    Some(t)
}

/// `view_p(v, T)` effect added by this layer.
pub fn view_eff(st: &mut State) {
    st.start_change = None;
    // Aggregation bookkeeping is deliberately retained: the leader keeps
    // relaying straggler syncs to members that have not installed yet.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wv;
    use vsgm_types::{AppMsg, View, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn view12(epoch: u64, cid1: u64, cid2: u64) -> View {
        View::new(
            ViewId::new(epoch, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(cid1)), (p(2), StartChangeId::new(cid2))],
        )
    }

    /// p1 in view {1,2}, having announced it, with a pending change.
    fn reconfiguring_state() -> State {
        let mut st = State::new(p(1));
        st.mbrshp_view = view12(1, 1, 1);
        wv::view_eff(&mut st);
        st.reliable_set = set(&[1, 2]);
        st.view_msg.insert(p(1), st.current_view.clone());
        on_start_change(&mut st, StartChangeId::new(2), set(&[1, 2]));
        st
    }

    #[test]
    fn leader_is_min() {
        assert_eq!(leader(&set(&[3, 1, 2])), Some(p(1)));
        assert_eq!(leader(&ProcSet::new()), None);
    }

    #[test]
    fn reliable_target_grows_during_change() {
        let mut st = State::new(p(1));
        assert_eq!(reliable_target(&st), set(&[1]));
        on_start_change(&mut st, StartChangeId::new(1), set(&[1, 2, 3]));
        assert_eq!(reliable_target(&st), set(&[1, 2, 3]));
    }

    #[test]
    fn sync_send_requires_reliable_coverage() {
        let mut st = State::new(p(1));
        on_start_change(&mut st, StartChangeId::new(1), set(&[1, 2]));
        assert!(!send_sync_pre(&st, false), "reliable set does not cover the change set yet");
        st.reliable_set = set(&[1, 2]);
        assert!(send_sync_pre(&st, false));
        let plan = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        assert_eq!(plan.sends.len(), 1);
        assert_eq!(plan.sends[0].0, set(&[2]));
        // Own sync stored: the action disables itself.
        assert!(!send_sync_pre(&st, false));
    }

    #[test]
    fn sync_cut_commits_buffered_prefix() {
        let mut st = reconfiguring_state();
        // Two messages from p2 buffered, one own message sent.
        let cv = st.current_view.clone();
        wv::on_view_msg(&mut st, p(2), cv);
        wv::on_app_msg(&mut st, p(2), AppMsg::from("a"));
        wv::on_app_msg(&mut st, p(2), AppMsg::from("b"));
        wv::on_app_send(&mut st, AppMsg::from("own"));
        let plan = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        assert_eq!(plan.record.cut.get(p(2)), 2);
        assert_eq!(plan.record.cut.get(p(1)), 1);
    }

    #[test]
    fn slim_sync_splits_destinations() {
        let mut st = reconfiguring_state();
        // Change set includes p3, which is outside the current view.
        on_start_change(&mut st, StartChangeId::new(3), set(&[1, 2, 3]));
        st.reliable_set = set(&[1, 2, 3]);
        let plan = send_sync_eff(&mut st, true, false, false).expect("sync enabled");
        assert_eq!(plan.sends.len(), 2);
        let full = &plan.sends[0];
        let slim = &plan.sends[1];
        assert_eq!(full.0, set(&[2]));
        assert_eq!(slim.0, set(&[3]));
        match (&full.1, &slim.1) {
            (NetMsg::Sync(f), NetMsg::Sync(s)) => {
                assert!(!f.is_slim());
                assert!(s.is_slim());
                assert!(s.wire_size() < f.wire_size());
            }
            other => panic!("unexpected messages {other:?}"),
        }
    }

    #[test]
    fn aggregation_routes_to_leader() {
        let mut st = State::new(p(2));
        st.reliable_set = set(&[1, 2, 3]);
        on_start_change(&mut st, StartChangeId::new(1), set(&[1, 2, 3]));
        let plan = send_sync_eff(&mut st, false, true, false).expect("sync enabled");
        assert_eq!(plan.sends.len(), 1);
        assert_eq!(plan.sends[0].0, set(&[1]), "non-leader sends only to the leader");
    }

    #[test]
    fn aggregation_leader_buffers_own() {
        let mut st = State::new(p(1));
        st.reliable_set = set(&[1, 2, 3]);
        on_start_change(&mut st, StartChangeId::new(1), set(&[1, 2, 3]));
        let plan = send_sync_eff(&mut st, false, true, false).expect("sync enabled");
        assert!(plan.sends.is_empty());
        assert!(st.agg_buffer.contains_key(&p(1)));
    }

    #[test]
    fn delivery_unrestricted_before_own_sync() {
        let st = reconfiguring_state();
        assert_eq!(delivery_bound(&st, p(2)), None);
    }

    #[test]
    fn delivery_bounded_by_own_cut_before_view() {
        let mut st = reconfiguring_state();
        let cv = st.current_view.clone();
        wv::on_view_msg(&mut st, p(2), cv);
        wv::on_app_msg(&mut st, p(2), AppMsg::from("a"));
        let _ = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        // mbrshp_view is still the old view: bound = own cut.
        assert_eq!(delivery_bound(&st, p(2)), Some(1));
        // A message arriving after the cut is not deliverable.
        wv::on_app_msg(&mut st, p(2), AppMsg::from("late"));
        assert_eq!(delivery_bound(&st, p(2)), Some(1));
    }

    #[test]
    fn delivery_bound_uses_max_cut_after_view() {
        let mut st = reconfiguring_state();
        let _ = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        // The new membership view arrives (cids: p1→2, p2→5).
        st.mbrshp_view = view12(2, 2, 5);
        // p2's sync commits to 3 messages from p2.
        let mut cut = Cut::new();
        cut.set(p(2), 3);
        let cv = st.current_view.clone();
        on_sync(
            &mut st,
            p(2),
            &SyncPayload {
                cid: StartChangeId::new(5),
                view: Some(cv.clone()),
                cut,
            },
        );
        assert_eq!(delivery_bound(&st, p(2)), Some(3));
    }

    #[test]
    fn view_restriction_rejects_obsolete_views() {
        let mut st = reconfiguring_state();
        let _ = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        // A view tagged with an OLD cid for p1 (cid 1, but the pending
        // change is cid 2): obsolete, must not be delivered.
        st.mbrshp_view = view12(2, 1, 1);
        assert_eq!(view_restriction(&st), None);
    }

    #[test]
    fn view_restriction_full_flow() {
        let mut st = reconfiguring_state();
        let _ = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        st.mbrshp_view = view12(2, 2, 7);
        // Missing p2's sync: not yet installable.
        assert_eq!(view_restriction(&st), None);
        let cv = st.current_view.clone();
        on_sync(
            &mut st,
            p(2),
            &SyncPayload {
                cid: StartChangeId::new(7),
                view: Some(cv.clone()),
                cut: Cut::new(),
            },
        );
        let t = view_restriction(&st).expect("installable");
        assert_eq!(t, set(&[1, 2]));
        view_eff(&mut st);
        assert!(st.start_change.is_none());
    }

    #[test]
    fn joiner_from_other_view_excluded_from_t() {
        let mut st = reconfiguring_state();
        let _ = send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        // New view includes p3, whose sync shows a different previous view.
        let v = View::new(
            ViewId::new(2, 0),
            [p(1), p(2), p(3)],
            [
                (p(1), StartChangeId::new(2)),
                (p(2), StartChangeId::new(4)),
                (p(3), StartChangeId::new(9)),
            ],
        );
        st.mbrshp_view = v;
        let cv = st.current_view.clone();
        on_sync(
            &mut st,
            p(2),
            &SyncPayload {
                cid: StartChangeId::new(4),
                view: Some(cv.clone()),
                cut: Cut::new(),
            },
        );
        // p3 moves from its own (initial) view — slim or different view.
        let t = view_restriction(&st).expect("installable");
        assert_eq!(t, set(&[1, 2]), "p3 not in current view ⇒ not consulted for T");
    }
}
