//! Layer 1 — `WV_RFIFO_p` (Fig. 9): within-view reliable FIFO multicast.
//!
//! Preconditions and effects of the base automaton. Each function mirrors
//! one transition of Fig. 9; the `VS` and `SD` layers add restrictions on
//! top (see [`crate::vs`], [`crate::sd`]), exactly as the paper's child
//! automata do.

use crate::state::{MsgSeq, State};
use vsgm_types::{AppMsg, FwdPayload, MsgIndex, NetMsg, ProcSet, ProcessId, View};

// ----- input actions (always enabled) -----

/// `send_p(m)`: the application multicasts `m` — append to
/// `msgs[p][current_view]`.
///
/// Exception: once the own synchronization message for an in-progress
/// view change has been sent, the committed cut no longer covers new own
/// messages. Appending here would stamp the *old* view on a message the
/// old view's agreement never saw, so such sends are queued in
/// `pending_sends` and re-issued when the next view installs (the paper's
/// blocking client, Fig. 12, makes this window unreachable; a
/// non-blocking client hits it).
pub fn on_app_send(st: &mut State, m: AppMsg) {
    if let Some((cid, _)) = &st.start_change {
        if st.sync(st.pid, *cid).is_some() {
            st.pending_sends.push(m);
            return;
        }
    }
    let view = st.current_view.clone();
    let pid = st.pid;
    if st.batch_opened_us.is_none() {
        st.batch_opened_us = Some(st.now_us);
    }
    st.buf_mut(pid, &view).push(m);
}

/// `mbrshp.view_p(v)`: record the membership view.
pub fn on_mbrshp_view(st: &mut State, v: View) {
    st.mbrshp_view = v;
}

/// `co_rfifo.deliver(tag=view_msg, v)` from `q`: subsequent original
/// messages from `q` belong to view `v`.
pub fn on_view_msg(st: &mut State, q: ProcessId, v: View) {
    st.view_msg.insert(q, v);
    st.last_rcvd.insert(q, 0);
}

/// `co_rfifo.deliver(tag=app_msg, m)` from `q`: store at the next index of
/// the stream delimited by the latest `view_msg` from `q`.
pub fn on_app_msg(st: &mut State, q: ProcessId, m: AppMsg) {
    let v = st.view_msg_of(q);
    let idx = st.rcvd(q) + 1;
    st.buf_mut(q, &v).set(idx, m);
    st.last_rcvd.insert(q, idx);
}

/// `co_rfifo.deliver(tag=fwd_msg, r, v, m, i)`: store the forwarded
/// original at its tagged position.
pub fn on_fwd_msg(st: &mut State, f: FwdPayload) {
    st.buf_mut(f.origin, &f.view).set(f.index, f.msg);
}

// ----- locally controlled actions -----

/// `view_p(v)` precondition: `v = mbrshp_view ∧ v.id > current_view.id`.
pub fn view_pre(st: &State) -> bool {
    st.mbrshp_view.id() > st.current_view.id()
}

/// `view_p(v)` effect: install the membership view, reset per-view
/// counters.
pub fn view_eff(st: &mut State) {
    st.current_view = st.mbrshp_view.clone();
    st.last_sent = 0;
    st.last_dlvrd.clear();
}

/// `deliver_p(q, m)` precondition: the next FIFO message from `q` in the
/// current view is present, and own messages are only self-delivered
/// after being multicast (`q = p ⇒ last_dlvrd[q] < last_sent`). Returns
/// the message to deliver.
pub fn deliver_pre(st: &State, q: ProcessId) -> Option<AppMsg> {
    let next = st.dlvrd(q) + 1;
    if q == st.pid && st.dlvrd(q) >= st.last_sent {
        return None;
    }
    st.buf(q, &st.current_view).and_then(|seq| seq.get(next)).cloned()
}

/// `deliver_p(q, m)` effect.
pub fn deliver_eff(st: &mut State, q: ProcessId) {
    let next = st.dlvrd(q) + 1;
    st.last_dlvrd.insert(q, next);
}

/// `co_rfifo.send_p(set, tag=view_msg, v)` precondition: the current view
/// has not been announced yet and reliable channels cover it.
pub fn send_view_msg_pre(st: &State) -> bool {
    st.view_msg_of(st.pid) != st.current_view
        && st.current_view.members().iter().all(|m| st.reliable_set.contains(m))
}

/// `co_rfifo.send_p(set, tag=view_msg, v)` effect. Returns the destination
/// set (current view minus self) and the message.
pub fn send_view_msg_eff(st: &mut State) -> (ProcSet, NetMsg) {
    let set: ProcSet =
        st.current_view.members().iter().copied().filter(|m| *m != st.pid).collect();
    let msg = NetMsg::ViewMsg(st.current_view.clone());
    st.view_msg.insert(st.pid, st.current_view.clone());
    (set, msg)
}

/// `co_rfifo.send_p(set, tag=app_msg, m)` precondition: the view has been
/// announced and an unsent own message exists. Returns it.
pub fn send_app_msg_pre(st: &State) -> Option<AppMsg> {
    if st.view_msg_of(st.pid) != st.current_view {
        return None;
    }
    st.buf(st.pid, &st.current_view)
        .and_then(|seq| seq.get(st.last_sent + 1))
        .cloned()
}

/// `co_rfifo.send_p(set, tag=app_msg, m)` effect. `None` when
/// [`send_app_msg_pre`] is false (the action is not enabled).
pub fn send_app_msg_eff(st: &mut State) -> Option<(ProcSet, NetMsg)> {
    let m = send_app_msg_pre(st)?;
    let set: ProcSet =
        st.current_view.members().iter().copied().filter(|q| *q != st.pid).collect();
    st.last_sent += 1;
    rearm_batch_clock(st);
    Some((set, NetMsg::App(m)))
}

/// Precondition of the batched send: identical to [`send_app_msg_pre`].
/// Batching changes *how many* unsent messages one `co_rfifo.send_p`
/// covers, never *whether* the action is enabled — the enabling condition
/// is still "the view is announced and an unsent own message exists".
pub fn send_app_batch_pre(st: &State) -> Option<AppMsg> {
    send_app_msg_pre(st)
}

/// Batched variant of [`send_app_msg_eff`]: packs up to `max_msgs` /
/// `max_bytes` worth of consecutive unsent own messages into one wire
/// frame. The batch is exactly a prefix of the unsent suffix of
/// `msgs[p][current_view]` — `last_sent` advances over it atomically, so
/// per-message semantics are preserved byte-for-byte (receivers unbatch
/// in order). The first message is always included even when it alone
/// exceeds `max_bytes` (it flushes by itself). Returns the destination
/// set, the wire message (`NetMsg::App` for a single message so the
/// per-message wire format is unchanged when batching never engages), and
/// the number of messages covered.
pub fn send_app_batch_eff(
    st: &mut State,
    max_msgs: u64,
    max_bytes: usize,
) -> Option<(ProcSet, NetMsg, u64)> {
    let first = send_app_batch_pre(st)?;
    let mut batch = vec![first];
    let mut bytes = batch.first().map_or(0, AppMsg::len);
    if let Some(buf) = st.buf(st.pid, &st.current_view) {
        while (batch.len() as u64) < max_msgs.max(1) {
            let Some(next) = buf.get(st.last_sent + batch.len() as u64 + 1) else {
                break;
            };
            if bytes + next.len() > max_bytes {
                break;
            }
            bytes += next.len();
            batch.push(next.clone());
        }
    }
    let set: ProcSet =
        st.current_view.members().iter().copied().filter(|q| *q != st.pid).collect();
    let k = batch.len() as u64;
    st.last_sent += k;
    rearm_batch_clock(st);
    let msg = if k == 1 { NetMsg::App(batch.pop()?) } else { NetMsg::AppBatch(batch) };
    Some((set, msg, k))
}

/// After a send advanced `last_sent`: clear the linger clock if the
/// pending batch drained, else restart it for the remaining suffix.
fn rearm_batch_clock(st: &mut State) {
    let remaining = st
        .buf(st.pid, &st.current_view)
        .is_some_and(|seq| seq.last_index() > st.last_sent);
    st.batch_opened_us = remaining.then_some(st.now_us);
}

/// The number of messages from `q` buffered gap-free for the current view
/// (for cut computation and tests).
pub fn available_from(st: &State, q: ProcessId) -> MsgIndex {
    st.buf(q, &st.current_view).map_or(0, MsgSeq::longest_prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view12(epoch: u64) -> View {
        View::new(
            ViewId::new(epoch, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(epoch)), (p(2), StartChangeId::new(epoch))],
        )
    }

    #[test]
    fn app_send_appends_to_current_view_buffer() {
        let mut st = State::new(p(1));
        on_app_send(&mut st, AppMsg::from("a"));
        on_app_send(&mut st, AppMsg::from("b"));
        assert_eq!(available_from(&st, p(1)), 2);
    }

    #[test]
    fn self_delivery_gated_on_multicast() {
        let mut st = State::new(p(1));
        on_app_send(&mut st, AppMsg::from("a"));
        // Not yet sent via CO_RFIFO: self-delivery disabled.
        assert_eq!(deliver_pre(&st, p(1)), None);
        st.last_sent = 1;
        assert_eq!(deliver_pre(&st, p(1)), Some(AppMsg::from("a")));
        deliver_eff(&mut st, p(1));
        assert_eq!(deliver_pre(&st, p(1)), None);
    }

    #[test]
    fn view_pre_requires_larger_id() {
        let mut st = State::new(p(1));
        assert!(!view_pre(&st));
        st.mbrshp_view = view12(1);
        assert!(view_pre(&st));
        view_eff(&mut st);
        assert!(!view_pre(&st));
        assert_eq!(st.current_view, view12(1));
        assert_eq!(st.last_sent, 0);
    }

    #[test]
    fn view_msg_gates_app_sends() {
        let mut st = State::new(p(1));
        st.mbrshp_view = view12(1);
        view_eff(&mut st);
        on_app_send(&mut st, AppMsg::from("a"));
        // view_msg for the new view not announced yet.
        assert_eq!(send_app_msg_pre(&st), None);
        // Cannot announce until reliable covers the view.
        assert!(!send_view_msg_pre(&st));
        st.reliable_set = [p(1), p(2)].into_iter().collect();
        assert!(send_view_msg_pre(&st));
        let (set, msg) = send_view_msg_eff(&mut st);
        assert_eq!(set, [p(2)].into_iter().collect());
        assert!(matches!(msg, NetMsg::ViewMsg(v) if v == view12(1)));
        // Now app messages flow.
        assert_eq!(send_app_msg_pre(&st), Some(AppMsg::from("a")));
        let (set, msg) = send_app_msg_eff(&mut st).expect("send enabled");
        assert_eq!(set, [p(2)].into_iter().collect());
        assert!(matches!(msg, NetMsg::App(m) if m == AppMsg::from("a")));
        assert_eq!(st.last_sent, 1);
    }

    #[test]
    fn batched_send_covers_unsent_suffix_in_order() {
        let mut st = State::new(p(1));
        st.mbrshp_view = view12(1);
        view_eff(&mut st);
        st.reliable_set = [p(1), p(2)].into_iter().collect();
        send_view_msg_eff(&mut st);
        for m in ["a", "b", "c"] {
            on_app_send(&mut st, AppMsg::from(m));
        }
        let (set, msg, k) = send_app_batch_eff(&mut st, 2, 1024).expect("enabled");
        assert_eq!(k, 2);
        assert_eq!(set, [p(2)].into_iter().collect());
        assert!(matches!(
            msg,
            NetMsg::AppBatch(b) if b == vec![AppMsg::from("a"), AppMsg::from("b")]
        ));
        assert_eq!(st.last_sent, 2);
        // One message left: the batch clock stays armed for it.
        assert!(st.batch_opened_us.is_some());
        // The remainder goes out as a plain App frame (k == 1).
        let (_, msg, k) = send_app_batch_eff(&mut st, 2, 1024).expect("enabled");
        assert_eq!(k, 1);
        assert!(matches!(msg, NetMsg::App(m) if m == AppMsg::from("c")));
        assert_eq!(st.batch_opened_us, None);
    }

    #[test]
    fn batch_byte_budget_stops_packing_but_oversized_head_flushes_alone() {
        let mut st = State::new(p(1));
        on_app_send(&mut st, AppMsg::from(vec![0u8; 10]));
        on_app_send(&mut st, AppMsg::from(vec![1u8; 10]));
        st.last_sent = 0;
        // Budget of 15 bytes: the 10-byte head fits, the second would
        // overflow.
        let (_, msg, k) = send_app_batch_eff(&mut st, 8, 15).expect("enabled");
        assert_eq!(k, 1);
        assert!(matches!(msg, NetMsg::App(_)));
        // Budget of 5 bytes: smaller than the head — it still goes alone.
        let (_, _, k) = send_app_batch_eff(&mut st, 8, 5).expect("enabled");
        assert_eq!(k, 1);
    }

    #[test]
    fn send_after_own_sync_queues_for_next_view() {
        use crate::state::SyncRecord;
        use vsgm_types::Cut;
        let mut st = State::new(p(1));
        let cid = StartChangeId::new(9);
        st.start_change = Some((cid, [p(1), p(2)].into_iter().collect()));
        st.sync_msgs.insert(
            (p(1), cid),
            SyncRecord { view: Some(st.current_view.clone()), cut: Cut::default(), stream_pos: 0 },
        );
        on_app_send(&mut st, AppMsg::from("late"));
        // Not in the old view's buffer — queued for the next view.
        assert_eq!(available_from(&st, p(1)), 0);
        assert_eq!(st.pending_sends, vec![AppMsg::from("late")]);
        // Before the own sync is sent, sends still reach the buffer.
        let mut st2 = State::new(p(1));
        st2.start_change = Some((cid, [p(1), p(2)].into_iter().collect()));
        on_app_send(&mut st2, AppMsg::from("in-time"));
        assert_eq!(available_from(&st2, p(1)), 1);
        assert!(st2.pending_sends.is_empty());
    }

    #[test]
    fn incoming_stream_is_associated_with_announced_view() {
        let mut st = State::new(p(2));
        let v = view12(1);
        // p1's stream: view_msg then two app messages.
        on_view_msg(&mut st, p(1), v.clone());
        on_app_msg(&mut st, p(1), AppMsg::from("a"));
        on_app_msg(&mut st, p(1), AppMsg::from("b"));
        assert_eq!(st.buf(p(1), &v).unwrap().longest_prefix(), 2);
        // Not yet deliverable: p2 still in its initial view.
        assert_eq!(deliver_pre(&st, p(1)), None);
        st.mbrshp_view = v;
        view_eff(&mut st);
        assert_eq!(deliver_pre(&st, p(1)), Some(AppMsg::from("a")));
    }

    #[test]
    fn fwd_msg_fills_tagged_slot() {
        let mut st = State::new(p(2));
        let v = view12(1);
        on_fwd_msg(
            &mut st,
            FwdPayload { origin: p(1), view: v.clone(), index: 3, msg: AppMsg::from("c") },
        );
        assert_eq!(st.buf(p(1), &v).unwrap().get(3), Some(&AppMsg::from("c")));
        assert_eq!(st.buf(p(1), &v).unwrap().longest_prefix(), 0);
    }

    #[test]
    fn view_msg_resets_stream_counter() {
        let mut st = State::new(p(2));
        let v1 = view12(1);
        let v2 = view12(2);
        on_view_msg(&mut st, p(1), v1.clone());
        on_app_msg(&mut st, p(1), AppMsg::from("a"));
        on_view_msg(&mut st, p(1), v2.clone());
        on_app_msg(&mut st, p(1), AppMsg::from("x"));
        assert_eq!(st.buf(p(1), &v1).unwrap().longest_prefix(), 1);
        assert_eq!(st.buf(p(1), &v2).unwrap().longest_prefix(), 1);
    }
}
