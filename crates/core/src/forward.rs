//! Forwarding strategies (§5.2.2): recovering messages for peers that
//! miss them.
//!
//! During a view change an end-point may have committed (via its cut) to
//! messages that some peer never received — e.g. because the original
//! sender is partitioned away. Members holding such messages *forward*
//! them. The paper leaves the policy open as a
//! `ForwardingStrategyPredicate` and gives two examples, both implemented
//! here:
//!
//! * [`ForwardStrategyKind::Eager`] — a member forwards every message it
//!   has committed to as soon as a peer's synchronization message reveals
//!   the peer misses it. Simple, low latency, up to `|T|−1` copies per
//!   missing message.
//! * [`ForwardStrategyKind::MinCopy`] — members deterministically elect,
//!   per missing message, the committed holder with the smallest id as
//!   the unique forwarder. Usually one copy per missing message.

use crate::state::State;
use std::collections::BTreeMap;
use vsgm_types::{Cut, MsgIndex, ProcSet, ProcessId, View, ViewId};

/// One forwarding obligation: send `msgs[origin][view][index]` to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardCmd {
    /// Destinations still missing the message.
    pub to: ProcSet,
    /// Original sender.
    pub origin: ProcessId,
    /// View the message was originally sent in.
    pub view: View,
    /// 1-based index in `msgs[origin][view]`.
    pub index: MsgIndex,
}

/// Which `ForwardingStrategyPredicate` of §5.2.2 an end-point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardStrategyKind {
    /// Forwarding disabled (for ablation; liveness under partitions is
    /// lost).
    Disabled,
    /// The paper's first example strategy: everyone committed forwards.
    #[default]
    Eager,
    /// The paper's second example strategy: the minimum-id committed
    /// holder forwards a single copy.
    MinCopy,
}

impl ForwardStrategyKind {
    /// Enumerates the currently enabled forwarding actions, already
    /// filtered against `st.forwarded` (Fig. 10's `forwarded_set`
    /// precondition) and against messages we do not hold.
    pub fn candidates(self, st: &State) -> Vec<ForwardCmd> {
        // Fast path: forwarding can only ever be due when peer sync
        // records exist (both strategies key off them). Steady-state
        // multicast — the hot path — has none.
        if st.sync_msgs.len() <= 1 {
            return Vec::new();
        }
        match self {
            ForwardStrategyKind::Disabled => Vec::new(),
            ForwardStrategyKind::Eager => eager(st),
            ForwardStrategyKind::MinCopy => min_copy(st),
        }
    }
}

/// The latest (max-cid) non-slim sync record each process has produced
/// per view, from this end-point's perspective.
fn latest_syncs_per_view(st: &State) -> BTreeMap<(ProcessId, View), Cut> {
    let mut best: BTreeMap<(ProcessId, View), (vsgm_types::StartChangeId, Cut)> = BTreeMap::new();
    for ((q, cid), rec) in &st.sync_msgs {
        let Some(v) = &rec.view else { continue };
        let key = (*q, v.clone());
        match best.get(&key) {
            Some((c, _)) if *c >= *cid => {}
            _ => {
                best.insert(key, (*cid, rec.cut.clone()));
            }
        }
    }
    best.into_iter().map(|(k, (_, cut))| (k, cut)).collect()
}

/// The largest view id this end-point knows `q` to have reached (via
/// `view_msg`s and sync messages).
fn known_view_of(st: &State, q: ProcessId) -> ViewId {
    let mut id = st.view_msg_of(q).id();
    for ((sender, _), rec) in &st.sync_msgs {
        if *sender == q {
            if let Some(v) = &rec.view {
                id = id.max(v.id());
            }
        }
    }
    id
}

/// §5.2.2, first strategy: `p` forwards `m` (sent by `r` in view `v`) to
/// `q` iff `p` committed to deliver `m`, `p` knows no later view of `q`
/// than `v`, and `q`'s latest sync for `v` shows `q` misses `m`.
fn eager(st: &State) -> Vec<ForwardCmd> {
    let per_view = latest_syncs_per_view(st);
    let mut out = Vec::new();
    // Own commitments, per view.
    for ((owner, v), own_cut) in &per_view {
        if *owner != st.pid {
            continue;
        }
        for ((q, qv), q_cut) in &per_view {
            if *q == st.pid || qv != v {
                continue;
            }
            if known_view_of(st, *q) > v.id() {
                continue; // q has moved on; its old cut is obsolete
            }
            for r in v.members() {
                if r == q {
                    continue; // q has its own messages
                }
                let lo = q_cut.get(*r);
                let hi = own_cut.get(*r);
                for i in (lo + 1)..=hi {
                    if st.forwarded.contains(&(*q, *r, v.clone(), i)) {
                        continue;
                    }
                    if st.buf(*r, v).and_then(|s| s.get(i)).is_none() {
                        continue;
                    }
                    out.push(ForwardCmd {
                        to: [*q].into_iter().collect(),
                        origin: *r,
                        view: v.clone(),
                        index: i,
                    });
                }
            }
        }
    }
    out
}

/// §5.2.2, second strategy: once the membership view `v'` and the sync
/// messages it selects are known, the transitional set `T` elects, for
/// each message from an origin `r ∉ T`, the minimum-id member of `T`
/// committed to it as the unique forwarder; it forwards to the members of
/// `T` whose cuts show they miss the message.
fn min_copy(st: &State) -> Vec<ForwardCmd> {
    let v_new = &st.mbrshp_view;
    // Own sync for this change must exist (we've committed).
    let Some(own_cid) = v_new.start_id(st.pid) else { return Vec::new() };
    let Some(own) = st.sync(st.pid, own_cid) else { return Vec::new() };
    let Some(v_old) = own.view.clone() else { return Vec::new() };

    // All selected syncs from I = v'.set ∩ v_old.set must be present.
    let mut t: Vec<(ProcessId, &Cut)> = Vec::new();
    for q in v_new.intersection(&v_old) {
        let Some(q_cid) = v_new.start_id(q) else { return Vec::new() };
        let Some(rec) = st.sync(q, q_cid) else { return Vec::new() };
        if rec.view.as_ref() == Some(&v_old) {
            t.push((q, &rec.cut));
        }
    }
    let mut out = Vec::new();
    for r in v_old.members() {
        if t.iter().any(|(u, _)| u == r) {
            continue; // r ∈ T: its messages arrive from r directly
        }
        let max_cut = t.iter().map(|(_, c)| c.get(*r)).max().unwrap_or(0);
        for i in 1..=max_cut {
            let min_holder =
                t.iter().filter(|(_, c)| c.get(*r) >= i).map(|(u, _)| *u).min();
            if min_holder != Some(st.pid) {
                continue;
            }
            let to: ProcSet = t
                .iter()
                .filter(|(u, c)| c.get(*r) < i && !st.forwarded.contains(&(*u, *r, v_old.clone(), i)))
                .map(|(u, _)| *u)
                .collect();
            if to.is_empty() {
                continue;
            }
            if st.buf(*r, &v_old).and_then(|s| s.get(i)).is_none() {
                continue;
            }
            out.push(ForwardCmd { to, origin: *r, view: v_old.clone(), index: i });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SyncRecord;
    use crate::{vs, wv};
    use vsgm_types::{AppMsg, StartChangeId, SyncPayload};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    fn view(epoch: u64, members: &[u64], cids: &[u64]) -> View {
        View::new(
            ViewId::new(epoch, 0),
            members.iter().map(|&i| p(i)),
            members.iter().zip(cids).map(|(&m, &c)| (p(m), StartChangeId::new(c))),
        )
    }

    /// p1 in view {1,2,3}; p3 (the origin) sent 2 messages which p1 holds
    /// but p2 misses; reconfiguration to {1,2} in progress.
    fn scenario() -> State {
        let mut st = State::new(p(1));
        let v = view(1, &[1, 2, 3], &[1, 1, 1]);
        st.mbrshp_view = v.clone();
        wv::view_eff(&mut st);
        st.reliable_set = set(&[1, 2, 3]);
        st.view_msg.insert(p(1), v.clone());
        // Receive p3's stream.
        wv::on_view_msg(&mut st, p(3), v.clone());
        wv::on_app_msg(&mut st, p(3), AppMsg::from("m1"));
        wv::on_app_msg(&mut st, p(3), AppMsg::from("m2"));
        // Change starts: {1,2} (p3 partitioned away).
        vs::on_start_change(&mut st, StartChangeId::new(2), set(&[1, 2]));
        // Own sync commits to both of p3's messages.
        let plan = vs::send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        assert_eq!(plan.record.cut.get(p(3)), 2);
        st
    }

    fn p2_sync(st: &mut State, missing_from_p3: u64) {
        let mut cut = Cut::new();
        cut.set(p(3), missing_from_p3);
        let cv = st.current_view.clone();
        vs::on_sync(
            st,
            p(2),
            &SyncPayload {
                cid: StartChangeId::new(4),
                view: Some(cv.clone()),
                cut,
            },
        );
    }

    #[test]
    fn disabled_yields_nothing() {
        let mut st = scenario();
        p2_sync(&mut st, 0);
        assert!(ForwardStrategyKind::Disabled.candidates(&st).is_empty());
    }

    #[test]
    fn eager_forwards_missing_messages() {
        let mut st = scenario();
        p2_sync(&mut st, 0); // p2 has none of p3's messages
        let cmds = ForwardStrategyKind::Eager.candidates(&st);
        assert_eq!(cmds.len(), 2, "{cmds:?}");
        for cmd in &cmds {
            assert_eq!(cmd.to, set(&[2]));
            assert_eq!(cmd.origin, p(3));
        }
        let idxs: Vec<MsgIndex> = cmds.iter().map(|c| c.index).collect();
        assert!(idxs.contains(&1) && idxs.contains(&2));
    }

    #[test]
    fn eager_respects_peer_progress() {
        let mut st = scenario();
        p2_sync(&mut st, 1); // p2 already has message 1
        let cmds = ForwardStrategyKind::Eager.candidates(&st);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].index, 2);
    }

    #[test]
    fn eager_skips_already_forwarded() {
        let mut st = scenario();
        p2_sync(&mut st, 0);
        st.forwarded.insert((p(2), p(3), st.current_view.clone(), 1));
        let cmds = ForwardStrategyKind::Eager.candidates(&st);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].index, 2);
    }

    #[test]
    fn eager_ignores_peers_known_to_have_moved_on() {
        let mut st = scenario();
        p2_sync(&mut st, 0);
        // p2 announces a NEWER view: its old cut is obsolete.
        wv::on_view_msg(&mut st, p(2), view(5, &[2], &[9]));
        assert!(ForwardStrategyKind::Eager.candidates(&st).is_empty());
    }

    #[test]
    fn min_copy_waits_for_membership_view() {
        let mut st = scenario();
        p2_sync(&mut st, 0);
        // mbrshp_view still the old view: its startId(p1) = 1 selects an
        // older sync of ours which does not exist ⇒ no candidates yet.
        assert!(ForwardStrategyKind::MinCopy.candidates(&st).is_empty());
    }

    #[test]
    fn min_copy_elects_minimum_holder() {
        let mut st = scenario();
        p2_sync(&mut st, 0);
        st.mbrshp_view = view(2, &[1, 2], &[2, 4]);
        let cmds = ForwardStrategyKind::MinCopy.candidates(&st);
        // p1 is the only (hence min) holder; forwards both to p2, one copy
        // each.
        assert_eq!(cmds.len(), 2, "{cmds:?}");
        for cmd in &cmds {
            assert_eq!(cmd.to, set(&[2]));
            assert_eq!(cmd.origin, p(3));
        }
    }

    #[test]
    fn min_copy_defers_to_smaller_holder() {
        // Like `scenario`, but from p2's perspective, where p1 (smaller
        // id) also committed to the messages: p2 must not forward.
        let mut st = State::new(p(2));
        let v = view(1, &[1, 2, 3], &[1, 1, 1]);
        st.mbrshp_view = v.clone();
        wv::view_eff(&mut st);
        st.reliable_set = set(&[1, 2, 3]);
        wv::on_view_msg(&mut st, p(3), v.clone());
        wv::on_app_msg(&mut st, p(3), AppMsg::from("m1"));
        vs::on_start_change(&mut st, StartChangeId::new(4), set(&[1, 2]));
        let _ = vs::send_sync_eff(&mut st, false, false, false).expect("sync enabled");
        // p1 also committed to message 1 (and misses nothing).
        let mut cut = Cut::new();
        cut.set(p(3), 1);
        vs::on_sync(
            &mut st,
            p(1),
            &SyncPayload { cid: StartChangeId::new(2), view: Some(v), cut },
        );
        st.mbrshp_view = view(2, &[1, 2], &[2, 4]);
        let cmds = ForwardStrategyKind::MinCopy.candidates(&st);
        assert!(cmds.is_empty(), "p1 is the elected forwarder, not p2: {cmds:?}");
    }

    #[test]
    fn min_copy_skips_messages_nobody_misses() {
        let mut st = scenario();
        p2_sync(&mut st, 2); // p2 has everything
        st.mbrshp_view = view(2, &[1, 2], &[2, 4]);
        assert!(ForwardStrategyKind::MinCopy.candidates(&st).is_empty());
    }

    #[test]
    fn min_copy_ignores_origins_inside_t() {
        let mut st = scenario();
        // p2's sync shows p2 moves with us and misses one of OUR messages;
        // but we are in T, so our messages are not forwarded (the original
        // sender channel covers them).
        let mut cut = Cut::new();
        cut.set(p(1), 0);
        cut.set(p(3), 2);
        let cv = st.current_view.clone();
        vs::on_sync(
            &mut st,
            p(2),
            &SyncPayload {
                cid: StartChangeId::new(4),
                view: Some(cv.clone()),
                cut,
            },
        );
        // Give ourselves a sent message so a naive strategy would forward.
        wv::on_app_send(&mut st, AppMsg::from("own"));
        // Re-commit is not possible (sync already sent); directly check.
        st.mbrshp_view = view(2, &[1, 2], &[2, 4]);
        let cmds = ForwardStrategyKind::MinCopy.candidates(&st);
        assert!(
            cmds.iter().all(|c| c.origin != p(1)),
            "own (T-member) messages must not be forwarded: {cmds:?}"
        );
    }

    #[test]
    fn latest_sync_per_view_uses_max_cid() {
        let mut st = State::new(p(1));
        let v = view(1, &[1, 2], &[1, 1]);
        let mut c1 = Cut::new();
        c1.set(p(2), 1);
        let mut c2 = Cut::new();
        c2.set(p(2), 5);
        st.sync_msgs.insert(
            (p(2), StartChangeId::new(1)),
            SyncRecord { view: Some(v.clone()), cut: c1, stream_pos: 0 },
        );
        st.sync_msgs.insert(
            (p(2), StartChangeId::new(3)),
            SyncRecord { view: Some(v.clone()), cut: c2, stream_pos: 0 },
        );
        let per_view = latest_syncs_per_view(&st);
        assert_eq!(per_view[&(p(2), v)].get(p(2)), 5);
    }
}
