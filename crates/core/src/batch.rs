//! Endpoint-level application-message batching + backpressure knobs.
//!
//! The hot path of the paper's steady state is `send_p(m)` →
//! `co_rfifo.send_p(set, tag=app_msg, m)`: one wire frame per application
//! message. This module adds a batching stage *in front of* that wire
//! send: pending own messages (the suffix `last_sent+1 ..= last_index` of
//! `msgs[p][current_view]`) are held back until a flush trigger fires —
//! the count limit, the byte budget, or the linger deadline — and are
//! then emitted as a single [`vsgm_types::NetMsg::AppBatch`] frame.
//!
//! Correctness is free by construction:
//!
//! * The batch *is* the unsent suffix of the own per-view FIFO buffer —
//!   no second queue exists, so nothing can be reordered or duplicated.
//! * Receivers unbatch before any protocol processing
//!   (`wv::on_app_msg` per element), so every checker sees the identical
//!   per-message event stream.
//! * A view change force-releases the hold (see
//!   [`crate::endpoint::Endpoint`]): pending messages are flushed before
//!   the synchronization cut completes, so Fig. 10 cut computation is
//!   unaffected and view installation (which requires
//!   `dlvrd(p) = agreed_bound(p)` *including* the own stream) cannot
//!   deadlock on held messages.
//!
//! Only the linger deadline reads the clock, and the clock is an input
//! ([`crate::Input::Tick`]) — the automaton stays deterministic.

/// Batching knobs. The default (`max_msgs = 1`) disables batching: every
/// send flushes immediately, which is the paper's original per-message
/// behavior and the baseline arm of the `gcs_throughput` bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most messages packed into one wire frame. `1` disables batching.
    pub max_msgs: u64,
    /// Payload-byte budget per batch; once adding the next message would
    /// exceed it the batch flushes (a single oversized message still
    /// flushes alone).
    pub max_bytes: usize,
    /// Longest a pending batch waits for more messages before flushing
    /// anyway, in microseconds of the endpoint clock.
    pub linger_us: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::off()
    }
}

impl BatchConfig {
    /// Batching disabled (per-message sends).
    pub fn off() -> Self {
        BatchConfig { max_msgs: 1, max_bytes: 64 * 1024, linger_us: 0 }
    }

    /// A conservative low-latency preset: small batches, short linger.
    pub fn small() -> Self {
        BatchConfig { max_msgs: 8, max_bytes: 16 * 1024, linger_us: 200 }
    }

    /// A throughput preset: large batches, 1 ms linger.
    pub fn large() -> Self {
        BatchConfig { max_msgs: 64, max_bytes: 64 * 1024, linger_us: 1_000 }
    }

    /// Whether batching is on at all.
    pub fn enabled(&self) -> bool {
        self.max_msgs > 1
    }
}

/// Why a pending batch was flushed (observability vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The message-count limit was reached.
    Count,
    /// The byte budget was reached.
    Bytes,
    /// The linger deadline expired.
    Linger,
    /// A view change is in progress: the flush precedes the
    /// synchronization cut.
    ViewChange,
}

impl FlushCause {
    /// The registry counter bumped for this cause.
    pub const fn counter_name(self) -> &'static str {
        match self {
            FlushCause::Count => vsgm_obs::names::EP_BATCH_FLUSH_COUNT,
            FlushCause::Bytes => vsgm_obs::names::EP_BATCH_FLUSH_BYTES,
            FlushCause::Linger => vsgm_obs::names::EP_BATCH_FLUSH_LINGER,
            FlushCause::ViewChange => vsgm_obs::names::EP_BATCH_FLUSH_VIEW_CHANGE,
        }
    }
}

/// Whether the batching stage holds back an otherwise-enabled app-msg
/// send: batching on, something pending, and no flush trigger fired yet.
/// The caller has already excluded the view-change case (which always
/// releases the hold).
pub fn holds(
    cfg: &BatchConfig,
    pending_msgs: u64,
    pending_bytes: usize,
    opened_us: Option<u64>,
    now_us: u64,
) -> bool {
    if !cfg.enabled() || pending_msgs == 0 {
        return false;
    }
    if pending_msgs >= cfg.max_msgs || pending_bytes >= cfg.max_bytes {
        return false;
    }
    match opened_us {
        Some(t) => now_us < t.saturating_add(cfg.linger_us),
        // No open timestamp with pending messages: fail open (flush).
        None => false,
    }
}

/// The flush cause a firing send should be attributed to, mirroring the
/// trigger order of [`holds`].
pub fn flush_cause(
    cfg: &BatchConfig,
    reconfiguring: bool,
    pending_msgs: u64,
    pending_bytes: usize,
) -> FlushCause {
    if reconfiguring {
        FlushCause::ViewChange
    } else if pending_msgs >= cfg.max_msgs {
        FlushCause::Count
    } else if pending_bytes >= cfg.max_bytes {
        FlushCause::Bytes
    } else {
        FlushCause::Linger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_never_holds() {
        let cfg = BatchConfig::off();
        assert!(!cfg.enabled());
        assert!(!holds(&cfg, 1, 10, Some(0), 0));
    }

    #[test]
    fn holds_until_a_trigger_fires() {
        let cfg = BatchConfig { max_msgs: 4, max_bytes: 100, linger_us: 50 };
        // Pending but under every limit, linger not expired: hold.
        assert!(holds(&cfg, 2, 30, Some(0), 49));
        // Count limit reached.
        assert!(!holds(&cfg, 4, 30, Some(0), 0));
        // Byte budget reached.
        assert!(!holds(&cfg, 2, 100, Some(0), 0));
        // Linger expired.
        assert!(!holds(&cfg, 2, 30, Some(0), 50));
        // Nothing pending: nothing to hold.
        assert!(!holds(&cfg, 0, 0, None, 99));
        // Pending without an open timestamp fails open.
        assert!(!holds(&cfg, 2, 30, None, 0));
    }

    #[test]
    fn flush_cause_mirrors_trigger_order() {
        let cfg = BatchConfig { max_msgs: 4, max_bytes: 100, linger_us: 50 };
        assert_eq!(flush_cause(&cfg, true, 4, 200), FlushCause::ViewChange);
        assert_eq!(flush_cause(&cfg, false, 4, 0), FlushCause::Count);
        assert_eq!(flush_cause(&cfg, false, 2, 100), FlushCause::Bytes);
        assert_eq!(flush_cause(&cfg, false, 2, 30), FlushCause::Linger);
    }

    #[test]
    fn cause_counter_names_are_distinct() {
        let names = [
            FlushCause::Count.counter_name(),
            FlushCause::Bytes.counter_name(),
            FlushCause::Linger.counter_name(),
            FlushCause::ViewChange.counter_name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn linger_saturates_at_u64_max() {
        // Near-overflow deadlines saturate instead of wrapping around
        // (which would release the hold immediately).
        let cfg = BatchConfig { max_msgs: 4, max_bytes: 100, linger_us: u64::MAX };
        assert!(holds(&cfg, 1, 1, Some(5), u64::MAX - 1));
        // At the saturated deadline itself the hold releases.
        assert!(!holds(&cfg, 1, 1, Some(5), u64::MAX));
    }
}
